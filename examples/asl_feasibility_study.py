"""ASL feasibility study: reproduce the paper's SIII analysis (Fig. 2 & 3).

Two simulated users with similar body shapes perform three ASL signs
('away', 'push', 'front') ten times each.  The script prints:

* an ASCII visualisation of the aggregated gesture clouds (Fig. 2), and
* the Hausdorff / Chamfer / Jensen-Shannon comparison of same-user vs
  cross-user repetitions (Fig. 3) — cross-user differences should exceed
  same-user differences, which is what makes gesture-based user
  identification feasible.

Run:  python examples/asl_feasibility_study.py
"""

import numpy as np

from repro import ASL_GESTURES, ENVIRONMENTS, FastRadar, IWR6843_CONFIG, generate_users
from repro.gestures import perform_gesture
from repro.metrics import (
    chamfer_distance,
    hausdorff_distance,
    jensen_shannon_divergence,
    pairwise_set_distance,
)
from repro.preprocessing import preprocess_recording

GESTURES = ["away", "push", "front"]
REPS = 10


def collect_clouds(user, radar, rng):
    clouds = {}
    for name in GESTURES:
        clouds[name] = []
        for _ in range(REPS):
            recording = perform_gesture(
                user, ASL_GESTURES[name], radar, ENVIRONMENTS["meeting_room"], rng=rng
            )
            cloud = preprocess_recording(recording)
            if cloud is not None:
                clouds[name].append(cloud.xyz)
    return clouds


def ascii_cloud(points, width=48, height=14, axes=(0, 2)):
    """Render a cloud projection as ASCII art."""
    a, b = points[:, axes[0]], points[:, axes[1]]
    grid = [[" "] * width for _ in range(height)]
    a_lo, a_hi = a.min(), a.max()
    b_lo, b_hi = b.min(), b.max()
    for x, z in zip(a, b):
        col = int((x - a_lo) / max(a_hi - a_lo, 1e-9) * (width - 1))
        row = height - 1 - int((z - b_lo) / max(b_hi - b_lo, 1e-9) * (height - 1))
        grid[row][col] = "*"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    # Two users with similar body shape, as in the paper's study.
    users = [u for u in generate_users(40, seed=3) if 1.58 < u.height_m < 1.64][:2]
    radar = FastRadar(IWR6843_CONFIG, seed=1)
    rng = np.random.default_rng(5)

    print("Collecting 10 repetitions x 3 ASL signs from User A and User B...")
    clouds_a = collect_clouds(users[0], radar, rng)
    clouds_b = collect_clouds(users[1], radar, rng)

    print("\n=== Fig. 2: aggregated 'push' clouds (x-z projection) ===")
    for label, clouds in (("User A", clouds_a), ("User B", clouds_b)):
        merged = np.vstack(clouds["push"])
        print(f"\n{label} - 'push' ({merged.shape[0]} points)")
        print(ascii_cloud(merged))

    print("\n=== Fig. 3: same-user vs cross-user cloud differences ===")
    metrics = {
        "HD": hausdorff_distance,
        "CD": chamfer_distance,
        "JSD": lambda a, b: jensen_shannon_divergence(a, b, bins=6),
    }
    header = f"{'gesture':10s} {'metric':6s} {'User A':>8s} {'User B':>8s} {'A vs B':>8s}"
    print(header)
    print("-" * len(header))
    for gesture in GESTURES:
        for name, metric in metrics.items():
            within_a = pairwise_set_distance(clouds_a[gesture], clouds_a[gesture], metric)
            within_b = pairwise_set_distance(clouds_b[gesture], clouds_b[gesture], metric)
            across = pairwise_set_distance(clouds_a[gesture], clouds_b[gesture], metric)
            flag = "  <-- cross-user largest" if across > max(within_a, within_b) else ""
            print(
                f"{gesture:10s} {name:6s} {within_a:8.3f} {within_b:8.3f} {across:8.3f}{flag}"
            )
    print(
        "\nAs in the paper: for the same sign, cross-user differences exceed\n"
        "same-user repetition differences -> gestures carry identity information."
    )


if __name__ == "__main__":
    main()
