"""Confidence calibration of the recognition model (supports SIV-C gating).

The open-set layer thresholds on softmax confidence, which is only
sound if confidence tracks accuracy.  This study measures the gesture
model's expected calibration error (ECE) on held-out data, fits a
temperature on a separate calibration split, and reports the
improvement; it also writes a reliability-diagram SVG next to the
script output.

Run:  python examples/calibration_study.py
"""

import numpy as np

from repro import (
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    train_test_split,
)
from repro.metrics import (
    apply_temperature,
    expected_calibration_error,
    fit_temperature,
    reliability_curve,
)
from repro.viz import line_chart

NUM_POINTS = 64


def _logits(model, inputs, batch=64):
    model.eval()
    chunks = []
    for start in range(0, inputs.shape[0], batch):
        primary, _aux = model(inputs[start : start + batch])
        chunks.append(primary)
    return np.vstack(chunks)


def main() -> None:
    print("Training the recognition model...")
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=14,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    train_idx, rest = train_test_split(dataset.num_samples, 0.4, seed=0)
    calib_idx, test_idx = rest[: rest.size // 2], rest[rest.size // 2 :]
    system = GesturePrint(
        GesturePrintConfig.small(
            training=TrainConfig(epochs=20, batch_size=32, learning_rate=3e-3)
        )
    ).fit(
        dataset.inputs[train_idx],
        dataset.gesture_labels[train_idx],
        dataset.user_labels[train_idx],
    )

    print("Fitting the temperature on the calibration split...")
    calib_logits = _logits(system.gesture_model, dataset.inputs[calib_idx])
    temperature = fit_temperature(calib_logits, dataset.gesture_labels[calib_idx])

    test_logits = _logits(system.gesture_model, dataset.inputs[test_idx])
    test_labels = dataset.gesture_labels[test_idx]
    raw_probs = apply_temperature(test_logits, 1.0)
    scaled_probs = apply_temperature(test_logits, temperature)

    ece_before = expected_calibration_error(raw_probs, test_labels)
    ece_after = expected_calibration_error(scaled_probs, test_labels)
    accuracy = float(np.mean(raw_probs.argmax(axis=1) == test_labels))

    print(f"  test accuracy:            {accuracy:.3f} (unchanged by scaling)")
    print(f"  fitted temperature:       {temperature:.2f} "
          f"({'over' if temperature > 1 else 'under'}-confident model)")
    print(f"  ECE before scaling:       {ece_before:.3f}")
    print(f"  ECE after scaling:        {ece_after:.3f}")

    series = {}
    for name, probs in (("raw", raw_probs), ("temperature-scaled", scaled_probs)):
        conf, acc, counts = reliability_curve(probs, test_labels, num_bins=8)
        keep = counts > 0
        series[name] = (conf[keep], acc[keep])
    chart = line_chart(
        series,
        title="Reliability diagram — gesture recognition",
        x_label="mean confidence",
        y_label="accuracy",
        y_range=(0.0, 1.05),
        diagonal=True,
    )
    chart.save("reliability.svg")
    print("  wrote reliability.svg")
    if ece_after <= ece_before + 1e-9:
        print("=> temperature scaling did not hurt calibration. OK")


if __name__ == "__main__":
    main()
