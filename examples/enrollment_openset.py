"""Enrollment + open-set rejection: keeping outsiders out.

The paper's serialized mode is chosen partly for "the capability of
handling random gestures and unauthorized people" (SIV-C).  This example
plays that scenario end to end:

1. four household members enroll (train the system on their gestures);
2. the open-set verifier calibrates accept thresholds on held-out
   enrollment data;
3. an outsider (a simulated person the system has never seen) performs
   the same gestures — the verifier should reject them, while household
   members keep being recognised.

Run:  python examples/enrollment_openset.py
"""

import numpy as np

from repro import (
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    train_test_split,
)
from repro.core import UNKNOWN_USER, OpenSetVerifier
from repro.datasets.base import DatasetSpec, build_dataset
from repro.gestures import ASL_GESTURES, generate_users

NUM_ENROLLED = 4
NUM_GESTURES = 4


def main() -> None:
    print(f"Enrolling {NUM_ENROLLED} household members ({NUM_GESTURES} gestures)...")
    dataset = build_selfcollected(
        num_users=NUM_ENROLLED,
        num_gestures=NUM_GESTURES,
        reps=14,
        environments=("office",),
        num_points=64,
        seed=42,
    )
    train_idx, holdout_idx = train_test_split(dataset.num_samples, 0.3, seed=0)
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=22, batch_size=32, learning_rate=3e-3),
        # The serialized mode slices training data per gesture, so the ID
        # models want longer training and heavier augmentation.
        id_training=TrainConfig(epochs=40, batch_size=24, learning_rate=2e-3, lr_step=25),
        id_augment_copies=4,
    )
    system = GesturePrint(config).fit(
        dataset.inputs[train_idx],
        dataset.gesture_labels[train_idx],
        dataset.user_labels[train_idx],
    )

    print("Calibrating open-set thresholds on held-out enrollment data...")
    verifier = OpenSetVerifier(system)
    calibration = verifier.calibrate(
        dataset.inputs[holdout_idx],
        dataset.gesture_labels[holdout_idx],
        dataset.user_labels[holdout_idx],
        target_far=0.05,
    )
    print(f"  user-score threshold {calibration.user_threshold:.3f}, "
          f"enrollment EER {calibration.eer:.3f}")

    print("An outsider walks in and performs the same gestures...")
    outsider = generate_users(NUM_ENROLLED + 3, seed=977)[-1]
    spec = DatasetSpec(
        users=(outsider,),
        templates=tuple(ASL_GESTURES.values())[:NUM_GESTURES],
        environments=("office",),
        reps=10,
        num_points=64,
        seed=3,
    )
    outsider_data = build_dataset(spec)

    _gestures, users = verifier.identify(outsider_data.inputs)
    rejected = float(np.mean(users == UNKNOWN_USER))
    print(f"  outsider rejection rate: {rejected:.0%}  (accepted {np.sum(users != UNKNOWN_USER)} "
          f"of {users.size} attempts)")

    _gestures, members = verifier.identify(dataset.inputs[holdout_idx])
    accepted = float(np.mean(members != UNKNOWN_USER))
    truth = dataset.user_labels[holdout_idx]
    correct = float(np.mean(members[members != UNKNOWN_USER] == truth[members != UNKNOWN_USER]))
    print(f"  household acceptance rate: {accepted:.0%}; "
          f"identity accuracy among accepted: {correct:.0%}")

    if rejected > accepted:
        print("=> outsiders are rejected far more often than household members. OK")
    else:
        print("=> WARNING: rejection gap smaller than expected at this scale")


if __name__ == "__main__":
    main()
