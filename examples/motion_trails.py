"""Fig. 2: motion-trail visualisation of gesture point clouds.

Renders the paper's opening observation: the same ASL sign performed by
two different users leaves visibly different point-cloud trails (point
count, coverage, density), while two different signs differ even more.
Writes one SVG per (user, gesture) cell plus a side-by-side summary, in
the style of Fig. 2's x-z / y-z motion-trail panels.

Run:  python examples/motion_trails.py  [--out-dir trails/]
"""

import argparse
import pathlib

import numpy as np

from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.preprocessing import keep_main_cluster
from repro.radar import FastRadar, IWR6843_CONFIG, PointCloud
from repro.viz import Canvas

GESTURES = ("push", "front")
SIZE = 260.0
MARGIN = 30.0


def trail_panel(cloud: PointCloud, title: str, axis: str = "xz") -> Canvas:
    """One Fig. 2-style panel: points coloured by gesture phase."""
    canvas = Canvas(SIZE, SIZE)
    canvas.text(SIZE / 2, 16, title, anchor="middle", size=11)
    horizontal = cloud.points[:, 0] if axis == "xz" else cloud.points[:, 1]
    vertical = cloud.points[:, 2]
    h_low, h_high = horizontal.min(), horizontal.max()
    v_low, v_high = vertical.min(), vertical.max()
    h_span = max(h_high - h_low, 0.2)
    v_span = max(v_high - v_low, 0.2)
    span = max(cloud.frame_indices.max() - cloud.frame_indices.min(), 1)
    for point_h, point_v, frame in zip(horizontal, vertical, cloud.frame_indices):
        phase = (frame - cloud.frame_indices.min()) / span
        x = MARGIN + (point_h - h_low) / h_span * (SIZE - 2 * MARGIN)
        y = SIZE - MARGIN - (point_v - v_low) / v_span * (SIZE - 2 * MARGIN)
        # Early points red, late points black — the paper's colour coding.
        shade = int(200 * (1.0 - phase))
        canvas.circle(x, y, 2.2, fill=f"rgb({55 + shade},40,40)", opacity=0.8)
    canvas.text(SIZE / 2, SIZE - 8, f"{axis[0]} (m)", anchor="middle", size=9)
    canvas.text(10, SIZE / 2, "z (m)", anchor="middle", size=9, rotate=-90.0)
    return canvas


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="trails")
    args = parser.parse_args()
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(exist_ok=True)

    # Two users with similar body shapes, as in the paper's Fig. 2 study.
    users = generate_users(6, seed=19)[:2]
    radar = FastRadar(IWR6843_CONFIG, seed=4)
    rng = np.random.default_rng(8)

    print(f"Rendering motion trails for {len(users)} users x {GESTURES} ...")
    for user_tag, user in zip("AB", users):
        for gesture in GESTURES:
            recording = perform_gesture(
                user, ASL_GESTURES[gesture], radar, ENVIRONMENTS["meeting_room"],
                rng=rng,
            )
            cloud = PointCloud.from_frames(
                recording.frames[
                    recording.motion_start_frame : recording.motion_end_frame
                ]
            )
            cloud = keep_main_cluster(cloud)
            axis = "xz" if gesture == "front" else "yz"
            panel = trail_panel(
                cloud, f"User {user_tag} — '{gesture}' ({cloud.num_points} pts)", axis
            )
            path = out_dir / f"trail_user{user_tag}_{gesture}.svg"
            panel.save(path)
            print(f"  {path}  ({cloud.num_points} points over "
                  f"{cloud.num_frames} frames)")
    print("Compare the panels: same gesture, different users -> different "
          "coverage and density; different gestures -> different shapes.")


if __name__ == "__main__":
    main()
