"""FMCW signal chain walkthrough on the signal-level radar.

Runs the full on-chip processing chain the paper describes (SIII) on one
simulated 'push' gesture: chirp synthesis -> Range FFT -> static clutter
removal -> Doppler FFT -> CA-CFAR -> angle FFT -> point cloud, and
prints what each stage produces.  This is the slow, physically explicit
path; the dataset builders use the calibrated FastRadar instead.

Run:  python examples/signal_chain_demo.py
"""

import numpy as np

from repro import ASL_GESTURES, ENVIRONMENTS, IWR6843_CONFIG, SignalLevelRadar, generate_users
from repro.gestures import perform_gesture
from repro.preprocessing import GestureSegmenter, keep_main_cluster
from repro.radar import PointCloud


def main() -> None:
    config = IWR6843_CONFIG
    print("Radar configuration (matches the paper's IWR6843AOPEVM settings):")
    print(f"  RF band           : {config.start_frequency_hz/1e9:.0f}-"
          f"{(config.start_frequency_hz + config.bandwidth_hz)/1e9:.1f} GHz")
    print(f"  antennas          : {config.num_tx} TX x {config.num_rx} RX "
          f"({config.num_virtual_antennas} virtual)")
    print(f"  frame rate        : {config.frame_rate_hz:.0f} fps")
    print(f"  range resolution  : {config.range_resolution_m:.3f} m "
          f"(max {config.max_range_m:.1f} m)")
    print(f"  velocity          : +/-{config.max_velocity_ms:.2f} m/s "
          f"(res {config.velocity_resolution_ms:.2f} m/s)")

    user = generate_users(1, seed=0)[0]
    radar = SignalLevelRadar(config, seed=1)
    print("\nRendering one 'push' gesture through the FULL FMCW chain "
          "(chirps -> FFTs -> CFAR -> angle)...")
    recording = perform_gesture(
        user, ASL_GESTURES["push"], radar, ENVIRONMENTS["open"],
        rng=np.random.default_rng(2),
        idle_before_frames=(4, 5), idle_after_frames=(10, 11),
    )
    counts = [f.num_points for f in recording.frames]
    print(f"  {recording.num_frames} frames; per-frame detections: {counts}")
    print("  ground-truth motion span: frames "
          f"[{recording.motion_start_frame}, {recording.motion_end_frame})")

    segments = GestureSegmenter().segment(recording.frames)
    print("  sliding-window segmentation found: "
          f"{[(s.start, s.end) for s in segments]}")

    cloud = PointCloud.from_frames(recording.frames)
    cleaned = keep_main_cluster(cloud)
    print(f"  aggregated cloud: {cloud.num_points} points "
          f"-> {cleaned.num_points} after DBSCAN noise canceling")
    if cleaned.num_points:
        xyz = cleaned.xyz
        print(f"  cloud extent: x [{xyz[:,0].min():+.2f}, {xyz[:,0].max():+.2f}] m, "
              f"y [{xyz[:,1].min():.2f}, {xyz[:,1].max():.2f}] m, "
              f"z [{xyz[:,2].min():+.2f}, {xyz[:,2].max():+.2f}] m")
        print(f"  doppler spread: [{cleaned.doppler.min():+.2f}, "
              f"{cleaned.doppler.max():+.2f}] m/s")
    print("\nDone: this is exactly the preprocessing input GesIDNet consumes.")


if __name__ == "__main__":
    main()
