"""Server-trains / edge-infers deployment split with latency budget check.

The paper trains on a back-end server (RTX 3090) and runs inference on
a laptop CPU or a Jetson Nano (SVI-B5: preprocessing 406 ms + CPU
inference 677 ms = 0.94 s per gesture, well under the 2.43 s average
gesture duration).  This example reproduces the deployment split:

1. "server": train GesturePrint and serialise it to disk;
2. "edge": load the model back (no trainer state needed) and profile
   the per-stage latency over live simulated recordings;
3. verify the total stays inside the gesture-duration budget.

Run:  python examples/edge_deployment.py
"""

import tempfile
import time

import numpy as np

from repro import (
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    train_test_split,
)
from repro.analysis.timing import profile_pipeline
from repro.serving import ModelRegistry
from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.radar import FastRadar, IWR6843_CONFIG

NUM_POINTS = 64


def main() -> None:
    print("[server] rendering training data and fitting GesturePrint...")
    t0 = time.time()
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=12,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    train_idx, _ = train_test_split(dataset.num_samples, 0.2, seed=0)
    system = GesturePrint(
        GesturePrintConfig.small(
            training=TrainConfig(epochs=18, batch_size=32, learning_rate=3e-3)
        )
    ).fit(
        dataset.inputs[train_idx],
        dataset.gesture_labels[train_idx],
        dataset.user_labels[train_idx],
    )
    print(f"[server] trained in {time.time() - t0:.1f}s")

    registry = ModelRegistry()
    with tempfile.TemporaryDirectory() as model_dir:
        registry.save(system, model_dir)
        print(f"[server] serialised model to {model_dir}")

        print("[edge] loading model through the registry (cached for later calls)...")
        registry.evict(registry.keys()[0])  # simulate a cold edge process
        edge_system = registry.load(model_dir)

        print("[edge] capturing live recordings and profiling per-stage latency...")
        users = generate_users(4, seed=42)
        radar = FastRadar(IWR6843_CONFIG, seed=5)
        rng = np.random.default_rng(9)
        recordings = [
            perform_gesture(
                users[i % len(users)],
                list(ASL_GESTURES.values())[i % 4],
                radar,
                ENVIRONMENTS["office"],
                rng=rng,
            )
            for i in range(8)
        ]
        report = profile_pipeline(
            edge_system, recordings, num_points=NUM_POINTS, runs=30
        )
        gesture_s = float(np.mean([r.duration_frames for r in recordings])) / 10.0

        print(f"  preprocessing   {report.preprocessing_ms:7.1f} ms   (paper: 405.9 ms)")
        print(f"  recognition     {report.recognition_ms:7.1f} ms")
        print(f"  identification  {report.identification_ms:7.1f} ms")
        print(f"  total           {report.total_ms:7.1f} ms   (paper CPU: 936.9 ms)")
        print(f"  average gesture duration: {gesture_s * 1000:.0f} ms")
        if report.total_ms < gesture_s * 1000:
            print("=> inference keeps up with the gesture stream. OK")
        else:
            print("=> WARNING: processing slower than gestures arrive")


if __name__ == "__main__":
    main()
