"""Multi-person scene handling (paper SVII-1 + Fig. 15).

A user performs gestures while a second person walks through the room.
The demo shows the two defence layers of this reproduction:

1. the paper's noise-canceling (keep the main DBSCAN cluster), which
   suppresses the bystander's points, and
2. the m3Track-style multi-user separator (the paper's suggested
   extension), which keeps *both* people as separate, frame-aligned
   tracks — each classifiable on its own.

Run:  python examples/multi_person_demo.py
"""

import numpy as np

from repro import ASL_GESTURES, ENVIRONMENTS, FastRadar, IWR6843_CONFIG, generate_users
from repro.gestures import Bystander, perform_gesture
from repro.preprocessing import MultiUserSeparator, keep_main_cluster
from repro.preprocessing.pipeline import aggregate_segment
from repro.preprocessing.segmentation import GestureSegmenter, Segment
from repro.radar import PointCloud


def main() -> None:
    user = generate_users(1, seed=4)[0]
    radar = FastRadar(IWR6843_CONFIG, seed=3)
    walker = Bystander(mode="walking", walk_start=(-2.5, 3.2), walk_end=(2.5, 3.2))
    print("Recording a 'push' gesture while someone walks past 2 m behind the user...")
    recording = perform_gesture(
        user,
        ASL_GESTURES["push"],
        radar,
        ENVIRONMENTS["meeting_room"],
        rng=np.random.default_rng(8),
        bystanders=[walker],
    )

    truth = Segment(recording.motion_start_frame, recording.motion_end_frame)
    raw = aggregate_segment(recording.frames, truth)
    print(f"\nraw aggregated cloud: {raw.num_points} points")
    behind = (raw.xyz[:, 1] > 2.4).sum()
    print(f"  of which {behind} points come from the bystander region (y > 2.4 m)")

    # --- defence 1: the paper's main-cluster noise canceling -----------
    cleaned = keep_main_cluster(raw)
    behind_after = (cleaned.xyz[:, 1] > 2.4).sum()
    print(f"\n[1] main-cluster noise canceling keeps {cleaned.num_points} points; "
          f"{behind_after} bystander points remain")

    # --- defence 2: multi-user separation ------------------------------
    separator = MultiUserSeparator()
    tracks = separator.separate(recording.frames)
    print(f"\n[2] multi-user separator found {len(tracks)} tracks:")
    segmenter = GestureSegmenter()
    for track in tracks:
        centroid = track.current_centroid()
        segments = segmenter.segment(track.frames)
        cloud = PointCloud.from_frames(track.frames)
        print(
            f"  track {track.track_id}: {track.num_points} points, "
            f"centroid ({centroid[0]:+.1f}, {centroid[1]:.1f}) m, "
            f"{len(segments)} gesture segment(s) "
            f"{[(s.start, s.end) for s in segments]}"
        )
        label = "user (gesturing)" if abs(centroid[1] - 1.2) < 0.6 else "bystander (walking)"
        print(f"    -> {label}; doppler spread "
              f"[{cloud.doppler.min():+.2f}, {cloud.doppler.max():+.2f}] m/s")


if __name__ == "__main__":
    main()
