"""Two people gesturing at once: the multi-user runtime in action.

SVII-1 of the paper sketches multi-user support via m3Track-style
per-person tracking.  This example builds the full loop: two enrolled
users stand 1.8 m apart and gesture simultaneously; the multi-user
runtime clusters every frame, tracks both people, segments each
person's motion independently, and recognises + identifies both.

Run:  python examples/multi_user_live.py
"""

import numpy as np

from repro import (
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
)
from repro.core import MultiUserRuntime
from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.radar import FastRadar, Frame, IWR6843_CONFIG
from repro.serving import ModelRegistry

GESTURES = ("ahead", "away", "push")
OFFSET_M = 1.8
NUM_POINTS = 64


def merge_streams(rec_a, rec_b):
    """Overlay two recordings side by side into one radar stream."""
    length = max(len(rec_a.frames), len(rec_b.frames))
    merged = []
    for i in range(length):
        chunks = []
        for rec, sign in ((rec_a, -1.0), (rec_b, 1.0)):
            if i < len(rec.frames) and rec.frames[i].num_points:
                pts = rec.frames[i].points.copy()
                pts[:, 0] += sign * OFFSET_M / 2
                chunks.append(pts)
        merged.append(Frame(points=np.vstack(chunks)) if chunks else Frame.empty())
    return merged


def fit_system() -> GesturePrint:
    dataset = build_selfcollected(
        num_users=2, gestures=GESTURES, reps=14,
        environments=("office",), num_points=NUM_POINTS, seed=7,
    )
    return GesturePrint(
        GesturePrintConfig.small(
            training=TrainConfig(epochs=20, batch_size=32, learning_rate=3e-3),
            id_augment_copies=4,
        )
    ).fit(dataset.inputs, dataset.gesture_labels, dataset.user_labels)


def main() -> None:
    import pathlib
    import tempfile

    print("Enrolling two users on three ASL gestures...")
    users = generate_users(2, seed=7)
    # The registry checkpoints the first fit; re-runs load it instead.
    # The directory is keyed by the headline settings only — after other
    # edits to fit_system(), delete the printed checkpoint to re-fit.
    tag = f"{len(GESTURES)}g-{NUM_POINTS}p-e20"
    checkpoint = pathlib.Path(tempfile.gettempdir()) / f"repro-multi-user-live-{tag}"
    system = ModelRegistry().get_or_fit(
        "multi-user-live", fit_system, directory=checkpoint
    )
    print(f"  (checkpoint: {checkpoint} — delete it to force a re-fit)")

    print("Both users gesture at the same time, 1.8 m apart...")
    radar = FastRadar(IWR6843_CONFIG, seed=9)
    rng = np.random.default_rng(23)
    rec_a = perform_gesture(users[0], ASL_GESTURES["ahead"], radar,
                            ENVIRONMENTS["office"], rng=rng)
    rec_b = perform_gesture(users[1], ASL_GESTURES["push"], radar,
                            ENVIRONMENTS["office"], rng=rng)
    frames = merge_streams(rec_a, rec_b)

    runtime = MultiUserRuntime(system, num_points=NUM_POINTS, seed=0)
    events = []
    for frame in frames:
        events.extend(runtime.push_frame(frame))
    events.extend(runtime.flush())

    print(f"Tracked {runtime.num_tracks} people; {len(events)} gesture event(s):")
    centroids = {
        t.track_id: t.current_centroid() for t in runtime.separator.tracks
    }
    truth = {"left": ("ahead", 0), "right": ("push", 1)}
    for event in events:
        centroid = centroids.get(event.track_id)
        side = "left" if centroid is not None and centroid[0] < 0 else "right"
        expected_gesture, expected_user = truth[side]
        print(
            f"  track {event.track_id} ({side}): "
            f"gesture {GESTURES[event.gesture]!r} "
            f"(expected {expected_gesture!r}), "
            f"user #{event.user} (expected #{expected_user}), "
            f"confidence {event.event.gesture_confidence:.2f}"
        )


if __name__ == "__main__":
    main()
