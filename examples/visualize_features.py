"""Feature-space visualisation (paper Fig. 6) with numpy t-SNE.

Trains GesIDNet for gesture recognition and user identification on the
same data, embeds the low-level, high-level, and fusion features with
t-SNE, and prints (a) silhouette-style cluster-quality scores and (b) an
ASCII scatter of the fusion features.  The paper's claim: fusion
features cluster more clearly than either single level, especially for
the harder user-identification task.

Run:  python examples/visualize_features.py
"""

import numpy as np

from repro import (
    GesturePrintConfig,
    GesturePrint,
    IdentificationMode,
    TrainConfig,
    build_selfcollected,
    train_test_split,
)
from repro.analysis import tsne
from repro.analysis.tsne import cluster_quality

MARKERS = "ox+#@%&$"


def ascii_scatter(embedding, labels, width=56, height=16):
    grid = [[" "] * width for _ in range(height)]
    x, y = embedding[:, 0], embedding[:, 1]
    for xi, yi, lab in zip(x, y, labels):
        col = int((xi - x.min()) / max(x.max() - x.min(), 1e-9) * (width - 1))
        row = int((yi - y.min()) / max(y.max() - y.min(), 1e-9) * (height - 1))
        grid[height - 1 - row][col] = MARKERS[int(lab) % len(MARKERS)]
    return "\n".join("".join(row) for row in grid)


def collect_features(model, inputs):
    model.eval()
    store = {"level1": [], "level2": [], "fused1": []}
    for start in range(0, inputs.shape[0], 64):
        model(inputs[start : start + 64])
        feats = model.extracted_features()
        for key in store:
            store[key].append(feats[key])
    return {k: np.vstack(v) for k, v in store.items()}


def main() -> None:
    print("Rendering dataset and training both tasks...")
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=10, environments=("office",),
        num_points=64, seed=21,
    )
    train, test = train_test_split(dataset.num_samples, 0.25, seed=0)
    config = GesturePrintConfig.small(
        mode=IdentificationMode.PARALLEL,
        training=TrainConfig(epochs=22, batch_size=32, learning_rate=3e-3),
        augment_copies=2,
    )
    system = GesturePrint(config).fit(
        dataset.inputs[train], dataset.gesture_labels[train], dataset.user_labels[train]
    )

    inputs = dataset.inputs[test]
    for task, model, labels in (
        ("gesture recognition", system.gesture_model, dataset.gesture_labels[test]),
        ("user identification", system.parallel_user_model, dataset.user_labels[test]),
    ):
        print(f"\n=== {task} ===")
        features = collect_features(model, inputs)
        embeddings = {}
        for level, matrix in features.items():
            embeddings[level] = tsne(matrix, iterations=200, perplexity=10.0, seed=1)
            score = cluster_quality(embeddings[level], labels)
            print(f"  {level:8s} cluster quality: {score:+.3f}")
        print("\n  fusion-feature t-SNE (one marker per class):")
        print(
            "\n".join(
                "  " + line for line in ascii_scatter(embeddings["fused1"], labels).split("\n")
            )
        )


if __name__ == "__main__":
    main()
