"""Multi-stream serving: one engine, many concurrent radar streams.

The deployed system (Fig. 7) is one device serving one user at a time.
This example shows the serving layer that scales that picture out: a
:class:`~repro.serving.ModelRegistry` memoises the fitted system (first
run fits and checkpoints it; later runs load in milliseconds), and a
:class:`~repro.serving.StreamHub` multiplexes eight simulated
single-person device streams over a shared micro-batched
:class:`~repro.serving.InferenceEngine` governed by a deadline-aware
:class:`~repro.serving.BatchScheduler`: spans accumulate across frame
rounds into larger batches, but never longer than the latency SLO
allows.  Mid-run the checkpoint is overwritten on disk and picked up by
``registry.load(..., on_change=engine.swap_system)`` — a registry-backed
hot reload that drops no pending span and tags results with the model
version that produced them.  (Multi-person scenes plug into the same hub
via ``open_stream(..., multi_user=True)`` — see
``tests/serving/test_hub.py``.)

Run:  python examples/serving_hub.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro import (
    ASL_GESTURES,
    ENVIRONMENTS,
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    generate_users,
    perform_gesture,
)
from repro.radar import FastRadar, IWR6843_CONFIG
from repro.radar.pointcloud import Frame
from repro.serving import ModelRegistry, StreamHub

NUM_POINTS = 64
NUM_STREAMS = 8
SLO_MS = 50.0  # p95 span-close -> event-delivery budget


def fit_small_system() -> GesturePrint:
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=10,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=14, batch_size=32, learning_rate=3e-3)
    )
    return GesturePrint(config).fit(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )


def main() -> None:
    registry = ModelRegistry()
    checkpoint = pathlib.Path(tempfile.gettempdir()) / "repro-serving-hub-model"
    t0 = time.time()
    system = registry.get_or_fit("serving-demo", fit_small_system, directory=checkpoint)
    print(f"model ready in {time.time() - t0:.1f}s "
          f"(fits={registry.stats.fits}, loads={registry.stats.loads}; "
          "re-run this example to see the checkpoint load instead)")

    # Eight simulated devices: each records one gesture performance.
    users = generate_users(NUM_STREAMS, seed=11)
    radar = FastRadar(IWR6843_CONFIG, seed=0)
    gesture_names = sorted(ASL_GESTURES)
    streams: dict[str, list[Frame]] = {}
    for i in range(NUM_STREAMS):
        recording = perform_gesture(
            users[i], ASL_GESTURES[gesture_names[i % len(gesture_names)]],
            radar, ENVIRONMENTS["office"],
            rng=np.random.default_rng(100 + i),
        )
        streams[f"device-{i}"] = list(recording.frames)

    hub = StreamHub(system, max_batch_size=32, slo_ms=SLO_MS, base_seed=7)
    for stream_id in streams:
        hub.open_stream(stream_id)

    num_rounds = max(len(f) for f in streams.values())
    t0 = time.time()
    events = []
    for round_idx in range(num_rounds):
        frames = {
            sid: frames[round_idx]
            for sid, frames in streams.items()
            if round_idx < len(frames)
        }
        events.extend(hub.push_round(frames))
        if round_idx == num_rounds // 2:
            # Simulate a back-end retrain landing mid-serve: the
            # checkpoint is overwritten on disk (here by a throwaway
            # registry, standing in for another process), and our
            # registry's next staleness check hot-swaps it into the
            # engine.  Pending spans finish on the old weights; results
            # from here on carry model_version 1.  (Drain the queue
            # first so no span's latency eats the synchronous disk I/O —
            # a real deployment would checkpoint in another process.)
            events.extend(hub.flush_pending())
            ModelRegistry().save(system, checkpoint)
            registry.load(checkpoint, on_change=hub.engine.swap_system)
    events.extend(hub.flush_streams())
    elapsed = time.time() - t0

    stats = hub.engine.stats
    scheduler = hub.engine.scheduler
    print(f"\n{len(events)} events from {NUM_STREAMS} concurrent streams "
          f"in {elapsed:.2f}s ({len(events) / elapsed:.1f} events/s)")
    print(f"engine: {stats.requests} requests -> {stats.batches} batches "
          f"(mean batch {stats.mean_batch:.1f}); "
          f"model swaps: {stats.swaps} (now v{hub.engine.model_version})")
    p95 = scheduler.queue_p95_ms
    p95_text = f"{p95:.1f} ms" if p95 is not None else "n/a"
    # NB: in this single-threaded demo the queue wait includes *other*
    # streams' span preparation (~35 ms each when gestures close in a
    # burst), which the scheduler cannot control; see bench_slo.py for
    # the SLO-adherence measurement on classifier-ready samples.
    print(f"scheduler: SLO {SLO_MS:.0f} ms, batch limit {scheduler.batch_limit}, "
          f"{scheduler.stats.deadline_flushes} deadline / "
          f"{scheduler.stats.depth_flushes} depth flushes, "
          f"queue p95 {p95_text} (incl. span-prep stalls)")
    for stream_event in events:
        event = stream_event.event
        print(f"  {stream_event.stream_id}: gesture #{event.gesture} "
              f"(p={event.gesture_confidence:.2f}) by user #{event.user} "
              f"(p={event.user_confidence:.2f})")


if __name__ == "__main__":
    main()
