"""Multi-stream serving: one engine, many concurrent radar streams.

The deployed system (Fig. 7) is one device serving one user at a time.
This example shows the serving layer that scales that picture out: a
:class:`~repro.serving.ModelRegistry` memoises the fitted system (first
run fits and checkpoints it; later runs load in milliseconds), and a
:class:`~repro.serving.StreamHub` multiplexes eight simulated
single-person device streams over a shared micro-batched
:class:`~repro.serving.InferenceEngine`.  (Multi-person scenes plug
into the same hub via ``open_stream(..., multi_user=True)`` — see
``tests/serving/test_hub.py``.)

Run:  python examples/serving_hub.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro import (
    ASL_GESTURES,
    ENVIRONMENTS,
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    generate_users,
    perform_gesture,
)
from repro.radar import FastRadar, IWR6843_CONFIG
from repro.radar.pointcloud import Frame
from repro.serving import ModelRegistry, StreamHub

NUM_POINTS = 64
NUM_STREAMS = 8


def fit_small_system() -> GesturePrint:
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=10,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=14, batch_size=32, learning_rate=3e-3)
    )
    return GesturePrint(config).fit(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )


def main() -> None:
    registry = ModelRegistry()
    checkpoint = pathlib.Path(tempfile.gettempdir()) / "repro-serving-hub-model"
    t0 = time.time()
    system = registry.get_or_fit("serving-demo", fit_small_system, directory=checkpoint)
    print(f"model ready in {time.time() - t0:.1f}s "
          f"(fits={registry.stats.fits}, loads={registry.stats.loads}; "
          f"re-run this example to see the checkpoint load instead)")

    # Eight simulated devices: each records one gesture performance.
    users = generate_users(NUM_STREAMS, seed=11)
    radar = FastRadar(IWR6843_CONFIG, seed=0)
    gesture_names = sorted(ASL_GESTURES)
    streams: dict[str, list[Frame]] = {}
    for i in range(NUM_STREAMS):
        recording = perform_gesture(
            users[i], ASL_GESTURES[gesture_names[i % len(gesture_names)]],
            radar, ENVIRONMENTS["office"],
            rng=np.random.default_rng(100 + i),
        )
        streams[f"device-{i}"] = list(recording.frames)

    hub = StreamHub(system, max_batch_size=32, base_seed=7)
    for stream_id in streams:
        hub.open_stream(stream_id)

    t0 = time.time()
    events = []
    for round_idx in range(max(len(f) for f in streams.values())):
        frames = {
            sid: frames[round_idx]
            for sid, frames in streams.items()
            if round_idx < len(frames)
        }
        events.extend(hub.push_round(frames))
    events.extend(hub.flush_streams())
    elapsed = time.time() - t0

    stats = hub.engine.stats
    print(f"\n{len(events)} events from {NUM_STREAMS} concurrent streams "
          f"in {elapsed:.2f}s ({len(events) / elapsed:.1f} events/s)")
    print(f"engine: {stats.requests} requests -> {stats.batches} batches "
          f"(mean batch {stats.mean_batch:.1f})")
    for stream_event in events:
        event = stream_event.event
        print(f"  {stream_event.stream_id}: gesture #{event.gesture} "
              f"(p={event.gesture_confidence:.2f}) by user #{event.user} "
              f"(p={event.user_confidence:.2f})")


if __name__ == "__main__":
    main()
