"""Quickstart: train GesturePrint on a small simulated ASL dataset.

Renders a scaled-down version of the paper's self-collected dataset
(simulated participants + simulated IWR6843 radar), trains the gesture
recognition model and the per-gesture user-identification models, and
prints the seven evaluation metrics the paper reports.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    GesturePrint,
    GesturePrintConfig,
    TrainConfig,
    build_selfcollected,
    train_test_split,
)


def main() -> None:
    print("Rendering simulated dataset (4 users x 4 ASL gestures x 12 reps)...")
    t0 = time.time()
    dataset = build_selfcollected(
        num_users=4,
        num_gestures=4,
        reps=12,
        environments=("office",),
        num_points=64,
        seed=42,
    )
    print(f"  {dataset.num_samples} samples in {time.time() - t0:.1f}s")
    print(f"  gestures: {dataset.gesture_names}")

    train_idx, test_idx = train_test_split(dataset.num_samples, 0.2, seed=0)
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=25, batch_size=32, learning_rate=3e-3),
        augment_copies=3,
    )
    print("Training GesturePrint (1 gesture model + 4 user-ID models)...")
    t0 = time.time()
    system = GesturePrint(config).fit(
        dataset.inputs[train_idx],
        dataset.gesture_labels[train_idx],
        dataset.user_labels[train_idx],
    )
    print(f"  trained in {time.time() - t0:.0f}s")

    metrics = system.evaluate(
        dataset.inputs[test_idx],
        dataset.gesture_labels[test_idx],
        dataset.user_labels[test_idx],
    )
    print("\nHeld-out metrics (paper, full scale: GRA 98.2%, UIA 99.3% in the office):")
    for key in ("GRA", "GRF1", "GRAUC", "UIA", "UIF1", "UIAUC", "EER"):
        print(f"  {key:6s} = {metrics[key]:.4f}")

    result = system.predict(dataset.inputs[test_idx][:5])
    print("\nFirst five test samples:")
    for i in range(5):
        true_g = dataset.gesture_names[dataset.gesture_labels[test_idx][i]]
        pred_g = dataset.gesture_names[result.gesture_pred[i]]
        print(
            f"  sample {i}: gesture {pred_g!r} (true {true_g!r}), "
            f"user #{result.user_pred[i]} (true #{dataset.user_labels[test_idx][i]})"
        )


if __name__ == "__main__":
    main()
