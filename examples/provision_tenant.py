"""Provisioning a tenant: secret → salted hash → config → live traffic.

The operator-side half of the security layer (`docs/security.md`):
what actually happens when you onboard a device.  Secrets never land
in a config file — only ``sha256:<salt>:<digest>`` records do — and
budgets ride in the same file, so one JSON document is the whole
tenant contract.  The flow:

1. generate a bearer token for a new tenant (``secrets.token_urlsafe``
   — the one copy that exists goes to the device, nowhere else);
2. write a ``--tenants`` config carrying the token's *hash*, an SLO
   class assignment, and a small daily request quota;
3. start a gateway on that config and prove the contract end to end:
   the right token classifies, a wrong token dies with ``auth_failed``,
   and the quota runs dry with ``quota_exceeded`` (distinct from
   ``rate_limited`` — stop until the UTC window rolls, don't retry);
4. rotate the token by editing the config and reloading the *running*
   server — the old token dies and the new one works at the next
   handshake, no restart.

Run:  python examples/provision_tenant.py
"""

import json
import pathlib
import secrets
import tempfile
import time

from repro import GesturePrint, GesturePrintConfig, TrainConfig, build_selfcollected
from repro.serving import GatewayClient, GatewayServer, ModelRegistry
from repro.serving.gateway import (
    BackgroundGateway,
    GatewayError,
    TenantDirectory,
    hash_token,
)
from repro.serving.gateway.quota import QuotaLedger

NUM_POINTS = 64
TENANT_ID = "door-sensor-12"
DAILY_BUDGET = 5


def fit_small_system() -> GesturePrint:
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=10,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=14, batch_size=32, learning_rate=3e-3)
    )
    return GesturePrint(config).fit(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )


def write_config(path: pathlib.Path, token: str) -> dict:
    """The ``--tenants`` document: class, hashed credential, budget."""
    config = {
        "tenants": {TENANT_ID: "standard"},
        "auth": {"required": True,
                 "tokens": {TENANT_ID: hash_token(token)}},
        "quotas": {TENANT_ID: {"daily_requests": DAILY_BUDGET}},
    }
    path.write_text(json.dumps(config, indent=2))
    return config


def main() -> None:
    registry = ModelRegistry()
    checkpoint = pathlib.Path(tempfile.gettempdir()) / "repro-gateway-model"
    t0 = time.time()
    system = registry.get_or_fit(
        "gateway-demo", fit_small_system, directory=checkpoint
    )
    print(f"[server] model ready in {time.time() - t0:.1f}s "
          "(re-run to load the checkpoint instead)")

    # 1. The secret exists exactly once, bound for the device.
    token = secrets.token_urlsafe(24)
    print(f"[provision] minted token for {TENANT_ID}: {token[:8]}… "
          "(hand to the device; the server never stores it)")

    # 2. The config stores only the salted hash (plus class + budget).
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-provision-"))
    config_path = workdir / "tenants.json"
    config = write_config(config_path, token)
    print(f"[provision] wrote {config_path.name}: "
          f"class=standard, daily_requests={DAILY_BUDGET}, "
          f"credential={config['auth']['tokens'][TENANT_ID][:18]}…")

    # 3. Serve on that config; in production this is
    #    `repro serve --tenants tenants.json --quota-state quota.json`.
    tenants = TenantDirectory.from_config(config)
    quota = QuotaLedger(tenants.quota_policy,
                        state_path=workdir / "quota-state.json")
    server = GatewayServer(system, tenants=tenants, slo_ms=50.0, quota=quota)

    clouds = build_selfcollected(
        num_users=4, num_gestures=4, reps=3,
        environments=("office",), num_points=NUM_POINTS, seed=7,
    ).inputs

    with BackgroundGateway(server) as (host, port):
        print(f"[server] gateway listening on {host}:{port} (auth required)")

        with GatewayClient(host, port, tenant=TENANT_ID, token=token) as device:
            result = device.classify(clouds[0], deadline_ms=0.0)
            print(f"[device] authed round trip: gesture #{result.gesture} "
                  f"by user #{result.user}")

            try:
                GatewayClient(host, port, tenant=TENANT_ID, token="wrong-token")
            except GatewayError as error:
                print(f"[intruder] wrong token rejected: {error.code}")

            # Burn the rest of the daily budget, then one request over.
            delivered, code = 1, None
            for i in range(DAILY_BUDGET):
                try:
                    device.classify(clouds[(i + 1) % len(clouds)],
                                    deadline_ms=0.0)
                    delivered += 1
                except GatewayError as error:
                    code = error.code
            print(f"[device] {delivered}/{DAILY_BUDGET} budget used; "
                  f"request {DAILY_BUDGET + 1} rejected: {code}")

        # 4. Rotation: new secret, same file, live reload — the change
        #    applies at the next handshake, no restart.
        new_token = secrets.token_urlsafe(24)
        write_config(config_path, new_token)
        server.reload_tenants(json.loads(config_path.read_text()))
        try:
            GatewayClient(host, port, tenant=TENANT_ID, token=token)
        except GatewayError as error:
            print(f"[rotation] old token now rejected: {error.code}")
        with GatewayClient(host, port, tenant=TENANT_ID, token=new_token):
            print("[rotation] new token accepted at the next handshake")

    persisted = json.loads((workdir / "quota-state.json").read_text())
    day = persisted["tenants"][TENANT_ID]["day"]
    print(f"[ledger] persisted usage survives restarts: "
          f"{day['requests']} requests on {day['key']} "
          f"(inspect with `repro quota --state quota-state.json`)")


if __name__ == "__main__":
    main()
