"""Network gateway: remote edge clients streaming clouds over TCP.

The paper's deployment splits sensing from serving: a radar host
segments gestures and a back end classifies them.  PR 1–2 built the
in-process serving layer; this example pushes it across the host
boundary with :class:`~repro.serving.GatewayServer` — the same engine
and deadline-aware scheduler, fronted by an asyncio socket server with
per-tenant SLO classes:

1. fit (or load) a model, mint a throwaway self-signed certificate,
   and start a **TLS** gateway on a background thread, with ``premium``
   / ``standard`` / ``batch`` tiers, two assigned tenants, and
   **bearer-token auth** (the config stores salted hashes, never the
   secrets — see ``examples/provision_tenant.py``);
2. connect two blocking :class:`~repro.serving.GatewayClient` edge
   devices — a premium wall-panel and a batch backfill job — each
   pinning the server certificate and presenting its token, and stream
   gesture clouds at the server (float32 on the wire, ~3 KB per cloud);
3. verify a gateway round trip is *byte-identical* to in-process
   inference on the same (wire-quantised) cloud — TLS changes no bytes;
4. show a stolen/wrong token dying with ``auth_failed`` before any
   request is admitted, without disturbing the authed tenants;
5. print the server's per-tenant snapshot: batching, SLO classes, and
   who got shed (nobody, at this gentle load).

Run:  python examples/gateway_client.py
"""

import pathlib
import tempfile
import time

import numpy as np

from repro import GesturePrint, GesturePrintConfig, TrainConfig, build_selfcollected
from repro.serving import GatewayClient, GatewayServer, InferenceEngine, ModelRegistry
from repro.serving.gateway import (
    BackgroundGateway,
    GatewayError,
    TenantAuthenticator,
    TenantDirectory,
    client_ssl_context,
    generate_self_signed_cert,
    hash_token,
    quantise_sample,
    server_ssl_context,
)

NUM_POINTS = 64
PANEL_TOKEN = "panel-secret-token"        # in production: secrets.token_urlsafe
BACKFILL_TOKEN = "backfill-secret-token"


def fit_small_system() -> GesturePrint:
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=10,
        environments=("office",), num_points=NUM_POINTS, seed=42,
    )
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=14, batch_size=32, learning_rate=3e-3)
    )
    return GesturePrint(config).fit(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )


def main() -> None:
    registry = ModelRegistry()
    checkpoint = pathlib.Path(tempfile.gettempdir()) / "repro-gateway-model"
    t0 = time.time()
    system = registry.get_or_fit("gateway-demo", fit_small_system, directory=checkpoint)
    print(f"[server] model ready in {time.time() - t0:.1f}s "
          "(re-run to load the checkpoint instead)")

    # Gesture clouds to replay from the "edge": any held-out samples do.
    dataset = build_selfcollected(
        num_users=4, num_gestures=4, reps=3,
        environments=("office",), num_points=NUM_POINTS, seed=7,
    )
    clouds = dataset.inputs

    # Transport + identity: a throwaway self-signed certificate (its
    # cert doubles as the clients' trust pin) and per-tenant bearer
    # tokens stored as salted hashes.
    certdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-gateway-tls-"))
    cert, key = generate_self_signed_cert(certdir)
    tenants = TenantDirectory(
        assignments={"wall-panel-7": "premium", "nightly-backfill": "batch"},
        auth=TenantAuthenticator({
            "wall-panel-7": hash_token(PANEL_TOKEN),
            "nightly-backfill": hash_token(BACKFILL_TOKEN),
        }),
    )
    server = GatewayServer(
        system, tenants=tenants, slo_ms=50.0,
        ssl_context=server_ssl_context(cert, key),
    )
    pinned = client_ssl_context(cert)
    with BackgroundGateway(server) as (host, port):
        print(f"[server] TLS gateway listening on {host}:{port} "
              f"(classes: {', '.join(sorted(tenants.classes))})")

        with GatewayClient(host, port, tenant="wall-panel-7",
                           token=PANEL_TOKEN, ssl_context=pinned,
                           client="edge-demo") as panel:
            print(f"[panel] HELLO -> class {panel.slo_class} "
                  f"(SLO {panel.slo_ms:.0f} ms), model v{panel.model_version}")

            # Interactive tier: one synchronous round trip per gesture.
            for cloud in clouds[:6]:
                t0 = time.perf_counter()
                wire = panel.classify(cloud, deadline_ms=0.0)
                rtt_ms = (time.perf_counter() - t0) * 1e3
                print(f"[panel] gesture #{wire.gesture} "
                      f"(p={wire.gesture_probs[wire.gesture]:.2f}) by "
                      f"user #{wire.user} — {rtt_ms:.1f} ms round trip")

            # The gateway promise: the posteriors that crossed the wire
            # are byte-identical to an in-process predict of the same
            # (float32-quantised) cloud.
            local = InferenceEngine(system).predict_one(quantise_sample(clouds[0]))
            wire = panel.classify(clouds[0], deadline_ms=0.0)
            identical = np.array_equal(wire.gesture_probs, local.gesture_probs) and \
                np.array_equal(wire.user_probs, local.user_probs)
            print(f"[panel] TLS wire result byte-identical to in-process: {identical}")

            # Auth is checked in HELLO, before any SUBMIT: a stolen or
            # mistyped token never gets a queue seat.
            try:
                GatewayClient(host, port, tenant="wall-panel-7",
                              token="stolen-token", ssl_context=pinned)
            except GatewayError as error:
                print(f"[intruder] rejected at handshake: {error.code}")

            # Throughput tier: a backfill job pipelines a whole batch of
            # clouds without waiting; the server micro-batches them.
            with GatewayClient(host, port, tenant="nightly-backfill",
                               token=BACKFILL_TOKEN, ssl_context=pinned,
                               client="backfill-demo") as backfill:
                ids = [backfill.submit(cloud) for cloud in clouds]
                outcomes = backfill.collect_all(ids)
                print(f"[backfill] {len(outcomes)} clouds classified "
                      f"as class {backfill.slo_class}")

            snap = panel.stats()
            engine = snap["engine"]
            print(f"[server] {engine['requests']} requests -> "
                  f"{engine['batches']} batches "
                  f"(mean {engine['mean_batch']:.1f}); "
                  f"queue p95 {snap['scheduler']['queue_p95_ms']:.1f} ms")
            for tenant_id, counters in sorted(snap["tenants"].items()):
                print(f"[server]   {tenant_id} [{counters['slo_class']}]: "
                      f"{counters['delivered']} delivered, "
                      f"{counters['shed']} shed, "
                      f"{counters['rejected']} rejected")
    print("[server] gateway stopped")


if __name__ == "__main__":
    main()
