"""Smart-home control: per-user personalised gesture meanings (paper Fig. 1).

The motivating application of the paper: the same physical gesture can
mean different things for different users.  This example trains a
GesturePrint system, then simulates a live smart-home session in which
two residents perform gestures in front of the radar; the controller
recognises each gesture, identifies who performed it, and dispatches
that user's personalised action.

Run:  python examples/smart_home_control.py
"""

import numpy as np

from repro import (
    ASL_GESTURES,
    ENVIRONMENTS,
    FastRadar,
    GesturePrint,
    GesturePrintConfig,
    IWR6843_CONFIG,
    TrainConfig,
    build_selfcollected,
    generate_users,
    perform_gesture,
    preprocess_recording,
)
from repro.core import ActionMapper
from repro.preprocessing.pipeline import normalize_cloud

GESTURES = ["ahead", "away", "front"]


def build_action_mapper() -> ActionMapper:
    """Personalised meaning of each gesture, per user (Fig. 1b)."""
    mapper = ActionMapper(guest_action="ignore (unknown person)")
    # Household defaults (gesture indices follow GESTURES order).
    mapper.bind_default(0, "play the shared playlist")
    mapper.bind_default(1, "open the curtain")
    mapper.bind_default(2, "lights 50%")
    # Resident 0 and 1 personalise the same gestures differently.
    mapper.bind_user(0, 0, "play my jazz playlist")
    mapper.bind_user(1, 0, "play my rock playlist")
    mapper.bind_user(1, 1, "AC +1 degree")
    mapper.bind_user(1, 2, "lights off")
    return mapper


def main() -> None:
    print("Training the controller on enrolment data from 2 residents...")
    dataset = build_selfcollected(
        num_users=2,
        gestures=tuple(GESTURES),
        reps=14,
        environments=("home",),
        num_points=64,
        seed=7,
    )
    config = GesturePrintConfig.small(
        training=TrainConfig(epochs=25, batch_size=24, learning_rate=3e-3),
        augment_copies=3,
    )
    system = GesturePrint(config).fit(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )

    print("Controller online. Simulating a live evening at home...\n")
    mapper = build_action_mapper()
    users = generate_users(2, seed=7)  # same seed => same residents as enrolment
    radar = FastRadar(IWR6843_CONFIG, seed=99)
    rng = np.random.default_rng(123)
    session = [(0, "ahead"), (1, "ahead"), (0, "away"), (1, "front"), (1, "away"), (0, "front")]

    correct = 0
    for who, gesture_name in session:
        recording = perform_gesture(
            users[who], ASL_GESTURES[gesture_name], radar, ENVIRONMENTS["home"], rng=rng
        )
        cloud = preprocess_recording(recording)
        if cloud is None:
            print(f"  [missed] no usable cloud for {gesture_name!r}")
            continue
        sample = normalize_cloud(cloud, 64, rng)[None, ...]
        result = system.predict(sample)
        pred_gesture = dataset.gesture_names[result.gesture_pred[0]]
        pred_user = int(result.user_pred[0])
        dispatch = mapper.dispatch(pred_user, int(result.gesture_pred[0]))
        ok = pred_gesture == gesture_name and pred_user == who
        correct += ok
        tag = "ok " if ok else "MIS"
        print(
            f"  [{tag}] resident {who} performed {gesture_name!r:8s} -> "
            f"recognised {pred_gesture!r:8s} by user #{pred_user} -> "
            f"{dispatch.action} [{dispatch.source}]"
        )
    print(f"\n{correct}/{len(session)} events dispatched to the right personalised action.")


if __name__ == "__main__":
    main()
