"""Setup shim: this offline environment lacks the `wheel` package, so the
PEP 660 editable-install path is unavailable; the legacy setup.py path
used by `pip install -e .` works without it."""

from setuptools import setup

setup()
