"""Tests for the numpy t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis import tsne
from repro.analysis.tsne import cluster_quality


def _three_blobs(n_per=15, separation=10.0, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    blobs = []
    labels = []
    for k in range(3):
        center = np.zeros(dim)
        center[k] = separation
        blobs.append(center + rng.normal(size=(n_per, dim)))
        labels.extend([k] * n_per)
    return np.vstack(blobs), np.array(labels)


class TestTsne:
    def test_output_shape(self):
        features, _ = _three_blobs()
        embedding = tsne(features, iterations=60, seed=0)
        assert embedding.shape == (45, 2)

    def test_separated_blobs_stay_separated(self):
        features, labels = _three_blobs(separation=20.0)
        embedding = tsne(features, iterations=250, seed=1)
        quality = cluster_quality(embedding, labels)
        assert quality > 0.5

    def test_preserves_neighbourhoods_better_than_random(self):
        features, labels = _three_blobs()
        embedding = tsne(features, iterations=200, seed=2)
        rng = np.random.default_rng(3)
        random_embedding = rng.normal(size=embedding.shape)
        assert cluster_quality(embedding, labels) > cluster_quality(
            random_embedding, labels
        )

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 4)))

    def test_deterministic_given_seed(self):
        features, _ = _three_blobs(n_per=6)
        a = tsne(features, iterations=50, seed=5)
        b = tsne(features, iterations=50, seed=5)
        np.testing.assert_allclose(a, b)


class TestClusterQuality:
    def test_perfect_clusters_score_high(self):
        embedding = np.vstack([np.zeros((10, 2)), 100.0 + np.zeros((10, 2))])
        labels = np.array([0] * 10 + [1] * 10)
        assert cluster_quality(embedding, labels) > 0.95

    def test_mixed_clusters_score_low(self):
        rng = np.random.default_rng(0)
        embedding = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, 40)
        assert cluster_quality(embedding, labels) < 0.3
