"""Lock-order witness tests: AB/BA cycle detection, raise mode,
Condition compatibility, and clean install/uninstall.

Locks are deliberately created on *distinct* source lines: the witness
names locks by creation site, so two locks born on one line merge into
a single graph node (lock class, not instance) and their ordering is
invisible by design.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockwitness
from repro.analysis.lockwitness import (
    LockGraph,
    LockOrderViolation,
    WitnessLock,
    WitnessRLock,
    install,
    install_if_enabled,
)


@pytest.fixture()
def witness():
    handle = install()
    try:
        yield handle
    finally:
        handle.uninstall()


def make_pair():
    # Two creation sites -> two graph nodes.
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    return lock_a, lock_b


def run_in_thread(fn):
    worker = threading.Thread(target=fn, daemon=True)
    worker.start()
    worker.join(timeout=10)
    assert not worker.is_alive()


def test_install_patches_and_uninstall_restores():
    saved_lock, saved_rlock = threading.Lock, threading.RLock
    handle = install()
    try:
        assert isinstance(threading.Lock(), WitnessLock)
        assert isinstance(threading.RLock(), WitnessRLock)
    finally:
        handle.uninstall()
    assert threading.Lock is saved_lock
    assert threading.RLock is saved_rlock
    handle.uninstall()  # idempotent
    assert threading.Lock is saved_lock


def test_consistent_order_is_clean(witness):
    lock_a, lock_b = make_pair()

    def take_in_order():
        with lock_a:
            with lock_b:
                pass

    run_in_thread(take_in_order)
    run_in_thread(take_in_order)
    witness.assert_clean()
    summary = witness.summary()
    assert summary["cycles"] == []
    assert summary["edges"] >= 1
    assert summary["acquisitions"] >= 4


def test_ab_ba_cycle_detected(witness):
    lock_a, lock_b = make_pair()

    def ab():
        with lock_a:
            with lock_b:
                pass

    def ba():
        with lock_b:
            with lock_a:
                pass

    # Sequential threads: no real deadlock ever happens, but the
    # *ordering* cycle is recorded all the same — that is the point.
    run_in_thread(ab)
    run_in_thread(ba)
    with pytest.raises(AssertionError, match="lock-order cycle"):
        witness.assert_clean()
    rendered = witness.summary()["cycles"]
    assert len(rendered) == 1
    assert " -> " in rendered[0]


def test_raise_mode_raises_at_the_closing_acquire():
    handle = install(raise_on_cycle=True)
    try:
        lock_a, lock_b = make_pair()
        with lock_a:
            with lock_b:
                pass
        failure = []

        def ba():
            try:
                with lock_b:
                    with lock_a:
                        pass
            except LockOrderViolation as error:
                failure.append(error)

        run_in_thread(ba)
        assert len(failure) == 1
        assert "lock-order cycle" in str(failure[0])
    finally:
        handle.uninstall()


def test_same_site_locks_merge_into_one_node(witness):
    locks = [threading.Lock() for _ in range(2)]  # one creation site

    def pairwise():
        with locks[0]:
            with locks[1]:
                pass

    def reversed_pairwise():
        with locks[1]:
            with locks[0]:
                pass

    run_in_thread(pairwise)
    run_in_thread(reversed_pairwise)
    # Same-site edges are skipped: per-instance ordering of one lock
    # class is not a reportable cycle.
    witness.assert_clean()


def test_rlock_reentrancy_keeps_single_stack_entry(witness):
    rlock = threading.RLock()
    other = threading.Lock()

    def reenter():
        with rlock:
            with rlock:
                with other:
                    pass

    run_in_thread(reenter)
    witness.assert_clean()
    assert witness.summary()["acquisitions"] >= 2


def test_condition_over_witnessed_rlock(witness):
    condition = threading.Condition()  # default lock is threading.RLock()
    fired = threading.Event()

    def waiter():
        with condition:
            condition.wait(timeout=10)
            fired.set()

    worker = threading.Thread(target=waiter, daemon=True)
    worker.start()
    # Let the waiter reach wait() before notifying.
    import time

    deadline = time.monotonic() + 10
    while not worker.is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    time.sleep(0.05)
    with condition:
        condition.notify_all()
    worker.join(timeout=10)
    assert fired.is_set()
    witness.assert_clean()


def test_install_if_enabled_honours_env(monkeypatch):
    monkeypatch.delenv(lockwitness.ENV_VAR, raising=False)
    assert install_if_enabled() is None
    monkeypatch.setenv(lockwitness.ENV_VAR, "0")
    assert install_if_enabled() is None
    monkeypatch.setenv(lockwitness.ENV_VAR, "1")
    handle = install_if_enabled()
    try:
        assert handle is not None
    finally:
        handle.uninstall()


def test_graph_summary_counts_created_locks():
    graph = LockGraph()
    handle = install(graph=graph)
    try:
        first = threading.Lock()
        second = threading.RLock()
        with first:
            pass
        with second:
            pass
    finally:
        handle.uninstall()
    summary = graph.summary()
    assert summary["locks_created"] == 2
    assert summary["acquisitions"] == 2
    assert summary["cycles"] == []
