"""Tests for the stage timing profiler."""

import time

import pytest

from repro.analysis import StageTimer


class TestStageTimer:
    def test_records_and_averages(self):
        timer = StageTimer()
        timer.record("stage", 0.010)
        timer.record("stage", 0.020)
        assert timer.mean_ms("stage") == pytest.approx(15.0)

    def test_context_manager_measures(self):
        timer = StageTimer()
        with timer.time("sleepy"):
            time.sleep(0.01)
        assert timer.mean_ms("sleepy") >= 8.0

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            StageTimer().mean_ms("nothing")

    def test_stages_listed(self):
        timer = StageTimer()
        timer.record("a", 0.001)
        timer.record("b", 0.001)
        assert set(timer.stages()) == {"a", "b"}


class TestEdgeProjection:
    def _report(self):
        from repro.analysis.timing import TimingReport

        return TimingReport(
            preprocessing_ms=40.0, recognition_ms=10.0, identification_ms=6.0, runs=5
        )

    def test_scales_every_stage(self):
        from repro.analysis.timing import project_edge_latency

        edge = project_edge_latency(self._report(), slowdown=2.0)
        assert edge.preprocessing_ms == 80.0
        assert edge.recognition_ms == 20.0
        assert edge.identification_ms == 12.0
        assert edge.total_ms == 112.0

    def test_default_factor_matches_paper_ratio(self):
        from repro.analysis.timing import JETSON_NANO_SLOWDOWN

        assert JETSON_NANO_SLOWDOWN == pytest.approx(1580.0 / 677.14)

    def test_rejects_nonpositive_slowdown(self):
        from repro.analysis.timing import project_edge_latency

        with pytest.raises(ValueError):
            project_edge_latency(self._report(), slowdown=0.0)

    def test_records_slowdown_in_extra(self):
        from repro.analysis.timing import project_edge_latency

        edge = project_edge_latency(self._report(), slowdown=3.0)
        assert edge.extra["slowdown"] == 3.0
