"""Fixture suite for repro-check (RC001–RC007).

One must-flag snippet and one near-miss per rule, written into a
tmp tree whose layout satisfies each rule's path scoping, plus the
machinery tests: suppression comments (own line and line-above),
baseline round-trip, and CLI exit codes on seeded violations.  The
final test runs the analyzer over the real repo — the committed
baseline must absorb everything, i.e. the tree stays clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.checks import (
    load_baseline,
    main,
    run_checks,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.rules import RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[2]


def scan(tmp_path: Path, rel: str, source: str, rule_id: str):
    """Write ``source`` at ``rel`` under tmp_path and run one rule."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    findings, scanned = run_checks(
        [str(target)], root=str(tmp_path), rules=[RULES_BY_ID[rule_id]]
    )
    assert scanned == 1
    return findings


# ----------------------------------------------------------------------
# RC001 — blocking call inside async def (gateway only)
# ----------------------------------------------------------------------
def test_rc001_flags_blocking_in_async(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/gateway/server.py",
        """
        import time

        async def handle(reader, writer):
            time.sleep(0.1)
        """,
        "RC001",
    )
    assert [f.rule for f in findings] == ["RC001"]
    assert "async def handle" in findings[0].message


def test_rc001_near_miss_awaited_and_sync(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/gateway/server.py",
        """
        import asyncio
        import time

        async def handle(reader, writer):
            await asyncio.sleep(0.1)

        def blocking_is_fine_off_the_loop():
            time.sleep(0.1)
        """,
        "RC001",
    )
    assert findings == []


def test_rc001_covers_the_cluster_tier(tmp_path):
    # The router is event-loop code too: a blocking call in
    # serving/cluster/ stalls every client behind the cluster.
    findings = scan(
        tmp_path,
        "src/repro/serving/cluster/router.py",
        """
        import time

        async def _heartbeat(node_id):
            time.sleep(0.1)
        """,
        "RC001",
    )
    assert [f.rule for f in findings] == ["RC001"]
    assert "async def _heartbeat" in findings[0].message


def test_rc001_scoped_to_gateway(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/engine.py",
        """
        import time

        async def helper():
            time.sleep(0.1)
        """,
        "RC001",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC002 — lock held across a blocking / dispatch boundary
# ----------------------------------------------------------------------
def test_rc002_flags_io_under_lock(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/pool.py",
        """
        import shutil
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def clear(self):
                with self._lock:
                    shutil.rmtree("/tmp/arena")
        """,
        "RC002",
    )
    assert [f.rule for f in findings] == ["RC002"]
    assert "rmtree" in findings[0].message


def test_rc002_near_miss_collect_then_act(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/pool.py",
        """
        import shutil
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def clear(self):
                with self._lock:
                    doomed = list(self._bundles)
                    self._bundles.clear()
                for path in doomed:
                    shutil.rmtree(path)
        """,
        "RC002",
    )
    assert findings == []


def test_rc002_propagates_through_helpers(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/pool.py",
        """
        import shutil
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def _delete_bundle(self, path):
                shutil.rmtree(path)

            def clear(self):
                with self._lock:
                    self._delete_bundle("/tmp/arena")
        """,
        "RC002",
    )
    # Two sites: the root rmtree inside the (unlocked) helper is fine,
    # but calling the helper under the lock is flagged with the chain.
    assert [f.rule for f in findings] == ["RC002"]
    assert "_delete_bundle" in findings[0].message


def test_rc002_locked_suffix_convention(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/pool.py",
        """
        import shutil

        def _retire_locked(path):
            shutil.rmtree(path)
        """,
        "RC002",
    )
    assert [f.rule for f in findings] == ["RC002"]
    assert "_retire_locked" in findings[0].message


def test_rc002_nonblocking_variants_pass(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/pool.py",
        """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._side = threading.Lock()

            def poke(self, worker):
                with self._lock:
                    worker.thread.join(timeout=0)
                    got = self._side.acquire(blocking=False)
                    parts = ", ".join(["a", "b"])
                    return got, parts
        """,
        "RC002",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC003 — user callback invoked under a lock
# ----------------------------------------------------------------------
def test_rc003_flags_callback_under_lock(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/hub.py",
        """
        import threading

        class Hub:
            def __init__(self, callback):
                self._lock = threading.Lock()
                self.callback = callback

            def notify(self, event):
                with self._lock:
                    self.callback(event)
        """,
        "RC003",
    )
    assert [f.rule for f in findings] == ["RC003"]
    assert "callback" in findings[0].message


def test_rc003_near_miss_snapshot_then_call(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/hub.py",
        """
        import threading

        class Hub:
            def __init__(self, callback):
                self._lock = threading.Lock()
                self.callback = callback

            def notify(self, event):
                with self._lock:
                    fire = self.callback
                self.callback_count = 1
                fire(event)
        """,
        "RC003",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC004 — wall clock in serving latency paths
# ----------------------------------------------------------------------
def test_rc004_flags_wall_clock_in_serving(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/scheduler.py",
        """
        import time

        def observe():
            start = time.time()
            return start
        """,
        "RC004",
    )
    assert [f.rule for f in findings] == ["RC004"]
    assert "monotonic" in findings[0].message


def test_rc004_near_miss_monotonic_clocks(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/scheduler.py",
        """
        import time

        def observe():
            return time.perf_counter(), time.monotonic()
        """,
        "RC004",
    )
    assert findings == []


def test_rc004_scoped_to_serving(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/core/trainer.py",
        """
        import time

        def stamp():
            return time.time()
        """,
        "RC004",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC005 — pickling / mutating arena-backed models in backend code
# ----------------------------------------------------------------------
def test_rc005_flags_pickle_and_send_of_arena(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/backends/shipper.py",
        """
        import pickle

        def ship(conn, bundle, key):
            system = load_system_flat(bundle, key)
            blob = pickle.dumps(system)
            conn.send(system)
            return blob
        """,
        "RC005",
    )
    assert [f.rule for f in findings] == ["RC005", "RC005"]
    assert "mmap" in findings[0].message or "arena" in findings[0].message


def test_rc005_flags_mutation_through_arena_binding(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/backends/shipper.py",
        """
        def patch(bundle, key):
            system = load_system_flat(bundle, key)
            system.weights[0] = 0.0
        """,
        "RC005",
    )
    assert [f.rule for f in findings] == ["RC005"]
    assert "copy-on-write" in findings[0].message


def test_rc005_near_miss_ship_by_reference(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/backends/shipper.py",
        """
        def ship(conn, bundle, key):
            system = load_system_flat(bundle, key)
            conn.send((bundle, key))
            return system
        """,
        "RC005",
    )
    assert findings == []


def test_rc005_scoped_to_backend_and_worker_code(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/core/export.py",
        """
        import pickle

        def snapshot(obj):
            return pickle.dumps(obj)
        """,
        "RC005",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC006 — thread hygiene
# ----------------------------------------------------------------------
def test_rc006_flags_daemonless_thread_and_swallows(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/super.py",
        """
        import threading

        def start(run):
            thread = threading.Thread(target=run)
            thread.start()
            while True:
                try:
                    run()
                except Exception:
                    continue

        def legacy():
            try:
                return 1
            except:
                return 0
        """,
        "RC006",
    )
    assert [f.rule for f in findings] == ["RC006", "RC006", "RC006"]
    messages = " | ".join(f.message for f in findings)
    assert "daemon=" in messages
    assert "swallowed" in messages
    assert "bare `except:`" in messages


def test_rc006_near_miss_explicit_daemon_and_recorded_errors(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/super.py",
        """
        import threading

        def start(run, log):
            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            while True:
                try:
                    run()
                except Exception as error:
                    log(error)

        def once(run):
            # Swallowing outside a loop is not the spins-dead pattern.
            try:
                run()
            except Exception:
                pass
        """,
        "RC006",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC007 — ad-hoc telemetry: bare print(), unbounded list-append stats
# ----------------------------------------------------------------------
def test_rc007_flags_print_and_unbounded_append(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/stats.py",
        """
        class Engine:
            def __init__(self):
                self.latencies = []

            def observe(self, latency):
                self.latencies.append(latency)
                print("latency", latency)
        """,
        "RC007",
    )
    assert sorted(f.rule for f in findings) == ["RC007", "RC007"]
    messages = " ".join(f.message for f in findings)
    assert "print" in messages
    assert "self.latencies.append" in messages


def test_rc007_flags_extend_and_list_call(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/stats.py",
        """
        class Log:
            def __init__(self):
                self.events = list()

            def record(self, batch):
                self.events.extend(batch)
        """,
        "RC007",
    )
    assert [f.rule for f in findings] == ["RC007"]


def test_rc007_near_miss_bounded_and_drained(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/stats.py",
        """
        from collections import deque

        class Window:
            def __init__(self):
                # deque(maxlen=...) is bounded: not a list literal.
                self.window = deque(maxlen=256)
                self.pending = []
                self.trimmed = []

            def observe(self, value):
                self.window.append(value)
                self.pending.append(value)
                self.trimmed.append(value)
                # Slice-trim bounds the window in place.
                self.trimmed[:-128] = []

            def drain(self):
                out = list(self.pending)
                self.pending.clear()
                return out
        """,
        "RC007",
    )
    assert findings == []


def test_rc007_scoped_to_serving(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/cli.py",
        """
        def main():
            print("reports are allowed outside serving/")
        """,
        "RC007",
    )
    assert findings == []


def test_rc007_suppression(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/stats.py",
        """
        def debug(value):
            print(value)  # repro-check: ignore[RC007]
        """,
        "RC007",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RC008 — public serving surface must carry docstrings
# ----------------------------------------------------------------------
def test_rc008_flags_bare_public_surface(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/gateway/widgets.py",
        """
        class Widget:
            \"\"\"Documented class, undocumented method.\"\"\"

            def spin(self):
                return 1

        def make_widget():
            return Widget()

        class Gadget:
            pass
        """,
        "RC008",
    )
    messages = sorted(f.message for f in findings)
    assert len(messages) == 3
    assert "class `Gadget`" in messages[0]
    assert "function `make_widget`" in messages[1]
    assert "method `Widget.spin`" in messages[2]
    assert all("no docstring" in m for m in messages)


def test_rc008_near_miss_documented_private_and_nested(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/cluster/widgets.py",
        """
        class Widget:
            \"\"\"Documented.\"\"\"

            def spin(self):
                \"\"\"Documented too.\"\"\"
                def helper():  # nested defs are implementation detail
                    return 1
                return helper()

            def _internal(self):
                return 2

            def __repr__(self):
                return "Widget()"

        def _module_private():
            pass
        """,
        "RC008",
    )
    assert findings == []


def test_rc008_scoped_to_public_serving_tiers(tmp_path):
    source = """
    def bare():
        pass
    """
    for rel in (
        "src/repro/core/pipeline.py",
        "src/repro/serving/engine.py",
        "src/repro/analysis/rules.py",
    ):
        assert scan(tmp_path, rel, source, "RC008") == []
    flagged = scan(tmp_path, "src/repro/serving/gateway/x.py", source, "RC008")
    assert [f.rule for f in flagged] == ["RC008"]


def test_rc008_suppression(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/gateway/y.py",
        """
        def bare():  # repro-check: ignore[RC008]
            pass
        """,
        "RC008",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
SUPPRESSIBLE = """
import shutil
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()

    def clear(self):
        with self._lock:
            shutil.rmtree("/tmp/arena"){inline}
"""


def test_suppression_on_offending_line(tmp_path):
    source = SUPPRESSIBLE.format(inline="  # repro-check: ignore[RC002]")
    assert scan(tmp_path, "src/repro/serving/a.py", source, "RC002") == []


def test_suppression_on_line_above(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/b.py",
        """
        import shutil
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def clear(self):
                with self._lock:
                    # held only by tests; see docs.  # repro-check: ignore[RC002]
                    shutil.rmtree("/tmp/arena")
        """,
        "RC002",
    )
    assert findings == []


def test_suppression_wrong_rule_does_not_apply(tmp_path):
    source = SUPPRESSIBLE.format(inline="  # repro-check: ignore[RC001]")
    findings = scan(tmp_path, "src/repro/serving/c.py", source, "RC002")
    assert [f.rule for f in findings] == ["RC002"]


def test_suppression_star_applies_to_all_rules(tmp_path):
    source = SUPPRESSIBLE.format(inline="  # repro-check: ignore[*]")
    assert scan(tmp_path, "src/repro/serving/d.py", source, "RC002") == []


def test_suppressed_root_clears_propagated_chain(tmp_path):
    findings = scan(
        tmp_path,
        "src/repro/serving/e.py",
        """
        import shutil
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def _delete_bundle(self, path):
                shutil.rmtree(path)  # repro-check: ignore[RC002]

            def clear(self):
                with self._lock:
                    self._delete_bundle("/tmp/arena")
        """,
        "RC002",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
def seeded_findings(tmp_path):
    source = SUPPRESSIBLE.format(inline="")
    return scan(tmp_path, "src/repro/serving/seed.py", source, "RC002")


def test_baseline_round_trip(tmp_path):
    findings = seeded_findings(tmp_path)
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_path))
    baseline = load_baseline(str(baseline_path))
    new, accepted, stale = split_by_baseline(findings, baseline)
    assert new == []
    assert accepted == findings
    assert not stale


def test_baseline_reports_stale_entries_after_fix(tmp_path):
    findings = seeded_findings(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_path))
    baseline = load_baseline(str(baseline_path))
    # The code was "fixed": no findings remain, the entry is stale.
    new, accepted, stale = split_by_baseline([], baseline)
    assert new == [] and accepted == []
    assert sum(stale.values()) == len(findings)


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == {}


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "serving" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(SUPPRESSIBLE.format(inline="")))
    code = main([str(target), "--root", str(tmp_path), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RC002" in out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "serving" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(SUPPRESSIBLE.format(inline="")))
    assert main([str(target), "--root", str(tmp_path), "--write-baseline"]) == 0
    assert main([str(target), "--root", str(tmp_path)]) == 0
    capsys.readouterr()


def test_cli_json_report_shape(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "serving" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(SUPPRESSIBLE.format(inline="")))
    report_path = tmp_path / "report.json"
    code = main(
        [
            str(target),
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--json",
            str(report_path),
        ]
    )
    capsys.readouterr()
    assert code == 1
    import json

    report = json.loads(report_path.read_text())
    assert report["scanned_files"] == 1
    assert [entry["rule"] for entry in report["new"]] == ["RC002"]
    assert report["baselined"] == [] and report["stale_baseline"] == []


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RC001", "RC002", "RC003", "RC004", "RC005", "RC006", "RC008"):
        assert rule_id in out


# ----------------------------------------------------------------------
# The real repo stays clean under the committed baseline
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not (REPO_ROOT / "src" / "repro").is_dir(), reason="source tree not present"
)
def test_repository_is_clean_under_committed_baseline(capsys):
    code = main(["src/repro", "--root", str(REPO_ROOT)])
    capsys.readouterr()
    assert code == 0
