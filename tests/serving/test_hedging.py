"""Request hedging: first result wins, exactly-once delivery, EWMA hygiene.

A hedge is a *verbatim duplicate* of an airborne batch on a second
backend slot, placed only after the primary outlives the hedge
threshold.  The invariants under test:

* the duplicate is a real second submission of the same batch (same
  system, same rows), placed only past the threshold and at most once;
* whichever copy lands first delivers every ticket exactly once — the
  loser is cancelled, and a loser that was already running never
  re-delivers when it eventually lands;
* a disconnected tenant (``discard_pending``) receives nothing from
  either copy;
* hedged batches are invisible to the scheduler's latency model: no
  EWMA update, no p95-window samples — so the safety-margin controller
  cannot be poisoned by duplicated (or recovery-priced) wall times;
* end-to-end over a real process pool: a worker wedged by
  ``inject_fault("hang_in_task")`` is out-raced by the hedge on the
  healthy worker.

The deterministic tests drive a hand-released gate backend with a
manual clock, so hedge timing is exact and no test sleeps.
"""

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serving import BatchScheduler, InferenceEngine, ProcessPoolBackend
from repro.serving.backends import ExecutionBackend


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class GateBackend(ExecutionBackend):
    """Airborne batches land only when the test releases them.

    Unlike the thread/process pools, submitted futures stay *pending*
    (not running), so a cancelled loser is observably ``cancelled()``
    exactly like a queued duplicate a real executor never started.
    """

    name = "gate"
    slots = 4

    def __init__(self):
        self.held: list[tuple[Future, object, np.ndarray]] = []

    def submit(self, system, batch):
        future = Future()
        self.held.append((future, system, batch))
        return future

    def release_at(self, index: int) -> None:
        future, system, batch = self.held.pop(index)
        if not future.set_running_or_notify_cancel():
            return  # cancelled loser: a real executor would skip it too
        start = time.perf_counter()
        try:
            result = system.predict(batch)
        except Exception as error:
            future.set_exception(error)
        else:
            future.set_result((result, time.perf_counter() - start))

    def release_all(self) -> None:
        while self.held:
            self.release_at(0)


HEDGE_MS = 50.0


def _engine(fitted, *, scheduler=None, hedge_ms=HEDGE_MS):
    clock = ManualClock()
    backend = GateBackend()
    engine = InferenceEngine(
        fitted,
        max_batch_size=8,
        scheduler=scheduler,
        backend=backend,
        clock=clock,
        hedge_ms=hedge_ms,
    )
    return engine, backend, clock


class TestHedgePlacement:
    def test_no_hedge_before_threshold(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 * 0.5)
        engine.poll()
        assert len(backend.held) == 1  # primary only
        assert engine.stats.hedged_batches == 0

    def test_hedge_is_verbatim_duplicate_placed_once(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        engine.submit(x[0], defer_flush=True)
        engine.submit(x[1], defer_flush=True)
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        assert len(backend.held) == 2
        assert engine.stats.hedged_batches == 1
        assert engine.num_airborne == 2  # one flight, two live submissions
        (_, sys_a, batch_a), (_, sys_b, batch_b) = backend.held
        assert sys_a is sys_b is fitted
        assert np.array_equal(batch_a, batch_b)
        # Already hedged: more polls past the threshold add nothing.
        clock.advance(1.0)
        engine.poll()
        assert engine.stats.hedged_batches == 1
        assert len(backend.held) == 2

    def test_hedge_budget_spares_one_slot(self, fitted, toy_data):
        """slots-1 hedges max: a pool-wide stall must not be amplified."""
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        for i in range(4):  # four distinct shapes -> four single-row batches
            engine.submit(x[i][: 4 + i], defer_flush=True)
        engine.dispatch()
        assert len(backend.held) == 4
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        assert engine.stats.hedged_batches == 3  # budget = slots - 1
        assert len(backend.held) == 7

    def test_disabled_and_validation(self, fitted):
        engine = InferenceEngine(fitted)
        assert not engine.hedging
        with pytest.raises(ValueError):
            InferenceEngine(fitted, hedge_ms=0.0)
        with pytest.raises(ValueError):
            InferenceEngine(fitted, hedge_ms="soon")
        with pytest.raises(ValueError):  # auto needs a latency model
            InferenceEngine(fitted, hedge_ms="auto")


class TestFirstResultWins:
    def test_hedge_wins_and_primary_never_redelivers(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        deliveries: list = []
        tickets = [
            engine.submit(x[i], callback=deliveries.append, defer_flush=True)
            for i in range(3)
        ]
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        assert len(backend.held) == 2
        backend.release_at(1)  # the hedge lands first
        engine.poll()
        assert [t.done for t in tickets] == [True, True, True]
        assert len(deliveries) == 3
        assert engine.stats.hedge_wins == 1
        # The losing primary was cancelled pending; releasing the gate's
        # remainder runs nothing and re-delivers nothing.
        assert backend.held[0][0].cancelled()
        backend.release_all()
        engine.poll()
        assert len(deliveries) == 3

    def test_primary_wins_and_hedge_is_cancelled(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        deliveries: list = []
        ticket = engine.submit(x[0], callback=deliveries.append, defer_flush=True)
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        backend.release_at(0)  # the primary lands first
        engine.poll()
        assert ticket.done and len(deliveries) == 1
        assert engine.stats.hedged_batches == 1
        assert engine.stats.hedge_wins == 0
        assert backend.held[0][0].cancelled()  # the losing hedge
        backend.release_all()
        engine.poll()
        assert len(deliveries) == 1

    def test_winner_matches_unhedged_result(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        ticket = engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        backend.release_at(1)
        engine.poll()
        reference = InferenceEngine(fitted).predict_one(x[0])
        assert ticket.result().gesture == reference.gesture
        assert np.array_equal(ticket.result().gesture_probs, reference.gesture_probs)


class TestDisconnectedTenant:
    def test_no_delivery_from_either_copy_after_discard(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, backend, clock = _engine(fitted)
        deliveries: list = []
        errors: list = []
        ticket = engine.submit(
            x[0],
            meta="tenant-7",
            callback=deliveries.append,
            on_error=errors.append,
            defer_flush=True,
        )
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        assert len(backend.held) == 2  # hedge airborne too
        assert engine.discard_pending(lambda meta: meta == "tenant-7") == 1
        backend.release_all()  # both copies land after the disconnect
        engine.poll()
        assert ticket.cancelled
        assert deliveries == [] and errors == []
        assert engine.num_in_flight == 0


class TestSchedulerHygiene:
    def test_hedged_batch_excluded_from_ewma_and_window(self, fitted, toy_data):
        x, _, _ = toy_data
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=8)
        engine, backend, clock = _engine(fitted, scheduler=scheduler)
        engine._clock = clock  # the scheduler's clock would win otherwise
        # A clean batch first: the model must have real observations.
        engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        backend.release_all()
        engine.poll()
        observed = scheduler.stats.observed_batches
        window_len = len(scheduler.stats.queue_window)
        assert observed == 1 and window_len == 1
        # Now a hedged batch of three.
        for i in range(3):
            engine.submit(x[1 + i], defer_flush=True)
        engine.dispatch()
        clock.advance(HEDGE_MS / 1e3 + 1e-3)
        engine.poll()
        backend.release_at(1)
        engine.poll()
        assert engine.stats.hedge_wins == 1
        assert scheduler.stats.observed_batches == observed  # no EWMA update
        assert scheduler.stats.hedged_batches == 1
        assert len(scheduler.stats.queue_window) == window_len  # no samples
        assert scheduler.stats.excluded_latency_samples == 3

    def test_margin_controller_stable_under_hedge_rate(self):
        """Satellite-6 regression: 10% hedged deliveries with wild wall
        times must not widen the p95 safety margin."""
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=8, adapt_margin=True)
        control = BatchScheduler(slo_ms=50.0, max_batch=8, adapt_margin=True)
        for i in range(320):
            scheduler.record_queue_latency(0.010)
            control.record_queue_latency(0.010)
            if i % 10 == 0:  # every tenth delivery rode a hedged batch
                scheduler.record_queue_latency(5.0, excluded=True)
        assert scheduler.stats.excluded_latency_samples == 32
        assert max(scheduler.stats.queue_window) <= 0.010 + 1e-9
        # Bit-for-bit the margin trajectory of a hedge-free run.
        assert scheduler.margin_s == control.margin_s
        assert scheduler.stats.margin_widened == control.stats.margin_widened
        assert scheduler.stats.margin_narrowed == control.stats.margin_narrowed

    def test_auto_threshold_tracks_flight_clock_not_arrival_clock(self):
        """The threshold is compared against a *flight age* (dispatch to
        now), so its p95 must come from batch wall times: the
        arrival-based queue window double-counts pre-dispatch assembly
        wait and would hedge far too late under deadline-held batches."""
        scheduler = BatchScheduler(slo_ms=500.0, max_batch=8)
        for _ in range(40):
            # Flights land in 20 ms...
            scheduler.observe_batch(4, 0.020, service_s=0.018)
            # ...but every request waited ~130 ms in assembly first.
            scheduler.record_queue_latency(0.150)
        assert len(scheduler.stats.wall_window) == 40
        assert max(scheduler.stats.wall_window) <= 0.020 + 1e-9
        threshold = scheduler.hedge_threshold_s(4)
        # Wall-clock p95 / 2x-predicted floor, nowhere near the 150 ms
        # arrival latencies the old queue-window statistic would give.
        assert threshold is not None and threshold < 0.100

    def test_excluded_batches_stay_out_of_wall_window(self):
        scheduler = BatchScheduler(slo_ms=500.0, max_batch=8)
        scheduler.observe_batch(4, 0.020)
        scheduler.observe_batch(4, 5.0, retried=True)
        scheduler.observe_batch(4, 5.0, hedged=True)
        # Crash recovery and straggler races price the fault, not the
        # backend: neither may fatten the tail the hedge trigger sees.
        assert list(scheduler.stats.wall_window) == [0.020]

    def test_auto_threshold_needs_observations(self, fitted, toy_data):
        x, _, _ = toy_data
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=8)
        engine, backend, clock = _engine(
            fitted, scheduler=scheduler, hedge_ms="auto"
        )
        engine._clock = clock
        assert engine.hedging
        assert scheduler.hedge_threshold_s(1) is None  # unfitted: never hedge
        engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        clock.advance(10.0)
        engine.poll()
        assert engine.stats.hedged_batches == 0  # no model, no hedging
        backend.release_all()
        engine.poll()
        threshold = scheduler.hedge_threshold_s(1)
        assert threshold is not None and threshold > 0.0


class TestProcessPoolHang:
    def test_hedge_outraces_hung_worker(self, fitted, toy_data):
        """End-to-end: ``hang_in_task`` wedges the primary's worker; the
        hedge on the healthy worker delivers, nothing is lost or doubled."""
        x, _, _ = toy_data
        backend = ProcessPoolBackend(
            workers=2,
            heartbeat_ms=50.0,
            hang_timeout_s=30.0,  # hang detection must not win this race
            shutdown_timeout_s=0.5,
        )
        engine = InferenceEngine(fitted, backend=backend, hedge_ms=200.0)
        try:
            deliveries: list = []
            warm = engine.predict_many(x[:2])  # spawn + attach off the clock
            assert len(warm) == 2
            # Spawn + attach can legitimately out-age the threshold and
            # hedge the warm-up batch itself, so assert increments.
            hedged_before = engine.stats.hedged_batches
            wins_before = engine.stats.hedge_wins
            backend.inject_fault("hang_in_task")
            ticket = engine.submit(x[2], callback=deliveries.append)
            engine.flush(raise_on_error=False)
            assert ticket.done and len(deliveries) == 1
            assert engine.stats.hedged_batches == hedged_before + 1
            assert engine.stats.hedge_wins == wins_before + 1
            reference = InferenceEngine(fitted).predict_one(x[2])
            assert np.array_equal(
                ticket.result().gesture_probs, reference.gesture_probs
            )
        finally:
            backend.close()
