"""Cluster tier end-to-end: router + in-process shards on one loop.

Shards are real :class:`GatewayServer` instances bound to localhost
ports inside the same event loop as the :class:`ClusterRouter`, so
every wire hop is exercised without subprocesses.  Chaos is injected
by aborting a shard's listener and transports (``_partition``), the
in-process equivalent of SIGKILL: no goodbye frames, just dead sockets.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.serving import InferenceEngine, ModelRegistry
from repro.serving.cluster import ClusterRouter, MembershipTable
from repro.serving.gateway import (
    AsyncGatewayClient,
    GatewayError,
    GatewayServer,
    protocol,
)
from repro.serving.gateway.protocol import FrameType

from .test_backends import GateBackend


def _samples(toy_data, count, seed=0):
    x, _, _ = toy_data
    rng = np.random.default_rng(seed)
    return x[rng.integers(0, len(x), size=count)]


def _tenant_owned_by(ring, node_id, prefix="tenant"):
    for index in range(10_000):
        tenant = f"{prefix}-{index}"
        if ring.owner(tenant) == node_id:
            return tenant
    raise AssertionError(f"no tenant hashes to {node_id}")


async def _wait_for(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval_s)
    return False


async def _start_shards(fitted, node_ids, **server_kwargs):
    """``(servers, shards)``: started gateways + their address map."""
    servers: dict[str, GatewayServer] = {}
    shards: dict[str, tuple[str, int]] = {}
    for node_id in node_ids:
        server = GatewayServer(fitted, node_id=node_id, **server_kwargs)
        shards[node_id] = await server.start("127.0.0.1", 0)
        servers[node_id] = server
    return servers, shards


async def _partition(server: GatewayServer) -> None:
    """Make a shard unreachable the way SIGKILL would: stop listening
    and abort every open transport, no graceful teardown."""
    server._server.close()
    await server._server.wait_closed()
    for connection in list(server._connections):
        connection.writer.transport.abort()


class TestMembership:
    """The table alone, with a fake clock — every transition."""

    def _table(self, **kwargs):
        self.now = 0.0
        table = MembershipTable(
            heartbeat_s=1.0, miss_limit=3, clock=lambda: self.now, **kwargs
        )
        table.add("a", ("127.0.0.1", 1))
        return table

    def test_miss_limit_kills(self):
        table = self._table()
        assert table.is_alive("a")
        assert not table.miss("a", reason="t1")
        assert not table.miss("a", reason="t2")
        assert table.miss("a", reason="t3")  # third strike: newly dead
        assert table.dead() == ["a"]
        assert table.get("a").deaths == 1
        # Further misses on a corpse are no-ops, not double deaths.
        assert not table.miss("a", reason="t4")
        assert table.get("a").deaths == 1

    def test_heartbeat_resets_misses_and_revives(self):
        table = self._table()
        table.miss("a", reason="x")
        table.miss("a", reason="x")
        assert not table.heartbeat("a")  # alive -> alive: no heal signal
        assert table.get("a").misses == 0
        table.mark_dead("a", reason="refused")
        assert table.heartbeat("a", summary={"queued": 0})  # dead -> alive
        assert table.get("a").heals == 1
        assert table.get("a").summary == {"queued": 0}

    def test_mark_dead_is_idempotent(self):
        table = self._table()
        assert table.mark_dead("a", reason="refused")
        assert not table.mark_dead("a", reason="again")
        assert table.get("a").deaths == 1

    def test_deadline_expiry_uses_fake_clock(self):
        table = self._table()
        assert not table.deadline_expired("a")  # never heartbeated
        table.heartbeat("a", now=0.0)
        self.now = 2.9
        assert not table.deadline_expired("a")  # 3 * 1.0s budget
        self.now = 3.1
        assert table.deadline_expired("a")

    def test_duplicate_registration_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.add("a", ("127.0.0.1", 2))


class TestRouting:
    def test_affinity_routing_and_byte_identity(self, fitted, toy_data):
        """Tenants land on their ring owner; results match predict_one."""
        reference = InferenceEngine(fitted)
        samples = _samples(toy_data, 6)

        async def run():
            servers, shards = await _start_shards(fitted, ["a", "b"])
            router = ClusterRouter(shards, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                for tenant in ("edge-0", "edge-1", "edge-2", "edge-3"):
                    owner = router.ring.owner(tenant)
                    client = await AsyncGatewayClient.connect(
                        host, port, tenant=tenant
                    )
                    try:
                        assert client.node_id == owner
                        assert client.slo_class == "standard"
                        for sample in samples:
                            wire = await client.classify(sample, deadline_ms=0.0)
                            assert wire.node_id == owner
                            assert not wire.retried
                            local = reference.predict_one(
                                protocol.quantise_sample(sample)
                            )
                            assert wire.gesture == local.gesture
                            assert np.array_equal(
                                wire.gesture_probs, local.gesture_probs
                            )
                            assert np.array_equal(
                                wire.user_probs, local.user_probs
                            )
                    finally:
                        await client.aclose()
                assert router.stats.delivered == 4 * len(samples)
                assert router.stats.redispatched == 0
            finally:
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())

    def test_stats_frame_serves_cluster_snapshot(self, fitted, toy_data):
        async def run():
            servers, shards = await _start_shards(fitted, ["a", "b"])
            router = ClusterRouter(shards, heartbeat_s=0.05)
            try:
                host, port = await router.start()
                client = await AsyncGatewayClient.connect(
                    host, port, tenant="edge-0"
                )
                try:
                    await client.classify(
                        _samples(toy_data, 1)[0], deadline_ms=0.0
                    )
                    # Wait for one heartbeat round so summaries land.
                    assert await _wait_for(
                        lambda: all(
                            record["last_heartbeat"] is not None
                            for record in router.membership.snapshot().values()
                        )
                    )
                    snapshot = await client.stats()
                finally:
                    await client.aclose()
                assert snapshot["role"] == "router"
                assert snapshot["policy"] == "affinity"
                assert snapshot["ring"]["nodes"] == ["a", "b"]
                assert snapshot["router"]["delivered"] == 1
                shard_rows = snapshot["shards"]
                assert set(shard_rows) == {"a", "b"}
                assert all(row["state"] == "alive" for row in shard_rows.values())
                # Heartbeats pull each shard's own snapshot slice across.
                assert all(
                    row["summary"].get("node_id") == node_id
                    for node_id, row in shard_rows.items()
                )
            finally:
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())

    def test_spread_policy_round_robins_one_tenant(self, fitted, toy_data):
        samples = _samples(toy_data, 8)

        async def run():
            servers, shards = await _start_shards(fitted, ["a", "b"])
            router = ClusterRouter(shards, affinity=False, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                client = await AsyncGatewayClient.connect(
                    host, port, tenant="hot-tenant"
                )
                try:
                    for sample in samples:
                        await client.classify(sample, deadline_ms=0.0)
                finally:
                    await client.aclose()
                # One tenant's load spreads over both shards — the
                # anti-affinity control arm.
                assert router._forwarded_by_node.get("a", 0) > 0
                assert router._forwarded_by_node.get("b", 0) > 0
            finally:
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())

    def test_client_disconnect_drops_late_results(self, fitted, toy_data):
        """A vanished client's airborne ticket is reclaimed: the shard's
        eventual result is dropped, not delivered to a dead socket."""
        sample = _samples(toy_data, 1)[0]

        async def run():
            gate = GateBackend()
            servers, shards = await _start_shards(fitted, ["a"], backend=gate)
            router = ClusterRouter(shards, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                client = await AsyncGatewayClient.connect(
                    host, port, tenant="edge-0"
                )
                client.submit_nowait(sample, deadline_ms=0.0)
                await client.drain()
                assert await _wait_for(lambda: len(gate.held) == 1)
                await client.aclose()  # client leaves mid-flight
                assert await _wait_for(lambda: router.num_connections == 0)
                gate.release()
                assert await _wait_for(lambda: len(router._tickets) == 0)
                assert router.stats.delivered == 0
            finally:
                gate.release()
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())


class TestRedispatch:
    def test_exactly_once_redispatch_on_shard_death(self, fitted, toy_data):
        """A busy shard dies with a ticket airborne: the ticket lands on
        the ring successor exactly once, stamped ``retried``, with the
        payload byte-identical to single-node serving."""
        reference = InferenceEngine(fitted)
        sample = _samples(toy_data, 1)[0]

        async def run():
            gate = GateBackend()
            server_a = GatewayServer(fitted, node_id="a", backend=gate)
            server_b = GatewayServer(fitted, node_id="b")
            shards = {
                "a": await server_a.start("127.0.0.1", 0),
                "b": await server_b.start("127.0.0.1", 0),
            }
            router = ClusterRouter(shards, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                tenant = _tenant_owned_by(router.ring, "a")
                client = await AsyncGatewayClient.connect(
                    host, port, tenant=tenant
                )
                try:
                    _, future = client.submit_nowait(sample, deadline_ms=0.0)
                    await client.drain()
                    # The ticket is genuinely airborne inside shard a...
                    assert await _wait_for(lambda: len(gate.held) == 1)
                    await _partition(server_a)  # ...when a "SIGKILLs"
                    wire = await asyncio.wait_for(future, timeout=15.0)
                finally:
                    await client.aclose()
                assert wire.node_id == "b"
                assert wire.retried
                local = reference.predict_one(protocol.quantise_sample(sample))
                assert wire.gesture == local.gesture
                assert np.array_equal(wire.gesture_probs, local.gesture_probs)
                assert np.array_equal(wire.user_probs, local.user_probs)
                assert router.stats.redispatched == 1
                assert router.stats.delivered == 1
                assert router.membership.dead() == ["a"]
                assert "a" not in router.ring
                # Shard a reclaimed the orphan on disconnect: releasing
                # its gate must not produce a duplicate delivery.
                gate.release()
                await asyncio.sleep(0.1)
                assert router.stats.delivered == 1
            finally:
                gate.release()
                await router.aclose()
                await server_a.aclose()
                await server_b.aclose()

        asyncio.run(run())

    def test_second_death_exhausts_the_budget(self, fitted, toy_data):
        """The redispatch budget is one: losing the successor too fails
        the ticket with ``node_lost`` instead of retrying forever."""
        sample = _samples(toy_data, 1)[0]

        async def run():
            gate_a, gate_b = GateBackend(), GateBackend()
            server_a = GatewayServer(fitted, node_id="a", backend=gate_a)
            server_b = GatewayServer(fitted, node_id="b", backend=gate_b)
            shards = {
                "a": await server_a.start("127.0.0.1", 0),
                "b": await server_b.start("127.0.0.1", 0),
            }
            router = ClusterRouter(shards, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                tenant = _tenant_owned_by(router.ring, "a")
                client = await AsyncGatewayClient.connect(
                    host, port, tenant=tenant
                )
                try:
                    _, future = client.submit_nowait(sample, deadline_ms=0.0)
                    await client.drain()
                    assert await _wait_for(lambda: len(gate_a.held) == 1)
                    await _partition(server_a)
                    assert await _wait_for(lambda: len(gate_b.held) == 1)
                    await _partition(server_b)
                    with pytest.raises(GatewayError) as excinfo:
                        await asyncio.wait_for(future, timeout=15.0)
                    assert excinfo.value.code == "node_lost"
                finally:
                    await client.aclose()
                assert router.stats.redispatched == 1
                # a died on the failed reconnect; b's death lands via
                # the heartbeat loop a few beats later.
                assert "a" in router.membership.dead()
                assert await _wait_for(
                    lambda: router.membership.dead() == ["a", "b"]
                )
            finally:
                # Release before aclose: engine.drain() would otherwise
                # wait forever on a still-held batch.
                gate_a.release()
                gate_b.release()
                await router.aclose()
                await server_a.aclose()
                await server_b.aclose()

        asyncio.run(run())

    def test_connect_failure_spares_the_budget(self, fitted, toy_data):
        """A shard that is down *before* the SUBMIT ships cannot have
        duplicated anything: the ticket moves to the successor without
        a ``retried`` stamp or a redispatch count."""
        sample = _samples(toy_data, 1)[0]

        async def run():
            # Shard a's address refuses connections from the start.
            import socket as socketlib

            with socketlib.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                dead_address = probe.getsockname()
            servers, shards = await _start_shards(fitted, ["b"])
            shards["a"] = dead_address
            router = ClusterRouter(shards, heartbeat_s=0.2)
            try:
                host, port = await router.start()
                tenant = _tenant_owned_by(router.ring, "a")
                client = await AsyncGatewayClient.connect(
                    host, port, tenant=tenant
                )
                try:
                    wire = await client.classify(sample, deadline_ms=0.0)
                finally:
                    await client.aclose()
                assert wire.node_id == "b"
                assert not wire.retried  # no delivery risk, no budget spent
                assert router.stats.redispatched == 0
                assert router.membership.dead() == ["a"]
            finally:
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())


class TestMembershipOverTheWire:
    def test_silent_shard_dies_by_heartbeat_deadline(self, fitted):
        """A shard that accepts and handshakes but never answers STATS
        (SIGSTOP-alike) is declared dead after miss_limit beats."""

        async def run():
            async def mute(reader, writer):
                try:
                    while True:
                        frame = await protocol.read_frame(reader)
                        if frame is None:
                            return
                        if frame.kind is FrameType.HELLO:
                            writer.write(
                                protocol.encode_frame(
                                    protocol.hello_reply(
                                        server="mute",
                                        tenant=str(frame.meta.get("tenant")),
                                        slo_class="standard",
                                        slo_ms=200.0,
                                        model_version=0,
                                        node_id="mute",
                                    )
                                )
                            )
                            await writer.drain()
                        # STATS frames are swallowed: the wedged shard.
                except ConnectionError:
                    pass

            listener = await asyncio.start_server(mute, "127.0.0.1", 0)
            address = listener.sockets[0].getsockname()[:2]
            router = ClusterRouter(
                {"mute": address}, heartbeat_s=0.05, miss_limit=2
            )
            try:
                await router.start()
                assert await _wait_for(
                    lambda: router.membership.dead() == ["mute"]
                )
                assert "mute" not in router.ring
                assert router.stats.node_deaths == 1
                record = router.membership.get("mute")
                assert record.last_error is not None
            finally:
                await router.aclose()
                listener.close()
                await listener.wait_closed()

        asyncio.run(run())

    def test_respawned_shard_heals_the_ring(self, fitted, toy_data):
        """Kill a shard, let the router declare it dead, respawn it on
        the same port: the heal probe revives it and the ring returns
        to its original placement."""
        sample = _samples(toy_data, 1)[0]

        async def run():
            server_a = GatewayServer(fitted, node_id="a")
            host_a, port_a = await server_a.start("127.0.0.1", 0)
            servers, shards = await _start_shards(fitted, ["b"])
            shards["a"] = (host_a, port_a)
            router = ClusterRouter(
                shards, heartbeat_s=0.05, miss_limit=2, heal_interval_s=0.1
            )
            try:
                await router.start()
                owners_before = {
                    t: router.ring.owner(t) for t in ("t-0", "t-1", "t-2", "t-3")
                }
                await _partition(server_a)
                assert await _wait_for(
                    lambda: router.membership.dead() == ["a"]
                )
                # Respawn at the *same* address, as an operator would.
                server_a2 = GatewayServer(fitted, node_id="a")
                await server_a2.start(host_a, port_a)
                try:
                    assert await _wait_for(
                        lambda: router.membership.alive() == ["a", "b"]
                    )
                    assert router.stats.node_heals == 1
                    assert "a" in router.ring
                    owners_after = {
                        t: router.ring.owner(t) for t in owners_before
                    }
                    assert owners_after == owners_before  # minimal movement
                    # And the healed shard serves again through the router.
                    router_host, router_port = router.address
                    tenant = _tenant_owned_by(router.ring, "a")
                    client = await AsyncGatewayClient.connect(
                        router_host, router_port, tenant=tenant
                    )
                    try:
                        wire = await client.classify(sample, deadline_ms=0.0)
                        assert wire.node_id == "a"
                    finally:
                        await client.aclose()
                finally:
                    await server_a2.aclose()
            finally:
                await router.aclose()
                await server_a.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())


class TestTenantResidency:
    def test_gateway_reports_registry_hit_rate(self, fitted, toy_data):
        """satellite: ``--tenant-cache`` surfaces per-tenant residency
        (the thing affinity is buying) in the STATS snapshot."""
        samples = _samples(toy_data, 3)

        async def run():
            server = GatewayServer(
                fitted,
                node_id="a",
                tenant_registry=ModelRegistry(capacity=8),
            )
            host, port = await server.start("127.0.0.1", 0)
            try:
                for tenant in ("edge-0", "edge-1"):
                    client = await AsyncGatewayClient.connect(
                        host, port, tenant=tenant
                    )
                    try:
                        for sample in samples:
                            await client.classify(sample, deadline_ms=0.0)
                    finally:
                        await client.aclose()
                snapshot = server.snapshot()
            finally:
                await server.aclose()
            assert snapshot["node_id"] == "a"
            summary = snapshot["tenant_registry"]
            # First touch per tenant misses, the rest hit: 4 / 6.
            assert summary["misses"] == 2
            assert summary["hits"] == 4
            assert summary["hit_rate"] == pytest.approx(4 / 6)
            assert summary["resident_tenants"] == ["edge-0", "edge-1"]

        asyncio.run(run())
