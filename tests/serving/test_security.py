"""Public-traffic hardening end-to-end: TLS transport, per-tenant
bearer auth, quota accounting, and the tenant config reload contract.

The TLS tests mint one throwaway self-signed certificate per session
(:func:`generate_self_signed_cert`) and reuse it as its own CA pin, as
server identity, and — in the mutual-TLS cluster test — as the
router's client certificate.  Everything still asserts byte-identity
against in-process ``predict_one(quantise_sample(x))``: security wraps
the wire protocol, it must not perturb it.
"""

import asyncio
import json
import socket
import ssl
import threading

import numpy as np
import pytest

from repro.serving import InferenceEngine
from repro.serving.cluster import ClusterRouter
from repro.serving.gateway import (
    AsyncGatewayClient,
    BackgroundGateway,
    GatewayClient,
    GatewayError,
    GatewayServer,
    QuotaLedger,
    QuotaPolicy,
    TenantAuthenticator,
    TenantDirectory,
    client_ssl_context,
    generate_self_signed_cert,
    hash_token,
    protocol,
    server_ssl_context,
    verify_token,
)
from repro.serving.gateway.protocol import FrameType, VersionMismatch


def _samples(toy_data, count, seed=0):
    x, _, _ = toy_data
    rng = np.random.default_rng(seed)
    return x[rng.integers(0, len(x), size=count)]


@pytest.fixture(scope="session")
def certs(tmp_path_factory):
    """``(cert, key)`` paths for one self-signed loopback certificate."""
    directory = tmp_path_factory.mktemp("tls")
    return generate_self_signed_cert(directory)


@pytest.fixture(scope="session")
def tls(certs):
    """``(server_ctx, client_ctx)`` — plain one-way TLS, cert pinned."""
    cert, key = certs
    return server_ssl_context(cert, key), client_ssl_context(cert)


# ----------------------------------------------------------------------
# Token hashing primitives
# ----------------------------------------------------------------------
class TestTokenHashing:
    def test_round_trip_and_salt(self):
        stored = hash_token("s3cret")
        assert stored.startswith("sha256:")
        assert verify_token("s3cret", stored)
        assert not verify_token("s3cret2", stored)
        # Fresh salts: same token, different records.
        assert hash_token("s3cret") != hash_token("s3cret")
        pinned = hash_token("s3cret", salt="ab" * 16)
        assert pinned == hash_token("s3cret", salt="ab" * 16)

    def test_malformed_records_fail_closed(self):
        for stored in ("", "sha256:short", "md5:aa:bb", "plaintext"):
            assert not verify_token("anything", stored)


# ----------------------------------------------------------------------
# TLS transport
# ----------------------------------------------------------------------
class TestTLS:
    def test_round_trip_byte_identical(self, fitted, toy_data, tls):
        """TLS wraps the wire protocol without perturbing a single byte
        of the posteriors."""
        server_ctx, client_ctx = tls
        reference = InferenceEngine(fitted)
        samples = _samples(toy_data, 6, seed=3)
        server = GatewayServer(fitted, ssl_context=server_ctx)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, ssl_context=client_ctx) as client:
                for sample in samples:
                    wire = client.classify(sample, deadline_ms=0.0)
                    local = reference.predict_one(protocol.quantise_sample(sample))
                    assert np.array_equal(wire.gesture_probs, local.gesture_probs)
                    assert np.array_equal(wire.user_probs, local.user_probs)

    def test_plaintext_client_against_tls_port_dies_cleanly(
        self, fitted, toy_data, tls
    ):
        """A plaintext HELLO at a TLS listener fails that one connection
        — the gateway keeps serving TLS clients."""
        server_ctx, client_ctx = tls
        server = GatewayServer(fitted, ssl_context=server_ctx)
        with BackgroundGateway(server) as (host, port):
            with socket.create_connection((host, port), timeout=10.0) as sock:
                hello = protocol.hello_frame(client="plain", tenant="t")
                try:
                    sock.sendall(protocol.encode_frame(hello))
                    assert protocol.read_frame_sync(sock) is None
                except OSError:
                    pass  # reset instead of EOF is equally acceptable
            with GatewayClient(host, port, ssl_context=client_ctx) as client:
                result = client.classify(_samples(toy_data, 1)[0], deadline_ms=0.0)
                assert result.gesture >= 0

    def test_tls_client_against_plaintext_port_raises(self, fitted, tls):
        _, client_ctx = tls
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with pytest.raises(OSError):
                GatewayClient(host, port, ssl_context=client_ctx)


# ----------------------------------------------------------------------
# Bearer auth at the gateway
# ----------------------------------------------------------------------
def _authed_directory(**kwargs):
    return TenantDirectory(
        auth=TenantAuthenticator({"device-7": hash_token("alpha")}, **kwargs)
    )


class TestAuth:
    def test_token_accepted_wrong_and_missing_rejected(self, fitted, toy_data):
        server = GatewayServer(fitted, tenants=_authed_directory())
        with BackgroundGateway(server) as (host, port):
            for bad_token in ("beta", None):
                with pytest.raises(GatewayError) as excinfo:
                    GatewayClient(host, port, tenant="device-7", token=bad_token)
                assert excinfo.value.code == "auth_failed"
            # Unknown tenants are rejected by auth *before* resolve.
            with pytest.raises(GatewayError) as excinfo:
                GatewayClient(host, port, tenant="stranger", token="alpha")
            assert excinfo.value.code == "auth_failed"
            with GatewayClient(
                host, port, tenant="device-7", token="alpha"
            ) as client:
                assert client.classify(_samples(toy_data, 1)[0], deadline_ms=0.0)
                stats = client.stats()
        assert stats["gateway"]["auth_failed"] == 3
        assert stats["auth"] == {
            "enabled": True,
            "required": True,
            "tenants_with_tokens": ["device-7"],
        }

    def test_service_token_authenticates_any_tenant(self, fitted, toy_data):
        tenants = TenantDirectory(
            auth=TenantAuthenticator(service_tokens=[hash_token("router-svc")])
        )
        server = GatewayServer(fitted, tenants=tenants)
        with BackgroundGateway(server) as (host, port):
            for tenant in ("edge-0", "edge-1"):
                with GatewayClient(
                    host, port, tenant=tenant, token="router-svc"
                ) as client:
                    assert client.classify(
                        _samples(toy_data, 1)[0], deadline_ms=0.0
                    )
            with pytest.raises(GatewayError) as excinfo:
                GatewayClient(host, port, tenant="edge-0", token="guessed")
            assert excinfo.value.code == "auth_failed"

    def test_service_token_opens_tenants_with_their_own_entry(self):
        """The router forwards its service token on behalf of *named*
        tenants too — a tenant's own entry must not shadow it."""
        auth = TenantAuthenticator(
            {"device-7": hash_token("alpha")},
            service_tokens=[hash_token("router-svc")],
        )
        assert auth.authenticate("device-7", "router-svc")
        assert auth.authenticate("device-7", "alpha")
        assert not auth.authenticate("device-7", "beta")
        assert not auth.authenticate("device-7", None)

    def test_optional_auth_checks_only_listed_tenants(self, fitted, toy_data):
        server = GatewayServer(
            fitted, tenants=_authed_directory(required=False)
        )
        with BackgroundGateway(server) as (host, port):
            # Unlisted tenants pass unauthenticated (migration posture)...
            with GatewayClient(host, port, tenant="legacy-3") as client:
                assert client.classify(_samples(toy_data, 1)[0], deadline_ms=0.0)
            # ...but a listed tenant must still present its token.
            with pytest.raises(GatewayError) as excinfo:
                GatewayClient(host, port, tenant="device-7", token="wrong")
            assert excinfo.value.code == "auth_failed"


# ----------------------------------------------------------------------
# Quota accounting
# ----------------------------------------------------------------------
class TestQuota:
    def _metered_server(self, fitted, state_path=None, daily=2):
        tenants = TenantDirectory(
            quotas={"edge-0": QuotaPolicy(daily_requests=daily)}
        )
        ledger = QuotaLedger(tenants.quota_policy, state_path=state_path)
        return GatewayServer(fitted, tenants=tenants, quota=ledger)

    def test_quota_exceeded_distinct_from_rate_limited(self, fitted, toy_data):
        """A calendar budget and a token bucket reject with different
        codes — a client must be able to tell them apart."""
        from repro.serving.gateway import SLOClass

        tenants = TenantDirectory(
            classes={
                "metered": SLOClass(
                    "metered", priority=0, slo_ms=50.0,
                    rate_per_s=0.001, burst=1.0,
                ),
                "standard": SLOClass("standard", priority=1, slo_ms=None),
            },
            assignments={"bursty": "metered"},
            default_class="standard",
            quotas={"edge-0": QuotaPolicy(daily_requests=2)},
        )
        ledger = QuotaLedger(tenants.quota_policy)
        server = GatewayServer(fitted, tenants=tenants, quota=ledger)
        samples = _samples(toy_data, 4, seed=11)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                assert client.classify(samples[0], deadline_ms=0.0)
                assert client.classify(samples[1], deadline_ms=0.0)
                with pytest.raises(GatewayError) as excinfo:
                    client.classify(samples[2], deadline_ms=0.0)
                assert excinfo.value.code == "quota_exceeded"
                assert "daily request budget exhausted" in str(excinfo.value)
            with GatewayClient(host, port, tenant="bursty") as client:
                assert client.classify(samples[0], deadline_ms=0.0)
                with pytest.raises(GatewayError) as excinfo:
                    client.classify(samples[1], deadline_ms=0.0)
                assert excinfo.value.code == "rate_limited"
                stats = client.stats()
        assert stats["gateway"]["quota_exceeded"] == 1
        assert stats["gateway"]["rate_limited"] == 1
        quota = stats["quota"]["edge-0"]
        assert quota["exhausted"]
        assert quota["day"]["requests"] == 2
        assert quota["day"]["compute_s"] > 0.0
        assert quota["policy"]["daily_requests"] == 2

    def test_counters_survive_restart(self, fitted, toy_data, tmp_path):
        """Usage persists across a server restart: a tenant cannot reset
        its budget by bouncing the gateway."""
        state = tmp_path / "quota-state.json"
        samples = _samples(toy_data, 3, seed=5)
        server = self._metered_server(fitted, state_path=state)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                assert client.classify(samples[0], deadline_ms=0.0)
                assert client.classify(samples[1], deadline_ms=0.0)
        # aclose() persisted the unsynced charges on shutdown.
        payload = json.loads(state.read_text())
        assert payload["tenants"]["edge-0"]["day"]["requests"] == 2

        reborn = self._metered_server(fitted, state_path=state)
        with BackgroundGateway(reborn) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                with pytest.raises(GatewayError) as excinfo:
                    client.classify(samples[2], deadline_ms=0.0)
                assert excinfo.value.code == "quota_exceeded"

    def test_windows_roll_on_the_injected_clock(self):
        clock = {"now": 1_700_000_000.0}
        ledger = QuotaLedger(
            lambda _tenant: QuotaPolicy(daily_requests=1, monthly_requests=2),
            clock=lambda: clock["now"],
        )
        assert ledger.check("t") is None
        ledger.charge_request("t")
        assert "daily request budget exhausted" in ledger.check("t")
        clock["now"] += 86_400.0  # next UTC day: daily resets, monthly holds
        assert ledger.check("t") is None
        ledger.charge_request("t")
        clock["now"] += 86_400.0  # daily resets again, but monthly is spent
        assert "monthly request budget exhausted" in ledger.check("t")
        clock["now"] += 31 * 86_400.0
        assert ledger.check("t") is None
        # snapshot() presents the rolled windows without mutating state.
        report = ledger.snapshot()
        assert report["t"]["day"]["requests"] == 0
        assert not report["t"]["exhausted"]

    def test_corrupt_state_starts_fresh(self, tmp_path):
        state = tmp_path / "quota.json"
        state.write_text("{not json")
        ledger = QuotaLedger(lambda _t: None, state_path=state)
        assert ledger.snapshot() == {}

    def test_quota_cli_inspects_and_resets(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "quota.json"
        ledger = QuotaLedger(lambda _t: None, state_path=state, sync_every=1)
        ledger.charge_request("edge-0")
        ledger.flush()

        assert main(["quota", "--state", str(state)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["edge-0"]["day"]["requests"] == 1

        assert main(["quota", "--state", str(state), "--reset", "--tenant", "edge-0"]) == 0
        capsys.readouterr()
        assert main(["quota", "--state", str(state)]) == 0
        assert json.loads(capsys.readouterr().out) == {}


# ----------------------------------------------------------------------
# Tenant config reload (the rebind bugfix + live auth/quota swap)
# ----------------------------------------------------------------------
class TestReloadTenants:
    def test_class_removal_survives_reload(self, fitted, toy_data):
        """Removing an SLO class mid-flight must not strand the
        admission queue: historically the queue kept credit rows for
        vanished classes and KeyError'd on the first post-reload offer;
        ``reload_tenants`` rebinds it."""
        sample = _samples(toy_data, 1)[0]
        config_a = {
            "classes": {"gold": {"priority": 0, "slo_ms": 25.0}},
            "tenants": {"edge-0": "gold"},
            "default_class": "standard",
        }
        config_b = {"tenants": {"edge-0": "premium"}}

        async def run():
            server = GatewayServer(
                fitted, tenants=TenantDirectory.from_config(config_a)
            )
            host, port = await server.start("127.0.0.1", 0)
            client = await AsyncGatewayClient.connect(host, port, tenant="edge-0")
            try:
                assert client.slo_class == "gold"
                await client.classify(sample, deadline_ms=0.0)
                server.reload_tenants(config_b)
                # The connection survives and the very next offer goes
                # through the rebound queue (the historical crash site).
                wire = await client.classify(sample, deadline_ms=0.0)
                assert wire.gesture >= 0
                snapshot = await client.stats()
                assert snapshot["tenants"]["edge-0"]["slo_class"] == "premium"
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_token_rotation_applies_at_next_handshake(self, fitted, toy_data):
        sample = _samples(toy_data, 1)[0]
        config_alpha = {"auth": {"tokens": {"edge-0": hash_token("alpha")}}}
        config_beta = {"auth": {"tokens": {"edge-0": hash_token("beta")}}}

        async def run():
            server = GatewayServer(
                fitted, tenants=TenantDirectory.from_config(config_alpha)
            )
            host, port = await server.start("127.0.0.1", 0)
            veteran = await AsyncGatewayClient.connect(
                host, port, tenant="edge-0", token="alpha"
            )
            try:
                server.reload_tenants(config_beta)
                # Established sessions are never severed by a reload...
                await veteran.classify(sample, deadline_ms=0.0)
                # ...but the revoked token cannot open new connections.
                with pytest.raises(GatewayError) as excinfo:
                    await AsyncGatewayClient.connect(
                        host, port, tenant="edge-0", token="alpha"
                    )
                assert excinfo.value.code == "auth_failed"
                fresh = await AsyncGatewayClient.connect(
                    host, port, tenant="edge-0", token="beta"
                )
                await fresh.aclose()
            finally:
                await veteran.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_quota_edit_applies_without_restart(self, fitted, toy_data):
        sample = _samples(toy_data, 1)[0]
        tight = {"quotas": {"edge-0": {"daily_requests": 1}}}
        roomy = {"quotas": {"edge-0": {"daily_requests": 100}}}

        async def run():
            tenants = TenantDirectory.from_config(tight)
            server = GatewayServer(
                fitted,
                tenants=tenants,
                quota=QuotaLedger(tenants.quota_policy),
            )
            host, port = await server.start("127.0.0.1", 0)
            client = await AsyncGatewayClient.connect(host, port, tenant="edge-0")
            try:
                await client.classify(sample, deadline_ms=0.0)
                with pytest.raises(GatewayError) as excinfo:
                    await client.classify(sample, deadline_ms=0.0)
                assert excinfo.value.code == "quota_exceeded"
                server.reload_tenants(roomy)
                # The ledger resolves policies at check time, so the new
                # budget binds immediately — usage carries over.
                await client.classify(sample, deadline_ms=0.0)
                snapshot = await client.stats()
                assert snapshot["quota"]["edge-0"]["day"]["requests"] == 2
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_invalid_reload_leaves_directory_unchanged(self, fitted):
        tenants = TenantDirectory(assignments={"vip": "premium"})
        GatewayServer(fitted, tenants=tenants)  # validates construction
        with pytest.raises(ValueError):
            tenants.reload({"tenants": {"vip": "no-such-class"}})
        assert tenants.assignments == {"vip": "premium"}


# ----------------------------------------------------------------------
# Secured cluster: router TLS listener, mTLS shards, service tokens
# ----------------------------------------------------------------------
class TestSecuredCluster:
    def test_full_stack_tls_auth_byte_identity(self, fitted, toy_data, certs):
        """Client —TLS+token→ router —mTLS+service-token→ shards, and the
        posteriors still match in-process inference byte for byte."""
        cert, key = certs
        shard_listener = server_ssl_context(cert, key, cafile=cert)  # mTLS
        router_listener = server_ssl_context(cert, key)
        upstream = client_ssl_context(cert, certfile=cert, keyfile=key)
        pinned = client_ssl_context(cert)
        shard_auth = TenantAuthenticator(
            service_tokens=[hash_token("shard-svc")]
        )
        reference = InferenceEngine(fitted)
        samples = _samples(toy_data, 4, seed=13)

        async def run():
            servers, shards = {}, {}
            for node_id in ("a", "b"):
                server = GatewayServer(
                    fitted,
                    node_id=node_id,
                    tenants=TenantDirectory(auth=shard_auth),
                    ssl_context=shard_listener,
                )
                shards[node_id] = await server.start("127.0.0.1", 0)
                servers[node_id] = server
            router = ClusterRouter(
                shards,
                heartbeat_s=0.2,
                ssl_context=router_listener,
                upstream_ssl=upstream,
                shard_token="shard-svc",
                auth=TenantAuthenticator({"edge-0": hash_token("alpha")}),
            )
            try:
                host, port = await router.start()
                client = await AsyncGatewayClient.connect(
                    host, port, tenant="edge-0", token="alpha", ssl=pinned
                )
                try:
                    for sample in samples:
                        wire = await client.classify(sample, deadline_ms=0.0)
                        local = reference.predict_one(
                            protocol.quantise_sample(sample)
                        )
                        assert np.array_equal(
                            wire.gesture_probs, local.gesture_probs
                        )
                finally:
                    await client.aclose()
                # A wrong edge token is stopped at the router.
                with pytest.raises(GatewayError) as excinfo:
                    await AsyncGatewayClient.connect(
                        host, port, tenant="edge-0", token="stolen", ssl=pinned
                    )
                assert excinfo.value.code == "auth_failed"
                assert router.stats.auth_failed == 1
                # A shard refuses direct connections without the client
                # certificate only the router holds.
                shard_host, shard_port = shards["a"]
                with pytest.raises((OSError, asyncio.IncompleteReadError)):
                    reader, writer = await asyncio.open_connection(
                        shard_host, shard_port, ssl=pinned
                    )
                    try:
                        await reader.readexactly(1)
                    finally:
                        writer.close()
            finally:
                await router.aclose()
                for server in servers.values():
                    await server.aclose()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Protocol version negotiation — both directions, both transports
# ----------------------------------------------------------------------
def _vnext_hello_bytes():
    hello = protocol.hello_frame(client="future", tenant="t")
    return protocol.encode_frame(hello, version=protocol.PROTOCOL_VERSION + 1)


def _fake_vnext_server(ssl_context=None):
    """A listener that answers any HELLO with a v-next HELLO reply."""
    listener = socket.create_server(("127.0.0.1", 0))
    host, port = listener.getsockname()

    def serve():
        conn, _ = listener.accept()
        try:
            if ssl_context is not None:
                conn = ssl_context.wrap_socket(conn, server_side=True)
            protocol.read_frame_sync(conn)
            reply = protocol.hello_reply(
                server="future-gateway",
                tenant="t",
                slo_class="standard",
                slo_ms=None,
                model_version=0,
            )
            conn.sendall(
                protocol.encode_frame(
                    reply, version=protocol.PROTOCOL_VERSION + 1
                )
            )
        finally:
            conn.close()
            listener.close()

    threading.Thread(target=serve, name="vnext-server", daemon=True).start()
    return host, port


class TestVersionNegotiation:
    def _assert_rejects_vnext_hello(self, host, port, client_ctx=None):
        sock = socket.create_connection((host, port), timeout=10.0)
        try:
            if client_ctx is not None:
                sock = client_ctx.wrap_socket(sock, server_hostname=host)
            sock.sendall(_vnext_hello_bytes())
            reply = protocol.read_frame_sync(sock)
            assert reply.kind is FrameType.ERROR
            assert reply.meta["code"] == "version_mismatch"
            assert protocol.read_frame_sync(sock) is None  # hung up
        finally:
            sock.close()

    def test_gateway_rejects_vnext_client_plaintext_and_tls(self, fitted, tls):
        server_ctx, client_ctx = tls
        plain = GatewayServer(fitted)
        with BackgroundGateway(plain) as (host, port):
            self._assert_rejects_vnext_hello(host, port)
        secured = GatewayServer(fitted, ssl_context=server_ctx)
        with BackgroundGateway(secured) as (host, port):
            self._assert_rejects_vnext_hello(host, port, client_ctx)

    def test_router_rejects_vnext_client_plaintext_and_tls(self, fitted, tls):
        server_ctx, client_ctx = tls

        async def run(router_ctx):
            server = GatewayServer(fitted, node_id="a")
            shard = await server.start("127.0.0.1", 0)
            router = ClusterRouter(
                {"a": shard}, heartbeat_s=0.2, ssl_context=router_ctx
            )
            try:
                host, port = await router.start()
                await asyncio.to_thread(
                    self._assert_rejects_vnext_hello,
                    host,
                    port,
                    client_ctx if router_ctx is not None else None,
                )
            finally:
                await router.aclose()
                await server.aclose()

        asyncio.run(run(None))
        asyncio.run(run(server_ctx))

    def test_client_raises_on_vnext_server_plaintext_and_tls(self, certs):
        host, port = _fake_vnext_server()
        with pytest.raises(VersionMismatch):
            GatewayClient(host, port)

        cert, key = certs
        host, port = _fake_vnext_server(server_ssl_context(cert, key))
        with pytest.raises(VersionMismatch):
            GatewayClient(host, port, ssl_context=client_ssl_context(cert))

    def test_async_client_raises_on_vnext_server(self):
        host, port = _fake_vnext_server()

        async def run():
            with pytest.raises(VersionMismatch):
                await AsyncGatewayClient.connect(host, port)

        asyncio.run(run())
