"""GatewayServer end-to-end over localhost TCP: fidelity, SLO classes,
shedding, disconnect reclamation, hot reload."""

import asyncio
import socket
import time

import numpy as np
import pytest

from repro.serving import InferenceEngine
from repro.serving.gateway import (
    AsyncGatewayClient,
    BackgroundGateway,
    GatewayClient,
    GatewayError,
    GatewayServer,
    SLOClass,
    TenantDirectory,
    protocol,
)
from repro.serving.gateway.protocol import FrameType


def _samples(toy_data, count, seed=0):
    x, _, _ = toy_data
    rng = np.random.default_rng(seed)
    return x[rng.integers(0, len(x), size=count)]


class _SlowSystem:
    """Fitted-system wrapper whose predict sleeps — lets tests pile up
    the admission queue deterministically."""

    def __init__(self, system, delay_s=0.02):
        self._system = system
        self.delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._system, name)

    def predict(self, batch):
        time.sleep(self.delay_s)
        return self._system.predict(batch)


class TestHandshake:
    def test_hello_negotiates_class_and_version(self, fitted):
        server = GatewayServer(
            fitted, tenants=TenantDirectory(assignments={"vip": "premium"})
        )
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="vip") as client:
                assert client.slo_class == "premium"
                assert client.slo_ms == 50.0
                assert client.model_version == 0
                assert client.server == "repro-gateway"
            with GatewayClient(host, port, tenant="anyone") as client:
                assert client.slo_class == "standard"

    def test_unknown_tenant_rejected_when_directory_is_closed(self, fitted):
        tenants = TenantDirectory(
            assignments={"vip": "premium"}, default_class=None
        )
        server = GatewayServer(fitted, tenants=tenants)
        with BackgroundGateway(server) as (host, port):
            with pytest.raises(GatewayError) as excinfo:
                GatewayClient(host, port, tenant="stranger")
            assert excinfo.value.code == "unknown_tenant"
            with GatewayClient(host, port, tenant="vip") as client:
                assert client.slo_class == "premium"

    def test_version_mismatch_answered_with_error_frame(self, fitted):
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with socket.create_connection((host, port), timeout=10.0) as sock:
                hello = protocol.hello_frame(client="future", tenant="t")
                sock.sendall(
                    protocol.encode_frame(
                        hello, version=protocol.PROTOCOL_VERSION + 1
                    )
                )
                reply = protocol.read_frame_sync(sock)
                assert reply.kind is FrameType.ERROR
                assert reply.meta["code"] == "version_mismatch"
                assert protocol.read_frame_sync(sock) is None  # server hung up

    def test_malformed_submit_id_gets_clean_error(self, fitted, toy_data):
        """A SUBMIT whose id is not an int must be answered with an
        ERROR frame (no echoed id) — not crash the connection handler."""
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port) as client:
                bad = protocol.Frame(
                    FrameType.SUBMIT,
                    {"id": "not-a-number", "shape": [4, 8]},
                    b"\0" * (4 * 8 * 4),
                )
                client._send(bad)
                reply = client._read()
                assert reply.kind is FrameType.ERROR
                assert "id" not in reply.meta
                # The connection survives and keeps serving.
                good = client.classify(_samples(toy_data, 1)[0], deadline_ms=0.0)
                assert good.gesture >= 0

    def test_submit_before_hello_rejected(self, fitted):
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with socket.create_connection((host, port), timeout=10.0) as sock:
                sock.sendall(
                    protocol.encode_frame(protocol.submit_frame(1, np.zeros((4, 8))))
                )
                reply = protocol.read_frame_sync(sock)
                assert reply.meta["code"] == "bad_handshake"


class TestFidelity:
    """Gateway results are byte-identical to in-process predict_one."""

    def test_classify_matches_predict_one(self, fitted, toy_data):
        reference = InferenceEngine(fitted)
        samples = _samples(toy_data, 6)
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                for sample in samples:
                    # deadline 0: flush immediately (latency-first caller).
                    wire = client.classify(sample, deadline_ms=0.0)
                    local = reference.predict_one(protocol.quantise_sample(sample))
                    assert wire.gesture == local.gesture
                    assert wire.user == local.user
                    assert np.array_equal(wire.gesture_probs, local.gesture_probs)
                    assert np.array_equal(wire.user_probs, local.user_probs)

    def test_pipelined_submits_batch_and_all_resolve(self, fitted, toy_data):
        samples = _samples(toy_data, 24, seed=3)
        server = GatewayServer(fitted, max_batch_size=16)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                ids = [client.submit(sample) for sample in samples]
                outcomes = client.collect_all(ids)
                assert sorted(outcomes) == sorted(ids)
                assert not any(
                    isinstance(outcome, GatewayError)
                    for outcome in outcomes.values()
                )
                stats = client.stats()
        assert stats["engine"]["requests"] == 24
        assert stats["engine"]["mean_batch"] > 1.0  # actually micro-batched
        assert stats["tenants"]["edge-0"]["delivered"] == 24
        assert stats["tenants"]["edge-0"]["in_flight"] == 0

    def test_async_client_concurrent_classify(self, fitted, toy_data):
        samples = _samples(toy_data, 16, seed=5)
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):

            async def run():
                clients = [
                    await AsyncGatewayClient.connect(host, port, tenant=f"dev-{i}")
                    for i in range(4)
                ]
                try:
                    chunks = np.array_split(samples, 4)
                    results = await asyncio.gather(
                        *(
                            asyncio.gather(
                                *(c.classify(s, deadline_ms=0.0) for s in chunk)
                            )
                            for c, chunk in zip(clients, chunks)
                        )
                    )
                finally:
                    for c in clients:
                        await c.aclose()
                return [wire for chunk in results for wire in chunk]

            wires = asyncio.run(run())
        reference = InferenceEngine(fitted)
        for sample, wire in zip(samples, wires):
            local = reference.predict_one(protocol.quantise_sample(sample))
            assert np.array_equal(wire.gesture_probs, local.gesture_probs)

    def test_malformed_submit_gets_per_request_error(self, fitted, toy_data):
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port) as client:
                # Channel count below the network's requirement: engine
                # validation fails per-request, connection survives.
                bad_id = client.submit(np.zeros((4, 2)), deadline_ms=0.0)
                with pytest.raises(GatewayError):
                    client.collect(bad_id)
                good = client.classify(_samples(toy_data, 1)[0], deadline_ms=0.0)
                assert good.gesture >= 0


class TestPooledBackends:
    """The gateway over thread/process pools: overlap without drift."""

    def test_thread_backend_results_byte_identical(self, fitted, toy_data):
        from repro.serving import ThreadPoolBackend

        reference = InferenceEngine(fitted)
        samples = _samples(toy_data, 12, seed=7)
        with ThreadPoolBackend(workers=2) as backend:
            server = GatewayServer(fitted, backend=backend)
            with BackgroundGateway(server) as (host, port):
                with GatewayClient(host, port, tenant="edge-0") as client:
                    ids = [client.submit(sample) for sample in samples]
                    outcomes = client.collect_all(ids)
                    stats = client.stats()
            for request_id, sample in zip(ids, samples):
                wire = outcomes[request_id]
                assert not isinstance(wire, GatewayError)
                local = reference.predict_one(protocol.quantise_sample(sample))
                assert np.array_equal(wire.gesture_probs, local.gesture_probs)
                assert np.array_equal(wire.user_probs, local.user_probs)
        assert stats["engine"]["backend"]["name"] == "thread"
        assert stats["engine"]["in_flight"] == 0
        assert stats["scheduler"]["backend"] == "thread"

    def test_rate_limited_submit_gets_distinct_code(self, fitted, toy_data):
        samples = _samples(toy_data, 4, seed=9)
        tenants = TenantDirectory(
            classes={
                "metered": SLOClass(
                    "metered", priority=0, slo_ms=50.0,
                    rate_per_s=0.001, burst=2.0,  # two tokens, then dry
                )
            },
            default_class="metered",
        )
        server = GatewayServer(fitted, tenants=tenants)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-0") as client:
                assert client.classify(samples[0], deadline_ms=0.0)
                assert client.classify(samples[1], deadline_ms=0.0)
                with pytest.raises(GatewayError) as excinfo:
                    client.classify(samples[2], deadline_ms=0.0)
                assert excinfo.value.code == "rate_limited"
                stats = client.stats()
        assert stats["gateway"]["rate_limited"] == 1
        assert stats["tenants"]["edge-0"]["rate_limited"] == 1
        assert stats["tenants"]["edge-0"]["delivered"] == 2


class TestOverload:
    def test_batch_class_sheds_premium_survives(self, fitted, toy_data):
        """A batch flood into a tiny admission room sheds batch requests
        (oldest first) while premium requests all deliver."""
        samples = _samples(toy_data, 40, seed=7)
        tenants = TenantDirectory(
            assignments={"vip": "premium", "bulk": "batch"}
        )
        server = GatewayServer(
            _SlowSystem(fitted, delay_s=0.02),
            tenants=tenants,
            max_batch_size=4,
            queue_limit=4,
            slo_ms=None,  # depth-driven: keeps the pile-up deterministic
        )
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="bulk") as bulk, GatewayClient(
                host, port, tenant="vip"
            ) as vip:
                bulk_ids = [bulk.submit(sample) for sample in samples]
                # Premium is interactive: sequential round trips, never
                # more in flight than its own rate — raises if rejected.
                vip_results = [vip.classify(sample) for sample in samples[:8]]
                bulk_outcomes = bulk.collect_all(bulk_ids)
                stats = vip.stats()
        shed = [
            outcome
            for outcome in bulk_outcomes.values()
            if isinstance(outcome, GatewayError)
        ]
        assert shed, "the batch flood should have been shed"
        assert all(error.code == "shed" for error in shed)
        assert len(vip_results) == 8  # every premium request delivered
        assert stats["tenants"]["vip"]["shed"] == 0
        assert stats["tenants"]["vip"]["delivered"] == 8
        assert stats["tenants"]["bulk"]["shed"] == len(shed)
        assert stats["gateway"]["shed"] == len(shed)

    def test_in_flight_cap_gives_over_capacity(self, fitted, toy_data):
        samples = _samples(toy_data, 12, seed=9)
        tenants = TenantDirectory(
            classes={
                "capped": SLOClass("capped", priority=0, max_in_flight=2),
            },
            default_class="capped",
        )
        server = GatewayServer(
            _SlowSystem(fitted, delay_s=0.05), tenants=tenants, queue_limit=64
        )
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="t") as client:
                ids = [client.submit(sample) for sample in samples]
                outcomes = client.collect_all(ids)
        rejected = [
            outcome
            for outcome in outcomes.values()
            if isinstance(outcome, GatewayError)
        ]
        assert rejected and all(e.code == "over_capacity" for e in rejected)
        assert len(rejected) < len(samples)  # the capped share still served


class TestDisconnect:
    def test_dead_connection_requests_are_reclaimed(self, fitted, toy_data):
        """A client that floods and vanishes must not burn batch capacity:
        its queued requests are purged/cancelled and its tenant's
        in-flight count returns to zero."""
        samples = _samples(toy_data, 30, seed=11)
        server = GatewayServer(
            _SlowSystem(fitted, delay_s=0.03),
            max_batch_size=4,
            queue_limit=64,
            slo_ms=None,
        )
        with BackgroundGateway(server) as (host, port):
            ghost = GatewayClient(host, port, tenant="ghost")
            for sample in samples:
                ghost.submit(sample)
            ghost.close()  # vanish with ~30 requests outstanding
            with GatewayClient(host, port, tenant="watcher") as watcher:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    stats = watcher.stats()
                    tenant = stats["tenants"].get("ghost", {})
                    if (
                        stats["connections"] == 1
                        and tenant.get("in_flight") == 0
                        and stats["queued"] == 0
                    ):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail(f"ghost work never reclaimed: {stats}")
                # Far fewer classifications ran than were submitted.
                assert stats["tenants"]["ghost"]["delivered"] < len(samples)


    def test_slow_consumer_dropped_at_outbox_cap(self):
        """A client that never reads must not grow server memory without
        bound: once TCP backpressure stalls the writer and the outbox
        hits its cap, the connection is closed instead of buffering."""
        from repro.serving.gateway.server import _Connection

        class _StalledWriter:
            closed = False

            def close(self):
                self.closed = True

        writer = _StalledWriter()
        connection = _Connection(None, writer, max_outbox=4)
        frame = protocol.stats_frame({"x": 1})
        for _ in range(4):
            connection.send(frame)
        assert not connection.closed
        connection.send(frame)  # cap hit: dropped, not buffered
        assert connection.closed and writer.closed
        connection.send(frame)  # post-close sends are silently dropped
        assert connection.outbox.qsize() == 5  # 4 frames + stop sentinel


class TestReload:
    def test_reload_frame_swaps_and_tags_versions(self, fitted, fitted_b, toy_data):
        engine = InferenceEngine(fitted)
        server = GatewayServer(
            engine=engine,
            reload_hook=lambda: engine.swap_system(fitted_b),
        )
        sample = _samples(toy_data, 1)[0]
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port) as client:
                before = client.classify(sample, deadline_ms=0.0)
                assert before.model_version == 0
                reply = client.reload()
                assert reply == {"model_version": 1, "swapped": True}
                after = client.classify(sample, deadline_ms=0.0)
                assert after.model_version == 1
                # Same cloud, new weights: posteriors actually changed.
                assert not np.array_equal(
                    before.gesture_probs, after.gesture_probs
                )
                # Idempotent second reload: same system, no swap.
                assert client.reload() == {"model_version": 1, "swapped": False}

    def test_reload_without_hook_is_an_error(self, fitted):
        server = GatewayServer(fitted)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port) as client:
                with pytest.raises(GatewayError) as excinfo:
                    client.reload()
                assert excinfo.value.code == "reload_unavailable"
