"""Execution backends: byte-identity, airborne-batch semantics, arenas.

The serving guarantee extends across execution boundaries: a sample
classified through a thread replica or a spawned worker attached to an
mmap'd weight arena produces bit-for-bit the posteriors of
``predict_one``.  The airborne tests use a hand-released gate backend so
the dispatch/collect split is exercised deterministically: swaps and
discards racing an in-flight batch must neither mix weights nor deliver
to the dead.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.persistence import export_flat, load_system_flat
from repro.serving import (
    InferenceEngine,
    InlineBackend,
    ModelRegistry,
    ProcessPoolBackend,
    ThreadPoolBackend,
    create_backend,
)
from repro.serving.backends import ExecutionBackend


def _assert_same_result(a, b):
    assert a.gesture == b.gesture
    assert a.user == b.user
    assert np.array_equal(a.gesture_probs, b.gesture_probs)
    assert np.array_equal(a.user_probs, b.user_probs)


class GateBackend(ExecutionBackend):
    """Deterministic airborne batches: submissions wait for release().

    Execution happens inline at release time, so tests control exactly
    when a batch "lands" without any real concurrency or sleeps.
    """

    name = "gate"
    slots = 4

    def __init__(self):
        self.held: list[tuple[Future, object, np.ndarray]] = []

    def submit(self, system, batch):
        future = Future()
        future.set_running_or_notify_cancel()
        self.held.append((future, system, batch))
        return future

    def release(self, count: int | None = None) -> int:
        batch_count = len(self.held) if count is None else count
        released, self.held = self.held[:batch_count], self.held[batch_count:]
        for future, system, batch in released:
            start = time.perf_counter()
            try:
                result = system.predict(batch)
            except Exception as error:
                future.set_exception(error)
            else:
                future.set_result((result, time.perf_counter() - start))
        return len(released)


@pytest.fixture(scope="module")
def thread_backend():
    with ThreadPoolBackend(workers=2) as backend:
        yield backend


@pytest.fixture(scope="module")
def process_backend():
    # Spawned workers import numpy + repro; share one pool module-wide.
    with ProcessPoolBackend(workers=2) as backend:
        yield backend


class TestByteIdentity:
    """All three backends match predict_one bit-for-bit."""

    def _check(self, fitted, backend, x):
        reference = InferenceEngine(fitted)
        engine = InferenceEngine(fitted, backend=backend)
        for sample, result in zip(x[:6], engine.predict_many(x[:6])):
            _assert_same_result(result, reference.predict_one(sample))

    def test_inline(self, fitted, toy_data):
        x, _, _ = toy_data
        self._check(fitted, InlineBackend(), x)

    def test_thread_pool(self, fitted, toy_data, thread_backend):
        x, _, _ = toy_data
        self._check(fitted, thread_backend, x)

    def test_process_pool_mmap(self, fitted, toy_data, process_backend):
        x, _, _ = toy_data
        self._check(fitted, process_backend, x)

    def test_process_bundle_reused_per_system(self, fitted, fitted_b, process_backend):
        first = process_backend.prepare(fitted)
        assert process_backend.prepare(fitted) == first  # no re-export
        assert process_backend.prepare(fitted_b) != first


class TestPoolErrorRouting:
    def test_poison_batch_fails_only_its_tickets(self, fitted, toy_data, thread_backend):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, backend=thread_backend)
        good = engine.submit(x[0])
        bad = engine.submit(np.zeros((0, x.shape[2])))
        with pytest.raises(Exception):
            engine.flush()
        assert good.done and good.result() is not None
        assert bad.done
        with pytest.raises(Exception):
            bad.result()
        assert engine.stats.failed_batches == 1

    def test_closed_pool_fails_tickets_not_submit(self, fitted, toy_data):
        x, _, _ = toy_data
        backend = ThreadPoolBackend(workers=1)
        backend.close()
        engine = InferenceEngine(fitted, backend=backend)
        errors = []
        ticket = engine.submit(x[0], on_error=errors.append)
        engine.flush(raise_on_error=False)
        assert ticket.done and len(errors) == 1
        with pytest.raises(Exception):
            ticket.result()


class TestAirborneBatches:
    """dispatch/collect with batches in flight: the satellite races."""

    def test_flush_blocks_until_airborne_lands(self, fitted, toy_data):
        x, _, _ = toy_data
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate)
        ticket = engine.submit(x[0])
        assert engine.dispatch() == 1
        assert engine.num_in_flight == 1 and not ticket.done
        timer = threading.Timer(0.05, gate.release)
        timer.start()
        completed = engine.flush()
        timer.join()
        assert ticket in completed and ticket.done
        assert engine.num_in_flight == 0

    def test_poll_collects_landed_batches(self, fitted, toy_data):
        x, _, _ = toy_data
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate)
        ticket = engine.submit(x[0], deadline_ms=0.0, defer_flush=True)
        assert engine.poll() == []  # dispatched (stale deadline), airborne
        assert engine.num_in_flight == 1
        gate.release()
        delivered = engine.poll()
        assert delivered == [ticket] and ticket.done

    def test_swap_racing_airborne_batch_keeps_old_weights(
        self, fitted, fitted_b, toy_data
    ):
        """Airborne tickets finish on the weights and model_version they
        were dispatched with; the swap never waits for them."""
        x, _, _ = toy_data
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate)
        airborne = engine.submit(x[0])
        engine.dispatch()
        version = engine.swap_system(fitted_b)  # does not block on the batch
        assert version == 1 and not airborne.done
        late = engine.submit(x[0])
        engine.dispatch()
        gate.release()
        engine.drain()
        old = airborne.result()
        assert old.model_version == 0
        assert np.array_equal(old.gesture_probs, fitted.predict(x[0:1]).gesture_probs[0])
        new = late.result()
        assert new.model_version == 1
        assert np.array_equal(
            new.user_probs, fitted_b.predict(x[0:1]).user_probs[0]
        )

    def test_discard_racing_airborne_batch_suppresses_delivery(
        self, fitted, toy_data
    ):
        """A tenant discarded while its batch is airborne never gets a
        late delivery — no callback, no result, ticket cancelled."""
        x, _, _ = toy_data
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate)
        seen = []
        doomed = engine.submit(x[0], meta="dead-tenant", callback=seen.append)
        survivor = engine.submit(x[1], meta="live-tenant", callback=seen.append)
        engine.dispatch()
        assert engine.num_in_flight == 1  # same shape: one batch, both rows
        assert engine.discard_pending(lambda meta: meta == "dead-tenant") == 1
        gate.release()
        delivered = engine.drain()
        assert delivered == [survivor] and survivor.done
        assert doomed.cancelled and not doomed.done
        assert len(seen) == 1  # only the survivor's callback fired
        with pytest.raises(RuntimeError):
            doomed.result()

    def test_discard_all_after_dispatch_cancels_airborne(self, fitted, toy_data):
        x, _, _ = toy_data
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate)
        queued = engine.submit(x[0])
        engine.dispatch()
        airborne_then_queued = engine.submit(x[1])
        assert engine.discard_pending() == 2
        assert queued.cancelled and airborne_then_queued.cancelled
        gate.release()
        assert engine.drain() == []

    def test_scheduler_observes_executor_queueing(self, fitted, toy_data):
        """The latency fed to the scheduler is submit-to-landing, so the
        gate's hold time (executor queueing) is part of the model."""
        from repro.serving import BatchScheduler

        x, _, _ = toy_data
        clock = [0.0]
        scheduler = BatchScheduler(slo_ms=None, clock=lambda: clock[0])
        gate = GateBackend()
        engine = InferenceEngine(fitted, backend=gate, scheduler=scheduler)
        engine.submit(x[0])
        engine.dispatch()
        clock[0] += 0.5  # half a second airborne
        gate.release()
        engine.drain()
        snap = scheduler.snapshot()
        assert snap["backend"] == "gate"
        assert snap["per_sample_ms"] >= 400.0  # queueing included
        assert snap["executor_wait_ms"] is not None


class TestUrgentSubmission:
    def test_default_submit_urgent_delegates(self, fitted, toy_data):
        x, _, _ = toy_data
        backend = InlineBackend()
        urgent, _ = backend.submit_urgent(fitted, x[:1]).result()
        plain, _ = backend.submit(fitted, x[:1]).result()
        assert np.array_equal(urgent.gesture_probs, plain.gesture_probs)
        assert np.array_equal(urgent.user_probs, plain.user_probs)

    def test_process_pool_urgent_jumps_queue(self, fitted, toy_data):
        """A hedge races a flight that already outlived the tail
        threshold; FIFO behind the backlog would forfeit the race, so
        urgent submissions join the *front* of the pool queue."""
        x, _, _ = toy_data
        backend = ProcessPoolBackend(
            workers=1,
            heartbeat_ms=50.0,
            hang_timeout_s=30.0,  # the wedge must outlive the test
            shutdown_timeout_s=0.5,
        )
        try:
            backend.submit(fitted, x[:1]).result(timeout=60)  # spawn+attach
            backend.inject_fault("hang_in_task")
            backend.submit(fitted, x[:1])  # wedges the only worker
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:  # wait until it's airborne
                with backend._lock:
                    if not backend._queue:
                        break
                time.sleep(0.005)
            queued_a = backend.submit(fitted, x[:1])
            queued_b = backend.submit(fitted, x[:1])
            urgent = backend.submit_urgent(fitted, x[:1])
            with backend._lock:
                order = [task.future for task in backend._queue]
            assert order[0] is urgent
            assert order.index(queued_a) < order.index(queued_b)
        finally:
            backend.close()


class TestLifecycle:
    def test_close_settles_pending_tickets(self, fitted, toy_data):
        """close() must not strand queued requests: no ticket is ever
        dropped, shutdown included."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, backend=ThreadPoolBackend(workers=1))
        ticket = engine.submit(x[0], defer_flush=True)
        engine.close()
        assert ticket.done and ticket.result() is not None

    def test_gateway_rejects_backend_with_external_engine(self, fitted):
        from repro.serving import GatewayServer

        engine = InferenceEngine(fitted)
        with pytest.raises(ValueError, match="backend"):
            GatewayServer(engine=engine, backend=InlineBackend())

    def test_bind_backend_change_resets_learned_state(self):
        from repro.serving import BatchScheduler

        scheduler = BatchScheduler(slo_ms=50.0, adapt_margin=True, margin_ms=2.0)
        scheduler.bind_backend("process", 4)
        scheduler.observe_batch(4, 0.010)
        scheduler.record_queue_latency(0.5)
        scheduler.margin_s = 0.02  # as if the controller widened it
        scheduler.bind_backend("inline", 1)
        snap = scheduler.snapshot()
        assert snap["backend"] == "inline" and snap["backend_slots"] == 1
        assert snap["observed_batches"] == 1  # counters keep history...
        assert snap["per_sample_ms"] == 0.0  # ...but the model is fresh
        assert not scheduler.stats.queue_window
        assert scheduler.margin_s == pytest.approx(2.0 / 1e3)


class TestFactoryAndRegistryArenas:
    def test_create_backend_spellings(self):
        assert create_backend("inline").name == "inline"
        with create_backend("thread", workers=3) as backend:
            assert backend.name == "thread" and backend.slots == 3
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("gpu")
        with pytest.raises(ValueError, match="workers"):
            create_backend("thread", workers=0)

    def test_registry_hands_out_cached_arenas(self, fitted, fitted_b):
        import os

        registry = ModelRegistry(capacity=2)
        registry.put("model-a", fitted)
        first = registry.arena_for("model-a", fitted)
        assert registry.arena_for("model-a", fitted) == first  # cached
        assert registry.stats.arena_exports == 1
        # Same key, new system (a hot reload): fresh export; the old
        # bundle survives one swap (airborne batches may still attach).
        registry.put("model-a", fitted_b)
        second = registry.arena_for("model-a", fitted_b)
        assert second != first
        assert registry.stats.arena_exports == 2
        assert os.path.isdir(first)
        # A further reload retires-and-deletes the oldest bundle: hot
        # reloading forever must not accumulate weight copies on disk.
        registry.put("model-a", fitted)
        third = registry.arena_for("model-a", fitted)
        assert third not in (first, second)
        assert os.path.isdir(second) and not os.path.exists(first)

    def test_registry_arena_attaches_byte_identical(self, fitted, toy_data):
        x, _, _ = toy_data
        registry = ModelRegistry()
        bundle = registry.arena_for("m", fitted)
        clone = load_system_flat(bundle)
        a, b = fitted.predict(x[:4]), clone.predict(x[:4])
        assert np.array_equal(a.gesture_probs, b.gesture_probs)
        assert np.array_equal(a.user_probs, b.user_probs)

    def test_flat_bundle_round_trip(self, fitted, toy_data, tmp_path):
        x, _, _ = toy_data
        export_flat(fitted, tmp_path / "bundle")
        clone = load_system_flat(tmp_path / "bundle")
        a, b = fitted.predict(x[:4]), clone.predict(x[:4])
        assert np.array_equal(a.gesture_probs, b.gesture_probs)
        assert np.array_equal(a.user_probs, b.user_probs)

    def test_flat_bundle_rejects_truncated_arena(self, fitted, tmp_path):
        bundle = export_flat(fitted, tmp_path / "bundle")
        arena = bundle / "weights.arena"
        arena.write_bytes(arena.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            load_system_flat(bundle)
