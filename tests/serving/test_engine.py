"""InferenceEngine: micro-batching semantics and byte-identical results."""

import numpy as np
import pytest

from repro.core import GesturePrint, SessionIdentifier
from repro.serving import InferenceEngine


def _assert_same_result(a, b):
    assert a.gesture == b.gesture
    assert a.user == b.user
    assert np.array_equal(a.gesture_probs, b.gesture_probs)
    assert np.array_equal(a.user_probs, b.user_probs)


class TestEngineBasics:
    def test_unfitted_system_rejected(self):
        with pytest.raises(ValueError):
            InferenceEngine(GesturePrint())

    def test_bad_batch_size_rejected(self, fitted):
        with pytest.raises(ValueError):
            InferenceEngine(fitted, max_batch_size=0)

    def test_bad_sample_shape_rejected(self, fitted):
        engine = InferenceEngine(fitted)
        with pytest.raises(ValueError):
            engine.predict_one(np.zeros((4, 12, 8)))

    def test_predict_one_matches_system_predict(self, fitted, toy_data):
        engine = InferenceEngine(fitted)
        x, _, _ = toy_data
        result = engine.predict_one(x[0])
        reference = fitted.predict(x[0:1])
        assert result.gesture == int(reference.gesture_pred[0])
        assert result.user == int(reference.user_pred[0])
        assert np.array_equal(result.gesture_probs, reference.gesture_probs[0])
        assert np.array_equal(result.user_probs, reference.user_probs[0])

    def test_ticket_result_raises_before_flush(self, fitted, toy_data):
        engine = InferenceEngine(fitted, max_batch_size=16)
        x, _, _ = toy_data
        ticket = engine.submit(x[0])
        assert not ticket.done
        with pytest.raises(RuntimeError):
            ticket.result()
        engine.flush()
        assert ticket.done
        assert ticket.result().user_probs.shape == (fitted.num_users,)

    def test_flush_empty_queue_is_noop(self, fitted):
        engine = InferenceEngine(fitted)
        assert engine.flush() == []
        assert engine.stats.batches == 0


class TestMicroBatching:
    def test_auto_flush_at_max_batch_size(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=4)
        tickets = [engine.submit(sample) for sample in x[:4]]
        # The 4th submit crossed the threshold: everything delivered.
        assert all(ticket.done for ticket in tickets)
        assert engine.num_pending == 0
        assert engine.stats.batches == 1
        assert engine.stats.max_batch == 4

    def test_callback_fires_at_delivery(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        seen = []
        engine.submit(x[0], meta="tag", callback=seen.append)
        assert seen == []
        engine.flush()
        assert len(seen) == 1
        assert seen[0].user_probs.shape == (fitted.num_users,)

    def test_mixed_shapes_grouped_per_forward(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        small = x[0][:8]  # fewer points than the other requests
        tickets = [engine.submit(x[0]), engine.submit(small), engine.submit(x[1])]
        engine.flush()
        assert all(ticket.done for ticket in tickets)
        assert engine.stats.batches == 2  # one per distinct shape
        _assert_same_result(tickets[1].result(), engine.predict_one(small))

    def test_poison_group_fails_alone(self, fitted, toy_data):
        """One bad batch must not swallow the other groups' tickets."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        good = engine.submit(x[0])
        # Valid per _validate (2-D, enough channels) but rejected by the
        # network: fewer points than the second set-abstraction level's
        # neighbourhood machinery can handle is fine, so poison via NaN
        # shape trickery instead: a (0, channels) sample breaks predict.
        bad = engine.submit(np.zeros((0, x.shape[2])))
        with pytest.raises(Exception):
            engine.flush()
        assert good.done
        assert good.result().user_probs.shape == (fitted.num_users,)
        assert bad.done
        with pytest.raises(Exception):
            bad.result()

    def test_poison_group_error_callback_fires(self, fitted, toy_data):
        """Deferred callers learn about failed spans instead of losing
        them silently: Ticket._fail notifies on_error."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        errors = []
        bad = engine.submit(np.zeros((0, x.shape[2])), on_error=errors.append)
        engine.flush(raise_on_error=False)  # exception-safe flush
        assert bad.done
        assert len(errors) == 1 and isinstance(errors[0], Exception)
        with pytest.raises(Exception):
            bad.result()

    def test_reentrant_submit_defers_to_flush_tail(self, fitted, toy_data):
        """A delivery callback that submits (chained classification) must
        not interleave batches: the nested flush runs after the outer
        one, and delivery order stays submission order."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=2)
        order = []

        def chain(_result):
            order.append("a")
            engine.submit(x[2], callback=lambda r: order.append("c"))
            # Second nested submit crosses max_batch_size: without the
            # _in_flush guard this would flush (c, d) mid-delivery of a.
            engine.submit(x[3], callback=lambda r: order.append("d"))

        a = engine.submit(x[0], callback=chain)
        b = engine.submit(x[1], callback=lambda r: order.append("b"))
        assert order == ["a", "b", "c", "d"]
        assert a.done and b.done
        assert engine.num_pending == 0
        assert engine.stats.batches == 2

    def test_flush_drains_in_priority_order(self, fitted, toy_data):
        """Lower priority value (more important class) delivers first;
        ties keep submission order, so default traffic is unaffected."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        order = []
        engine.submit(x[0], callback=lambda r: order.append("batch-1"), priority=2)
        engine.submit(x[1], callback=lambda r: order.append("premium"), priority=0)
        engine.submit(x[2], callback=lambda r: order.append("batch-2"), priority=2)
        engine.submit(x[3], callback=lambda r: order.append("standard"), priority=1)
        completed = engine.flush()
        assert order == ["premium", "standard", "batch-1", "batch-2"]
        assert [t.priority for t in completed] == [0, 1, 2, 2]

    def test_priority_ties_break_by_deadline(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        order = []
        engine.submit(x[0], callback=lambda r: order.append("lax"), deadline_ms=500.0)
        engine.submit(x[1], callback=lambda r: order.append("urgent"), deadline_ms=10.0)
        engine.flush()
        assert order == ["urgent", "lax"]

    def test_discard_pending_cancels_tickets(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        keep = engine.submit(x[0], meta="keep")
        drop = engine.submit(x[1], meta="drop")
        assert engine.discard_pending(lambda meta: meta == "drop") == 1
        assert drop.cancelled
        with pytest.raises(RuntimeError):
            drop.result()
        engine.flush()
        assert keep.done and not keep.cancelled

    def test_stats_counters(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=8)
        engine.predict_one(x[0])
        for sample in x[:6]:
            engine.submit(sample)
        engine.flush()
        assert engine.stats.requests == 7
        assert engine.stats.sync_requests == 1
        assert engine.stats.batched_samples == 6
        assert engine.stats.mean_batch == 6.0


class TestStaleDeadlines:
    """A deadline already in the past is clamped to "due now"."""

    class _Clock:
        def __init__(self):
            self.t = 100.0

        def __call__(self):
            return self.t

    def test_stale_deadline_flushes_immediately(self, fitted, toy_data):
        """Backdated arrival + tiny budget: the request cannot wait for
        company — it rides the immediate-flush path on submit."""
        x, _, _ = toy_data
        clock = self._Clock()
        engine = InferenceEngine(fitted, max_batch_size=16, clock=clock)
        ticket = engine.submit(x[0], arrival=clock.t - 10.0, deadline_ms=5.0)
        assert ticket.done  # flushed by the submit itself
        assert ticket.deadline == clock.t  # clamped, not 9.995 s ago

    def test_stale_deadline_never_feeds_negative_slack(self, fitted, toy_data):
        """Regression: the scheduler must never see negative slack from a
        stale deadline — pre-clamp, every later submit saw slack < 0,
        forced a batch-of-1 deadline flush, and the EWMA latency model
        learned those panic batches as the normal cost profile."""
        from repro.serving import BatchScheduler

        x, _, _ = toy_data
        clock = self._Clock()
        scheduler = BatchScheduler(slo_ms=50.0, clock=clock)
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        seen_slack = []
        original = scheduler.should_flush

        def spy(depth, *, slack_s=None):
            seen_slack.append(slack_s)
            return original(depth, slack_s=slack_s)

        scheduler.should_flush = spy
        stale = engine.submit(x[0], arrival=clock.t - 3.0, deadline_ms=1.0)
        assert stale.done
        later = [engine.submit(sample, defer_flush=True) for sample in x[1:4]]
        clock.t += 0.001
        engine.poll()
        engine.flush()
        assert all(ticket.done for ticket in later)
        assert all(slack is None or slack >= 0.0 for slack in seen_slack)
        # The healthy submits still rode one shared batch, not panic 1s.
        assert engine.stats.max_batch == 3


class TestBatchedEquivalence:
    """The serving guarantee: batching never changes a prediction bit."""

    def test_batched_results_byte_identical_to_sync_path(self, fitted, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=64)
        batched = engine.predict_many(x[:24])
        for sample, result in zip(x[:24], batched):
            _assert_same_result(result, engine.predict_one(sample))

    def test_equivalence_across_batch_compositions(self, fitted, toy_data):
        """The same sample gives identical posteriors whatever rides along."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=64)
        alone = engine.predict_many(x[5:6])[0]
        with_head = engine.predict_many(x[0:6])[5]
        with_tail = engine.predict_many(x[5:20])[0]
        _assert_same_result(alone, with_head)
        _assert_same_result(alone, with_tail)


class TestHotSwap:
    """swap_system: no dropped tickets, no mixed weights, versions tagged."""

    def test_swap_flushes_pending_on_old_weights(self, fitted, fitted_b, toy_data):
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        pending = engine.submit(x[0])
        version = engine.swap_system(fitted_b)
        assert version == 1 and engine.model_version == 1
        assert pending.done and not pending.cancelled
        old = pending.result()
        assert old.model_version == 0
        reference = fitted.predict(x[0:1])  # the *old* weights
        assert np.array_equal(old.gesture_probs, reference.gesture_probs[0])
        new = engine.predict_one(x[0])
        assert new.model_version == 1
        assert np.array_equal(
            new.user_probs, fitted_b.predict(x[0:1]).user_probs[0]
        )
        assert engine.stats.swaps == 1

    def test_swap_same_system_is_noop(self, fitted):
        engine = InferenceEngine(fitted)
        assert engine.swap_system(fitted) == 0
        assert engine.stats.swaps == 0

    def test_swap_rejects_unfitted(self, fitted):
        from repro.core import GesturePrint

        engine = InferenceEngine(fitted)
        with pytest.raises(ValueError):
            engine.swap_system(GesturePrint())

    def test_swap_from_delivery_callback_is_deferred(
        self, fitted, fitted_b, toy_data
    ):
        """A swap requested mid-flush applies only after the current
        flush drains: tickets of the same batch never mix weights."""
        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=16)
        seen = {}

        def swap_now(_result):
            engine.swap_system(fitted_b)
            seen["version_during_flush"] = engine.model_version

        first = engine.submit(x[0], callback=swap_now)
        second = engine.submit(x[1])
        engine.flush()
        assert seen["version_during_flush"] == 0  # not applied mid-batch
        assert first.result().model_version == 0
        assert second.result().model_version == 0
        assert engine.model_version == 1  # applied at the flush tail
        assert engine.system is fitted_b


class TestSessionThroughEngine:
    def test_session_identifier_routes_through_engine(self, fitted, toy_data):
        x, _, u = toy_data
        engine = InferenceEngine(fitted)
        direct = SessionIdentifier(fitted)
        served = SessionIdentifier(engine=engine)
        for sample in x[:5]:
            direct.update(sample)
            served.update(sample)
        a, b = direct.estimate(), served.estimate()
        assert a.user == b.user
        assert np.array_equal(a.posterior, b.posterior)
        assert engine.stats.sync_requests == 5

    def test_session_identifier_requires_system_or_engine(self):
        with pytest.raises(ValueError):
            SessionIdentifier()
