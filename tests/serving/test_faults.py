"""Self-healing worker pool: crash, hang, respawn, and arena-GC paths.

The supervised :class:`ProcessPoolBackend` must survive worker death
without operator intervention: a SIGKILLed worker's airborne batch is
redispatched exactly once (tickets delivered exactly once, never
duplicated), a replacement is spawned against the current weight
bundle, and past the respawn budget the pool degrades to a *clean*
error instead of hanging the engine.  Fault injection
(``inject_fault``) arms a worker to die or wedge on its next batch, so
every crash here is deterministically mid-batch — no sleeps racing real
executions.

Arena GC rides the same lifecycle: a superseded weight bundle is
refcounted by airborne batches + worker attachments and deleted the
moment the count drops to zero — and not a moment earlier.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.analysis import lockwitness
from repro.serving import (
    BatchScheduler,
    InferenceEngine,
    ModelRegistry,
    ProcessPoolBackend,
    WorkerCrashError,
)


@pytest.fixture(autouse=True, scope="module")
def lock_order_witness():
    """Opt-in lock-order audit over the whole fault module.

    With ``REPRO_LOCK_WITNESS=1`` (the CI chaos setting) every
    ``threading.Lock``/``RLock`` created while these tests run — the
    pool's ``_lock``, the registry's ``_arena_lock``, future conditions —
    is witnessed, and any acquired-while-held ordering cycle observed
    across the module fails it, even if no run actually deadlocked.
    """
    handle = lockwitness.install_if_enabled()
    try:
        yield handle
    finally:
        if handle is not None:
            handle.uninstall()
    if handle is not None:
        handle.assert_clean()


def _wait_until(predicate, timeout_s: float = 20.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.02)


class TestCrashRespawn:
    def test_sigkill_mid_batch_redispatched_once_delivered_once(
        self, fitted, toy_data
    ):
        """The armed worker SIGKILLs itself the moment the batch arrives:
        the batch is provably airborne and lost, must be redispatched to
        the healthy worker, delivered exactly once, and byte-identical
        to predict_one; the dead worker must be respawned."""
        x, _, _ = toy_data
        with ProcessPoolBackend(
            workers=2, heartbeat_ms=50.0, max_respawns=2
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            reference = InferenceEngine(fitted)
            engine.predict_many(x[:2])  # warm both workers / export arena
            assert backend.inject_fault("die_in_task") is not None
            deliveries = []
            ticket = engine.submit(x[0], callback=deliveries.append)
            engine.flush(raise_on_error=False)
            assert ticket.done and not ticket.cancelled
            assert len(deliveries) == 1  # exactly once, never twice
            expected = reference.predict_one(x[0])
            assert ticket.result().gesture == expected.gesture
            assert np.array_equal(
                ticket.result().gesture_probs, expected.gesture_probs
            )
            health = backend.describe()
            assert health["crashes"] == 1
            assert health["redispatches"] == 1
            assert health["respawns"] == 1
            assert health["alive_workers"] == 2  # healed back to full strength
            assert engine.stats.retried_batches == 1
            assert engine.stats.failed_batches == 0

    def test_retried_batch_excluded_from_scheduler_latency_model(
        self, fitted, toy_data
    ):
        """A crash's recovery time (detection + respawn + re-execution)
        must not poison the EWMA: the engine hands the scheduler a
        ``retried`` disposition and the model ignores the batch."""
        x, _, _ = toy_data
        scheduler = BatchScheduler(slo_ms=None)
        with ProcessPoolBackend(
            workers=2, heartbeat_ms=50.0, max_respawns=2
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend, scheduler=scheduler)
            engine.predict_many(x[:2])  # one clean observation
            clean = scheduler.snapshot()["per_sample_ms"]
            assert scheduler.stats.observed_batches >= 1
            observed_before = scheduler.stats.observed_batches
            backend.inject_fault("die_in_task")
            engine.submit(x[0])
            engine.flush(raise_on_error=False)
            snap = scheduler.snapshot()
            assert snap["retried_batches"] == 1
            assert scheduler.stats.observed_batches == observed_before
            assert snap["per_sample_ms"] == pytest.approx(clean)

    def test_missed_heartbeat_detects_silent_worker(self, fitted, toy_data):
        """A worker that stops heartbeating (SIGSTOP: alive but silent)
        is declared dead at the miss deadline, killed, and replaced."""
        x, _, _ = toy_data
        with ProcessPoolBackend(
            workers=1, heartbeat_ms=25.0, miss_limit=4, max_respawns=2
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            engine.predict_many(x[:1])  # worker warm + heartbeating
            pid = backend.describe()["worker_health"][0]["pid"]
            os.kill(pid, signal.SIGSTOP)
            _wait_until(
                lambda: backend.describe()["respawns"] >= 1,
                what="respawn after SIGSTOP",
            )
            results = engine.predict_many(x[:2])  # replacement serves
            assert [r.gesture for r in results] == [
                InferenceEngine(fitted).predict_one(s).gesture for s in x[:2]
            ]


class TestRespawnBudget:
    def test_budget_exhaustion_degrades_to_clean_error(self, fitted, toy_data):
        """With the budget at zero, the only worker's death may not hang
        anything: the airborne ticket fails with WorkerCrashError and the
        engine stays usable (later submissions fail cleanly too)."""
        x, _, _ = toy_data
        with ProcessPoolBackend(
            workers=1, heartbeat_ms=50.0, max_respawns=0
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            engine.predict_many(x[:1])  # warm
            backend.inject_fault("die_in_task")
            errors = []
            doomed = engine.submit(x[0], on_error=errors.append)
            engine.flush(raise_on_error=False)
            assert doomed.done
            assert len(errors) == 1 and isinstance(errors[0], WorkerCrashError)
            assert backend.describe()["degraded"]
            # The engine survives: a further submit fails its own ticket
            # with the same clean error instead of wedging the flush.
            late_errors = []
            late = engine.submit(x[1], on_error=late_errors.append)
            engine.flush(raise_on_error=False)
            assert late.done and isinstance(late_errors[0], WorkerCrashError)
            assert engine.num_pending == 0 and engine.num_in_flight == 0


    def test_slots_shrink_with_dead_workers(self, fitted, toy_data):
        """Past the respawn budget the pool serves on the survivors and
        *says so*: slots reports live capacity, so the gateway's feed
        gate keeps overload pooling in the admission queue instead of
        inside the pool's queue behind the lone survivor."""
        x, _, _ = toy_data
        with ProcessPoolBackend(
            workers=2, heartbeat_ms=50.0, max_respawns=0
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            engine.predict_many(x[:2])
            assert backend.slots == 2
            backend.inject_fault("die_in_task")
            ticket = engine.submit(x[0])
            engine.flush(raise_on_error=False)
            assert ticket.done and ticket.result() is not None  # survivor served it
            assert backend.describe()["alive_workers"] == 1
            assert backend.slots == 1


class TestShutdownReaping:
    def test_close_racing_wedged_batch_leaves_no_zombies(self, fitted, toy_data):
        """close() joins under a deadline, then terminates and reaps: a
        worker wedged mid-batch cannot outlive the pool, and the
        airborne ticket fails instead of being stranded."""
        import multiprocessing

        x, _, _ = toy_data
        backend = ProcessPoolBackend(
            workers=1, heartbeat_ms=50.0, hang_timeout_s=120.0,
            shutdown_timeout_s=0.5,
        )
        engine = InferenceEngine(fitted, backend=backend)
        engine.predict_many(x[:1])  # warm
        backend.inject_fault("hang_in_task")
        ticket = engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        _wait_until(
            lambda: any(
                w["busy"] for w in backend.describe()["worker_health"]
            ),
            what="batch airborne on the wedged worker",
        )
        start = time.monotonic()
        backend.close()
        assert time.monotonic() - start < 10.0  # deadline, not a hang
        assert multiprocessing.active_children() == []  # reaped, no zombies
        engine.poll()  # collect the failed future
        assert ticket.done
        with pytest.raises(WorkerCrashError):
            ticket.result()


class TestArenaRefcountGC:
    def test_refcount_zero_only_after_last_airborne_batch_lands(
        self, fitted, fitted_b
    ):
        """A superseded bundle pinned by airborne batches / attached
        workers survives every decref but the last; the last one deletes
        the file and bumps retired_arenas."""
        registry = ModelRegistry()
        first = registry.arena_for("m", fitted)
        registry.addref_arena(first)  # airborne batch
        registry.addref_arena(first)  # worker attachment
        second = registry.arena_for("m", fitted_b)  # hot reload supersedes
        assert second != first
        assert os.path.isdir(first)  # still pinned: not collected
        registry.decref_arena(first)  # batch lands
        assert os.path.isdir(first)  # worker still attached
        assert registry.stats.retired_arenas == 0
        registry.decref_arena(first)  # worker lets go: count hits zero
        assert not os.path.exists(first)
        assert registry.stats.retired_arenas == 1
        snap = registry.snapshot()
        assert snap["retired_arenas"] == 1 and snap["live_arenas"] == 1

    def test_pinned_then_released_bundle_retires_immediately(
        self, fitted, fitted_b
    ):
        """With refcounting engaged and the count already at zero, the
        turnover deletes the superseded bundle on the spot (no one-swap
        grace needed — the refs are exact)."""
        registry = ModelRegistry()
        first = registry.arena_for("m", fitted)
        registry.addref_arena(first)
        registry.decref_arena(first)  # engaged, now unpinned
        registry.arena_for("m", fitted_b)
        assert not os.path.exists(first)
        assert registry.stats.retired_arenas == 1

    def test_worker_pool_keeps_hot_reload_arena_count_bounded(
        self, fitted, fitted_b, toy_data
    ):
        """End to end: a registry-backed process pool hot-swapping
        repeatedly retires superseded bundles (files actually unlinked)
        and holds the live-arena count bounded."""
        x, _, _ = toy_data
        registry = ModelRegistry()
        with ProcessPoolBackend(
            workers=1,
            heartbeat_ms=50.0,
            arena_provider=lambda system: registry.arena_for("serve", system),
            arena_refs=registry,
        ) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            engine.predict_many(x[:1])
            for swap in range(5):
                engine.swap_system(fitted_b if swap % 2 == 0 else fitted)
                engine.predict_many(x[:1])
            snap = registry.snapshot()
            assert snap["arena_exports"] == 6
            assert snap["retired_arenas"] >= 3  # GC actually ran
            assert snap["live_arenas"] <= 3  # bounded, not one per swap
            # Fidelity after the churn: still byte-identical to the
            # system live after the final swap (swap 4 -> fitted_b).
            result = engine.predict_many(x[:1])[0]
            expected = InferenceEngine(fitted_b).predict_one(x[0])
            assert np.array_equal(result.user_probs, expected.user_probs)


class TestHealthSurfacing:
    def test_gateway_snapshot_carries_worker_health_and_retries(self, fitted):
        from repro.serving import GatewayServer

        server = GatewayServer(fitted)
        snapshot = server.snapshot()
        assert "retried_batches" in snapshot["engine"]
        assert snapshot["engine"]["backend"]["name"] == "inline"

    def test_describe_reports_per_worker_health(self, fitted, toy_data):
        x, _, _ = toy_data
        with ProcessPoolBackend(workers=2, heartbeat_ms=50.0) as backend:
            engine = InferenceEngine(fitted, backend=backend)
            engine.predict_many(x[:2])
            health = backend.describe()
            assert health["alive_workers"] == 2
            assert len(health["worker_health"]) == 2
            for row in health["worker_health"]:
                assert row["alive"] and not row["busy"]
                assert isinstance(row["pid"], int)
            assert health["respawns"] == 0 and not health["degraded"]
