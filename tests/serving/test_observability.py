"""Observability: metrics registry, Prometheus exposition, trace lifecycle.

Four layers under test:

* the metric primitives (counter/gauge/histogram families, labelled
  children, kind/label mismatch detection, disabled-registry no-ops);
* text-exposition conformance — HELP/TYPE lines, label escaping,
  cumulative bucket monotonicity with ``le="+Inf"`` == ``_count``, and
  the content-type header over a real HTTP GET against
  :class:`MetricsServer`;
* per-ticket trace lifecycles: every completed ticket ends in exactly
  one terminal (``delivered`` / ``shed`` / ``error``) across the
  inline, thread, and process backends — including hedged batches and
  crash-redispatched batches, the two paths where one request runs
  twice — plus ring-overflow drop accounting and the JSONL sink;
* the gateway TRACE frame end-to-end, and the RC004/RC007 regression:
  the real serving tree must scan clean (the one sanctioned wall-clock
  read carries its suppression).
"""

from __future__ import annotations

import json
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.serving import InferenceEngine, ProcessPoolBackend, ThreadPoolBackend
from repro.serving.observability import (
    CONTENT_TYPE,
    MetricsRegistry,
    MetricsServer,
    TraceLog,
    Tracer,
    parse_text,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def sample(parsed, name, **labels):
    return parsed.get((name, tuple(sorted(labels.items()))))


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_counts_and_rejects_decrement(self):
        m = MetricsRegistry()
        c = m.counter("repro_test_total", "help", ("tenant",))
        c.labels("a").inc()
        c.labels("a").inc(2)
        c.labels(tenant="b").inc()
        assert m.get_sample("repro_test_total", {"tenant": "a"}) == 3.0
        assert m.get_sample("repro_test_total", {"tenant": "b"}) == 1.0
        with pytest.raises(ValueError):
            c.labels("a").inc(-1)

    def test_gauge_set_inc_dec(self):
        m = MetricsRegistry()
        g = m.gauge("repro_depth", "help")
        g.set(4)
        g.inc()
        g.dec(2)
        assert m.get_sample("repro_depth") == 3.0

    def test_histogram_cumulative_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("repro_lat_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        counts, total, count = h.labels().snapshot()
        assert counts == [1, 2, 3]  # cumulative, final == count
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_get_or_create_is_idempotent_and_typed(self):
        m = MetricsRegistry()
        a = m.counter("repro_x_total", "help")
        assert m.counter("repro_x_total", "ignored") is a
        with pytest.raises(ValueError):
            m.gauge("repro_x_total", "kind clash")
        with pytest.raises(ValueError):
            m.counter("repro_x_total", "label clash", ("tenant",))

    def test_disabled_registry_is_inert(self):
        m = MetricsRegistry(enabled=False)
        c = m.counter("repro_off_total", "help", ("tenant",))
        c.labels("a").inc()
        m.histogram("repro_off_seconds", "help").observe(1.0)
        m.register_collector(lambda: 1 / 0)  # never runs
        assert render_text(m) == ""
        assert m.get_sample("repro_off_total", {"tenant": "a"}) is None

    def test_collector_runs_at_scrape_and_errors_are_counted(self):
        m = MetricsRegistry()
        g = m.gauge("repro_snap", "help")
        m.register_collector(lambda: g.set(7))
        m.register_collector(lambda: 1 / 0)
        assert m.get_sample("repro_snap") == 7.0
        assert m.collector_errors >= 1
        assert m.get_sample("repro_metrics_collector_errors") >= 1.0


# ----------------------------------------------------------------------
# Text exposition + /metrics endpoint
# ----------------------------------------------------------------------
class TestExposition:
    def test_help_and_type_lines(self):
        m = MetricsRegistry()
        m.counter("repro_a_total", "What a counts.").inc()
        m.gauge("repro_b", "What b is.").set(1)
        m.histogram("repro_c_seconds", "What c measures.", buckets=(1.0,)).observe(0.5)
        text = render_text(m)
        assert "# HELP repro_a_total What a counts.\n" in text
        assert "# TYPE repro_a_total counter\n" in text
        assert "# TYPE repro_b gauge\n" in text
        assert "# TYPE repro_c_seconds histogram\n" in text
        # Families render name-sorted, samples parse back exactly.
        parsed = parse_text(text)
        assert sample(parsed, "repro_a_total") == 1.0
        assert sample(parsed, "repro_c_seconds_count") == 1.0

    def test_label_escaping_round_trips(self):
        m = MetricsRegistry()
        hostile = 'quote " backslash \\ newline \n done'
        m.counter("repro_esc_total", "h", ("tenant",)).labels(hostile).inc()
        parsed = parse_text(render_text(m))
        assert sample(parsed, "repro_esc_total", tenant=hostile) == 1.0

    def test_bucket_monotonicity_and_inf_equals_count(self):
        m = MetricsRegistry()
        h = m.histogram(
            "repro_hist_seconds", "h", ("slo_class",), buckets=(0.01, 0.1, 1.0)
        )
        rng = np.random.default_rng(0)
        for value in rng.uniform(0.001, 2.0, size=50):
            h.labels("premium").observe(float(value))
        parsed = parse_text(render_text(m))
        bounds = ["0.01", "0.1", "1", "+Inf"]
        counts = [
            sample(parsed, "repro_hist_seconds_bucket", slo_class="premium", le=le)
            for le in bounds
        ]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 50.0
        assert sample(parsed, "repro_hist_seconds_count", slo_class="premium") == 50.0

    def test_metrics_server_serves_exposition_over_http(self):
        m = MetricsRegistry()
        m.counter("repro_http_total", "h").inc(3)
        with MetricsServer(0, registry=m) as server:
            base = f"http://127.0.0.1:{server.port}"
            assert server.url == base + "/metrics"
            with urllib.request.urlopen(server.url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert sample(parse_text(body), "repro_http_total") == 3.0
            with urllib.request.urlopen(base + "/healthz") as response:
                assert response.status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/nope")
            assert excinfo.value.code == 404
        server.close()  # idempotent


# ----------------------------------------------------------------------
# Trace lifecycle: exactly one terminal per ticket, on every backend
# ----------------------------------------------------------------------
def traced_engine(fitted, *, backend=None, metrics=None, **kwargs):
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer = Tracer(capacity=256, metrics=metrics)
    engine = InferenceEngine(
        fitted, backend=backend, metrics=metrics, tracer=tracer, **kwargs
    )
    return engine, tracer, metrics


class TestTraceLifecycle:
    def test_delivered_trace_marks_every_stage(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, tracer, _ = traced_engine(fitted)
        engine.submit(x[0])
        engine.flush()
        (record,) = tracer.drain()
        assert record["terminal"] == "delivered"
        assert record["batch_size"] == 1
        assert record["model_version"] == engine.model_version
        assert record["queue_wait_ms"] >= 0.0
        assert record["exec_ms"] >= 0.0
        assert record["total_ms"] >= record["exec_ms"]
        assert not record["retried"] and not record["hedged"]

    @pytest.mark.parametrize("backend_cls", [ThreadPoolBackend, ProcessPoolBackend])
    def test_one_terminal_per_ticket_on_pooled_backends(
        self, fitted, toy_data, backend_cls
    ):
        x, _, _ = toy_data
        with backend_cls(workers=2) as backend:
            engine, tracer, _ = traced_engine(fitted, backend=backend)
            for i in range(6):
                engine.submit(x[i % len(x)])
            engine.flush()
            engine.drain()
        records = tracer.drain()
        assert len(records) == 6
        assert all(r["terminal"] == "delivered" for r in records)

    def test_crash_redispatch_yields_one_retried_terminal(self, fitted, toy_data):
        """A SIGKILLed worker's batch is redispatched exactly once; its
        ticket's trace must show one `delivered` terminal with
        retried=True — never two terminals."""
        x, _, _ = toy_data
        metrics = MetricsRegistry()
        with ProcessPoolBackend(
            workers=2, heartbeat_ms=50.0, max_respawns=2, metrics=metrics
        ) as backend:
            engine, tracer, _ = traced_engine(
                fitted, backend=backend, metrics=metrics
            )
            engine.predict_many(x[:2])  # warm both workers
            tracer.drain()  # discard the warm-up traces
            assert backend.inject_fault("die_in_task") is not None
            engine.submit(x[0])
            engine.flush(raise_on_error=False)
            (record,) = tracer.drain()
            assert record["terminal"] == "delivered"
            assert record["retried"] is True
            assert record["worker"] is not None
            assert metrics.get_sample("repro_backend_crashes_total",
                                      {"backend": "process"}) == 1.0
            assert metrics.get_sample("repro_engine_retried_batches_total",
                                      {"backend": "process"}) == 1.0

    def test_crash_past_budget_yields_one_error_terminal(self, fitted, toy_data):
        x, _, _ = toy_data
        with ProcessPoolBackend(
            workers=1, heartbeat_ms=50.0, max_respawns=0
        ) as backend:
            engine, tracer, _ = traced_engine(fitted, backend=backend)
            engine.predict_many(x[:1])
            tracer.drain()  # discard the warm-up trace
            backend.inject_fault("die_in_task")
            engine.submit(x[0], on_error=lambda _e: None)
            engine.flush(raise_on_error=False)
            (record,) = tracer.drain()
            assert record["terminal"] == "error"
            assert record["code"] == "WorkerCrashError"

    def test_shed_via_discard_pending(self, fitted, toy_data):
        x, _, _ = toy_data
        engine, tracer, _ = traced_engine(fitted)
        engine.submit(x[0], defer_flush=True)
        assert engine.discard_pending(lambda _meta: True, code="disconnect") == 1
        (record,) = tracer.drain()
        assert record["terminal"] == "shed"
        assert record["code"] == "disconnect"

    def test_finish_is_exactly_once(self):
        tracer = Tracer(metrics=MetricsRegistry())
        record = tracer.begin()
        assert record.finish("delivered") is True
        assert record.finish("shed", code="late") is False
        (entry,) = tracer.drain()
        assert entry["terminal"] == "delivered"

    def test_ring_overflow_counts_drops(self):
        metrics = MetricsRegistry()
        tracer = Tracer(capacity=4, metrics=metrics)
        for _ in range(10):
            tracer.begin().finish("delivered")
        assert tracer.buffered == 4
        assert tracer.dropped == 6
        assert metrics.get_sample("repro_trace_buffer_dropped_total") == 6.0
        assert metrics.get_sample("repro_traces_total",
                                  {"terminal": "delivered"}) == 10.0
        assert len(tracer.drain()) == 4
        assert tracer.buffered == 0

    def test_trace_log_writes_jsonl(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        log = TraceLog(str(path))
        tracer = Tracer(metrics=MetricsRegistry(), sink=log)
        tracer.begin(tenant="edge-1").finish("delivered")
        tracer.begin(tenant="edge-2").finish("shed", code="disconnect")
        log.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["tenant"] for line in lines] == ["edge-1", "edge-2"]
        assert [line["terminal"] for line in lines] == ["delivered", "shed"]
        assert log.written == 2


# ----------------------------------------------------------------------
# Hedging: one request runs twice, one terminal comes out
# ----------------------------------------------------------------------
class TestHedgedTraces:
    def test_hedged_ticket_single_terminal(self, fitted, toy_data):
        from .test_hedging import GateBackend, ManualClock

        x, _, _ = toy_data
        clock = ManualClock()
        backend = GateBackend()
        metrics = MetricsRegistry()
        tracer = Tracer(capacity=64, clock=clock, metrics=metrics)
        engine = InferenceEngine(
            fitted,
            backend=backend,
            clock=clock,
            hedge_ms=50.0,
            metrics=metrics,
            tracer=tracer,
        )
        engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        clock.advance(0.1)  # past the hedge threshold
        engine.poll()  # places the hedge
        assert engine.stats.hedged_batches == 1
        backend.release_at(1)  # hedge lands first
        engine.poll()
        backend.release_all()  # loser lands later: must not re-terminate
        engine.poll()
        (record,) = tracer.drain()
        assert record["terminal"] == "delivered"
        assert record["hedged"] is True
        assert record["hedge_win"] is True
        assert metrics.get_sample("repro_engine_hedge_wins_total",
                                  {"backend": "gate"}) == 1.0

    def test_primary_win_clears_hedge_flag_correctly(self, fitted, toy_data):
        from .test_hedging import GateBackend, ManualClock

        x, _, _ = toy_data
        clock = ManualClock()
        backend = GateBackend()
        tracer = Tracer(capacity=64, clock=clock, metrics=MetricsRegistry())
        engine = InferenceEngine(
            fitted, backend=backend, clock=clock, hedge_ms=50.0,
            metrics=MetricsRegistry(), tracer=tracer,
        )
        engine.submit(x[0], defer_flush=True)
        engine.dispatch()
        clock.advance(0.1)
        engine.poll()
        backend.release_at(0)  # primary lands first
        engine.poll()
        backend.release_all()
        engine.poll()
        (record,) = tracer.drain()
        assert record["terminal"] == "delivered"
        assert record["hedged"] is True
        assert record["hedge_win"] is False


# ----------------------------------------------------------------------
# Gateway TRACE frame + serving-wide instrumentation, end to end
# ----------------------------------------------------------------------
class TestGatewayTraces:
    def test_trace_frame_drains_lifecycles(self, fitted, toy_data):
        from repro.serving.gateway.client import GatewayClient
        from repro.serving.gateway.server import BackgroundGateway, GatewayServer

        x, _, _ = toy_data
        metrics = MetricsRegistry()
        tracer = Tracer(capacity=64, metrics=metrics)
        server = GatewayServer(fitted, metrics=metrics, tracer=tracer)
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-1") as client:
                for i in range(5):
                    client.classify(x[i % len(x)])
                reply = client.traces()
        assert reply["enabled"] is True
        assert reply["dropped"] == 0
        delivered = [t for t in reply["traces"] if t["terminal"] == "delivered"]
        assert len(delivered) == 5
        for record in delivered:
            assert record["tenant"] == "edge-1"
            assert record["slo_class"] == "standard"
            assert record["admission_wait_ms"] is not None
            assert record["total_ms"] >= 0.0
        # Scrape agrees with the gateway's own stats, counter for counter.
        parsed = parse_text(render_text(metrics))
        assert sample(parsed, "repro_gateway_results_total",
                      tenant="edge-1", slo_class="standard") == 5.0
        assert sample(parsed, "repro_gateway_request_latency_seconds_count",
                      slo_class="standard") == 5.0
        assert sample(parsed, "repro_traces_total", terminal="delivered") == 5.0

    def test_trace_frame_without_tracer_reports_disabled(self, fitted, toy_data):
        from repro.serving.gateway.client import GatewayClient
        from repro.serving.gateway.server import BackgroundGateway, GatewayServer

        server = GatewayServer(fitted, metrics=MetricsRegistry())
        with BackgroundGateway(server) as (host, port):
            with GatewayClient(host, port, tenant="edge-1") as client:
                reply = client.traces()
        assert reply == {
            "traces": [], "dropped": 0, "buffered": 0, "enabled": False,
        }


# ----------------------------------------------------------------------
# RC004 / RC007 regression: the real serving tree scans clean
# ----------------------------------------------------------------------
class TestServingTreeIsClean:
    def scan_serving(self, rule_id):
        from repro.analysis.checks import run_checks
        from repro.analysis.rules import RULES_BY_ID

        serving = REPO_ROOT / "src" / "repro" / "serving"
        paths = [str(p) for p in sorted(serving.rglob("*.py"))]
        findings, scanned = run_checks(
            paths, root=str(REPO_ROOT), rules=[RULES_BY_ID[rule_id]]
        )
        assert scanned == len(paths) > 0
        return findings

    def test_no_wall_clock_in_serving_latency_paths(self):
        """RC004: the only wall-clock read is tracing's ``wall_start``,
        which carries the suppression comment — everything else is
        monotonic, so latency math survives NTP steps."""
        assert self.scan_serving("RC004") == []
        source = (
            REPO_ROOT / "src/repro/serving/observability/tracing.py"
        ).read_text()
        assert "time.time()  # repro-check: ignore[RC004]" in source

    def test_no_adhoc_telemetry_in_serving(self):
        """RC007: no bare print(), no unbounded list-append stats."""
        assert self.scan_serving("RC007") == []

    def test_monotonic_latency_survives_wall_clock_step(self, fitted, toy_data):
        """Regression for the invariant RC004 encodes: latency math uses
        the engine clock, so a wall-clock step mid-request cannot bend a
        measured duration.  Simulated with an engine clock that ticks
        monotonically while time.time() is irrelevant to the math."""
        x, _, _ = toy_data
        engine, tracer, _ = traced_engine(fitted)
        before = time.monotonic()
        engine.submit(x[0])
        engine.flush()
        elapsed_ms = (time.monotonic() - before) * 1e3
        (record,) = tracer.drain()
        assert 0.0 <= record["total_ms"] <= elapsed_ms + 1.0
