"""Tenant directory, weighted priority drain, caps, and shedding."""

from dataclasses import dataclass

import pytest

from repro.serving.gateway.tenants import (
    AdmissionQueue,
    SLOClass,
    Tenant,
    TenantDirectory,
    TokenBucket,
    default_classes,
)


@dataclass
class _Request:
    tenant: Tenant
    tag: str = ""


def _directory() -> TenantDirectory:
    return TenantDirectory(assignments={"vip": "premium", "bulk": "batch"})


class TestSLOClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOClass("x", priority=0, weight=0)
        with pytest.raises(ValueError):
            SLOClass("x", priority=0, max_in_flight=0)
        with pytest.raises(ValueError):
            SLOClass("x", priority=0, slo_ms=-1.0)

    def test_default_tiers(self):
        classes = default_classes()
        assert classes["premium"].priority < classes["batch"].priority
        assert classes["batch"].sheddable and not classes["premium"].sheddable


class TestTenantDirectory:
    def test_assignment_and_default(self):
        directory = _directory()
        assert directory.resolve("vip").slo_class.name == "premium"
        assert directory.resolve("bulk").slo_class.name == "batch"
        assert directory.resolve("stranger").slo_class.name == "standard"

    def test_resolve_is_stable(self):
        directory = _directory()
        assert directory.resolve("vip") is directory.resolve("vip")

    def test_unknown_tenants_rejectable(self):
        directory = TenantDirectory(
            assignments={"vip": "premium"}, default_class=None
        )
        assert directory.resolve("vip") is not None
        assert directory.resolve("stranger") is None

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="undefined SLO classes"):
            TenantDirectory(assignments={"a": "platinum"})
        with pytest.raises(ValueError, match="default_class"):
            TenantDirectory(default_class="platinum")

    def test_from_config_merges_over_stock_tiers(self):
        directory = TenantDirectory.from_config(
            {
                "classes": {
                    "premium": {"slo_ms": 20.0},
                    "free": {"priority": 9, "sheddable": True, "slo_ms": None},
                },
                "tenants": {"d7": "premium", "guest": "free"},
                "default_class": "batch",
            }
        )
        assert directory.resolve("d7").slo_class.slo_ms == 20.0
        assert directory.resolve("d7").slo_class.weight == 4  # stock kept
        assert directory.resolve("guest").slo_class.sheddable
        assert directory.resolve("nobody").slo_class.name == "batch"

    def test_snapshot_counts(self):
        directory = _directory()
        directory.resolve("vip").stats.delivered += 2
        snap = directory.snapshot()
        assert snap["vip"]["slo_class"] == "premium"
        assert snap["vip"]["delivered"] == 2


class TestAdmissionQueue:
    def _room(self, directory, queue_limit=4):
        return AdmissionQueue(directory.classes.values(), queue_limit=queue_limit)

    def test_take_front_class_is_class_pure(self):
        """One drain cycle returns requests of a single class — the most
        important non-empty one — so a premium batch never carries
        batch-class riders through the vectorised call."""
        directory = _directory()
        room = self._room(directory, queue_limit=64)
        vip, bulk = directory.resolve("vip"), directory.resolve("bulk")
        for i in range(3):
            room.offer(_Request(bulk, f"b{i}"))
        for i in range(2):
            room.offer(_Request(vip, f"p{i}"))
        assert [r.tag for r in room.take_front_class(8)] == ["p0", "p1"]
        assert [r.tag for r in room.take_front_class(2)] == ["b0", "b1"]
        assert [r.tag for r in room.take_front_class(8)] == ["b2"]
        assert room.take_front_class(8) == []
        assert room.take_front_class(0) == []

    def test_weights_apportion_drain_cycles(self):
        """Backlogged classes share drain cycles ``weight_hi:weight_lo``:
        premium (weight 4) gets 4 consecutive class-pure batches, then
        batch (weight 1) gets one — no starvation, no mixed batches."""
        directory = _directory()
        room = self._room(directory, queue_limit=512)
        vip, bulk = directory.resolve("vip"), directory.resolve("bulk")
        for i in range(12):
            room.offer(_Request(vip, f"p{i}"))
        for i in range(4):
            room.offer(_Request(bulk, f"b{i}"))
        cycles = []
        while True:
            batch = room.take_front_class(2)  # 2 requests per cycle
            if not batch:
                break
            classes = {request.tenant.slo_class.name for request in batch}
            assert len(classes) == 1  # always class-pure
            cycles.append(classes.pop())
        # Rounds of 4 premium cycles + 1 batch cycle; premium drains
        # first within each round.
        assert cycles == [
            "premium", "premium", "premium", "premium", "batch",
            "premium", "premium", "batch",
        ]

    def test_take_front_class_respects_budget(self):
        directory = _directory()
        room = self._room(directory, queue_limit=64)
        for i in range(5):
            room.offer(_Request(directory.resolve("vip"), f"p{i}"))
        assert len(room.take_front_class(2)) == 2
        assert len(room) == 3

    def test_in_flight_cap_rejects_with_backpressure(self):
        directory = TenantDirectory(
            classes={"tiny": SLOClass("tiny", priority=0, max_in_flight=2)},
            default_class="tiny",
        )
        room = AdmissionQueue(directory.classes.values(), queue_limit=64)
        tenant = directory.resolve("t")
        assert room.offer(_Request(tenant))[0]
        assert room.offer(_Request(tenant))[0]
        admitted, code, victims = room.offer(_Request(tenant))
        assert not admitted and code == "over_capacity" and victims == []
        assert tenant.stats.rejected == 1

    def test_full_room_sheds_oldest_batch_first(self):
        directory = _directory()
        room = self._room(directory, queue_limit=4)
        bulk, vip = directory.resolve("bulk"), directory.resolve("vip")
        for i in range(4):
            assert room.offer(_Request(bulk, f"b{i}"))[0]
        admitted, code, victims = room.offer(_Request(vip, "p0"))
        assert admitted and code is None
        assert [victim.tag for victim in victims] == ["b0"]  # oldest batch
        assert bulk.stats.shed == 1 and bulk.stats.in_flight == 3
        assert vip.stats.in_flight == 1

    def test_batch_arrival_into_full_premium_room_is_shed_itself(self):
        directory = _directory()
        room = self._room(directory, queue_limit=4)
        vip, bulk = directory.resolve("vip"), directory.resolve("bulk")
        for i in range(4):
            assert room.offer(_Request(vip, f"p{i}"))[0]
        admitted, code, victims = room.offer(_Request(bulk, "b0"))
        assert not admitted and code == "shed" and victims == []
        assert bulk.stats.shed == 1
        assert vip.stats.in_flight == 4  # premium seats untouched

    def test_premium_arrival_into_full_premium_room_gets_queue_full(self):
        directory = _directory()
        room = self._room(directory, queue_limit=4)
        vip = directory.resolve("vip")
        for i in range(4):
            assert room.offer(_Request(vip, f"p{i}"))[0]
        admitted, code, _ = room.offer(_Request(vip, "p4"))
        assert not admitted and code == "queue_full"
        assert vip.stats.rejected == 1

    def test_rate_limit_rejects_ahead_of_in_flight_caps(self):
        """An empty bucket rejects with the distinct ``rate_limited``
        code before capacity is even consulted — rate is a contract on
        offered load, not on queue room."""
        directory = TenantDirectory(
            classes={
                "metered": SLOClass(
                    "metered", priority=0, max_in_flight=64,
                    rate_per_s=10.0, burst=2.0,
                )
            },
            default_class="metered",
        )
        room = AdmissionQueue(directory.classes.values(), queue_limit=64)
        tenant = directory.resolve("edge-1")
        assert room.offer(_Request(tenant, "a"), now=0.0)[0]
        assert room.offer(_Request(tenant, "b"), now=0.0)[0]  # burst spent
        admitted, code, victims = room.offer(_Request(tenant, "c"), now=0.0)
        assert not admitted and code == "rate_limited" and victims == []
        assert tenant.stats.rate_limited == 1
        assert tenant.stats.rejected == 0  # distinct from capacity codes
        assert tenant.stats.in_flight == 2  # nothing burned by the reject
        # 10 tokens/s: 0.1 s buys exactly one more admission.
        assert room.offer(_Request(tenant, "d"), now=0.1)[0]
        assert not room.offer(_Request(tenant, "e"), now=0.1)[0]

    def test_rate_limited_tenants_are_isolated(self):
        """Buckets are per tenant: one tenant blowing its rate does not
        debit a well-behaved neighbour in the same class."""
        directory = TenantDirectory(
            classes={
                "metered": SLOClass("metered", priority=0, rate_per_s=5.0, burst=1.0)
            },
            default_class="metered",
        )
        room = AdmissionQueue(directory.classes.values(), queue_limit=64)
        noisy, quiet = directory.resolve("noisy"), directory.resolve("quiet")
        assert room.offer(_Request(noisy, "n0"), now=0.0)[0]
        assert room.offer(_Request(noisy, "n1"), now=0.0)[0] is False
        assert room.offer(_Request(quiet, "q0"), now=0.0)[0]

    def test_unmetered_class_has_no_bucket(self):
        directory = _directory()
        assert directory.resolve("vip").bucket is None

    def test_from_config_rate_fields(self):
        directory = TenantDirectory.from_config(
            {
                "classes": {
                    "batch": {"rate_per_s": 50, "burst": 20},
                    "free": {"priority": 9, "rate_per_s": 2},
                },
                "tenants": {"bulk": "batch", "guest": "free"},
            }
        )
        bulk = directory.resolve("bulk")
        assert bulk.slo_class.rate_per_s == 50 and bulk.slo_class.burst == 20
        assert bulk.bucket is not None and bulk.bucket.burst == 20
        # burst defaults to one second's worth of tokens (floor 1).
        assert directory.resolve("guest").bucket.burst == 2.0
        assert directory.resolve("bulk").slo_class.sheddable  # stock kept

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5)
        with pytest.raises(ValueError):
            SLOClass("x", priority=0, rate_per_s=-1.0)
        with pytest.raises(ValueError):
            SLOClass("x", priority=0, burst=4.0)  # burst without a rate

    def test_bucket_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(100.0)  # long idle refills to burst, not more
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_bucket_ignores_clock_regression(self):
        """A request timestamped earlier than the last one (reordered
        arrivals) must not mint negative refill."""
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)  # earlier timestamp: no refill
        assert bucket.try_take(11.0)

    def test_purge_releases_in_flight(self):
        directory = _directory()
        room = self._room(directory, queue_limit=64)
        vip = directory.resolve("vip")
        room.offer(_Request(vip, "keep"))
        room.offer(_Request(vip, "drop"))
        removed = room.purge(lambda request: request.tag == "drop")
        assert [request.tag for request in removed] == ["drop"]
        assert vip.stats.in_flight == 1
        assert [request.tag for request in room.take_front_class(10)] == ["keep"]
