"""Client connect behaviour: timeouts, retries, capped backoff.

A router redialling a dead shard must fail in bounded time (connect
timeout), survive a shard that is *about* to come up (retries with
capped exponential backoff), and never retry a server-side rejection.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro.serving.gateway import (
    AsyncGatewayClient,
    BackgroundGateway,
    GatewayClient,
    GatewayError,
    GatewayServer,
    TenantDirectory,
    connect_backoff,
)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackoffSchedule:
    def test_caps_exponential_growth(self):
        delays = [connect_backoff(attempt) for attempt in range(8)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[-1] == 2.0  # capped, not 6.4
        assert delays == sorted(delays)

    def test_custom_base_and_cap(self):
        assert connect_backoff(0, base=0.5, cap=3.0) == 0.5
        assert connect_backoff(10, base=0.5, cap=3.0) == 3.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            connect_backoff(-1)


class TestSyncConnect:
    def test_refused_port_fails_without_retries(self):
        port = _free_port()
        started = time.monotonic()
        with pytest.raises(OSError):
            GatewayClient("127.0.0.1", port, connect_timeout_s=1.0)
        assert time.monotonic() - started < 5.0

    def test_silent_listener_times_out_on_handshake(self):
        # A listener that accepts but never speaks must not hang the
        # constructor: the connect deadline covers the HELLO reply too.
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            host, port = listener.getsockname()
            started = time.monotonic()
            with pytest.raises(OSError):
                GatewayClient(host, port, connect_timeout_s=0.3)
            assert time.monotonic() - started < 3.0

    def test_retries_bridge_a_late_listener(self, fitted):
        port = _free_port()
        gateway = BackgroundGateway(GatewayServer(fitted), port=port)

        def _start_late() -> None:
            time.sleep(0.3)
            gateway.start()

        opener = threading.Thread(target=_start_late, daemon=True)
        opener.start()
        try:
            client = GatewayClient(
                "127.0.0.1",
                port,
                connect_retries=10,
                retry_backoff_s=0.05,
                connect_timeout_s=2.0,
            )
            client.close()
        finally:
            opener.join(timeout=5.0)
            gateway.stop()

    def test_server_rejection_is_not_retried(self, fitted):
        # ERROR frames (here: closed tenant directory) raise immediately
        # even with a retry budget — only transport failures retry.
        tenants = TenantDirectory(
            assignments={"vip": "premium"}, default_class=None
        )
        server = GatewayServer(fitted, tenants=tenants)
        with BackgroundGateway(server) as (host, port):
            started = time.monotonic()
            with pytest.raises(GatewayError):
                GatewayClient(
                    host, port, tenant="stranger",
                    connect_retries=10, retry_backoff_s=0.5,
                )
            assert time.monotonic() - started < 2.0  # no backoff sleeps


class TestAsyncConnect:
    def test_refused_port_fails_without_retries(self):
        port = _free_port()

        async def run():
            with pytest.raises((ConnectionError, OSError)):
                await AsyncGatewayClient.connect(
                    "127.0.0.1", port, connect_timeout_s=1.0
                )

        asyncio.run(run())

    def test_silent_listener_times_out(self):
        async def run():
            async def mute(_reader, writer):
                await asyncio.sleep(30)
                writer.close()

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(ConnectionError) as excinfo:
                    await AsyncGatewayClient.connect(
                        host, port, connect_timeout_s=0.3
                    )
                assert "timed out" in str(excinfo.value)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_retries_bridge_a_late_listener(self, fitted):
        port = _free_port()
        gateway = BackgroundGateway(GatewayServer(fitted), port=port)

        async def run():
            loop = asyncio.get_running_loop()
            handle = loop.call_later(
                0.3, lambda: threading.Thread(
                    target=gateway.start, daemon=True
                ).start()
            )
            try:
                client = await AsyncGatewayClient.connect(
                    "127.0.0.1",
                    port,
                    connect_retries=10,
                    retry_backoff_s=0.05,
                    connect_timeout_s=2.0,
                )
                await client.aclose()
            finally:
                handle.cancel()

        try:
            asyncio.run(run())
        finally:
            gateway.stop()

    def test_rejection_is_not_retried(self, fitted):
        tenants = TenantDirectory(
            assignments={"vip": "premium"}, default_class=None
        )
        server = GatewayServer(fitted, tenants=tenants)

        async def run(host, port):
            started = time.monotonic()
            with pytest.raises(GatewayError):
                await AsyncGatewayClient.connect(
                    host, port, tenant="stranger",
                    connect_retries=10, retry_backoff_s=0.5,
                )
            assert time.monotonic() - started < 2.0

        with BackgroundGateway(server) as (host, port):
            asyncio.run(run(host, port))
