"""Registry-backed hot model reload: end-to-end equivalence guarantees.

The protocol under test (ISSUE 2 tentpole): a checkpoint overwritten on
disk mid-serve is picked up via ``ModelRegistry.load(..., on_change=
engine.swap_system)`` — no pending ticket is dropped, every result is
produced by exactly one set of weights (old ones for requests that were
pending at swap time), and the ``model_version`` tag on
:class:`SampleResult` makes the switch observable.
"""

import os

import numpy as np

from repro.serving import InferenceEngine, ModelRegistry, StreamHub


def _overwrite_checkpoint(system, directory) -> None:
    """Stand in for another process's retrain landing on disk."""
    ModelRegistry().save(system, directory)
    manifest = directory / "manifest.json"
    stat = manifest.stat()
    # Guard against both saves sharing a filesystem timestamp tick.
    os.utime(manifest, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestHotReloadEquivalence:
    def test_mid_serve_swap_preserves_pending_and_versions(
        self, fitted, fitted_b, toy_data, tmp_path
    ):
        x, _, _ = toy_data
        checkpoint = tmp_path / "model"
        registry = ModelRegistry()
        registry.save(fitted, checkpoint)
        engine = InferenceEngine(registry.load(checkpoint), max_batch_size=64)

        pending = [engine.submit(sample) for sample in x[:6]]
        _overwrite_checkpoint(fitted_b, checkpoint)
        registry.load(checkpoint, on_change=engine.swap_system)

        # Requests pending at swap time were flushed on the old weights.
        assert all(t.done and not t.cancelled for t in pending)
        for sample, ticket in zip(x[:6], pending):
            result = ticket.result()
            assert result.model_version == 0
            reference = fitted.predict(sample[None, ...])
            assert np.array_equal(result.gesture_probs, reference.gesture_probs[0])
            assert np.array_equal(result.user_probs, reference.user_probs[0])

        # Requests submitted after the swap run on the new weights.
        after = [engine.submit(sample) for sample in x[:6]]
        engine.flush()
        for sample, ticket in zip(x[:6], after):
            result = ticket.result()
            assert result.model_version == 1
            reference = fitted_b.predict(sample[None, ...])
            assert np.array_equal(result.gesture_probs, reference.gesture_probs[0])
            assert np.array_equal(result.user_probs, reference.user_probs[0])

        assert engine.stats.swaps == 1
        assert engine.system is not fitted  # really the reloaded object

        # Sanity: the two checkpoints genuinely differ, so the version
        # tag tracks an observable change, not a relabelling.
        a = fitted.predict(x[:6])
        b = fitted_b.predict(x[:6])
        assert not np.array_equal(a.user_probs, b.user_probs)

    def test_unchanged_checkpoint_never_swaps(self, fitted, tmp_path):
        checkpoint = tmp_path / "model"
        registry = ModelRegistry()
        registry.save(fitted, checkpoint)
        engine = InferenceEngine(registry.load(checkpoint))
        for _ in range(3):  # the serve loop's periodic staleness check
            registry.load(checkpoint, on_change=engine.swap_system)
        assert engine.model_version == 0
        assert engine.stats.swaps == 0

    def test_hub_streams_ride_through_a_swap(self, fitted, tmp_path):
        """A hub serving deferred spans keeps every event across a swap;
        a swapped-in *identical* checkpoint leaves events byte-identical
        to a swap-free run."""
        from tests.serving.test_hub import _gesture_stream

        checkpoint = tmp_path / "model"
        registry = ModelRegistry()
        registry.save(fitted, checkpoint)

        frames = _gesture_stream(700, gestures=2)

        def run(swap_at: int | None):
            local = ModelRegistry()
            engine = InferenceEngine(local.load(checkpoint), max_batch_size=64)
            hub = StreamHub(engine=engine)
            hub.open_stream("s", num_points=12, seed=7)
            events = []
            for i, frame in enumerate(frames):
                events.extend(hub.push_round({"s": frame}))
                if swap_at is not None and i == swap_at:
                    _overwrite_checkpoint(fitted, checkpoint)  # same weights
                    local.load(checkpoint, on_change=engine.swap_system)
            events.extend(hub.flush_streams())
            return hub, engine, events

        _, _, baseline = run(swap_at=None)
        hub, engine, swapped = run(swap_at=len(frames) // 2)
        assert engine.model_version == 1  # the swap really happened
        assert hub.pop_errors() == []
        assert len(swapped) == len(baseline) > 0
        for a, b in zip(swapped, baseline):
            assert a.event.gesture == b.event.gesture
            assert a.event.gesture_confidence == b.event.gesture_confidence
            assert np.array_equal(a.event.user_probs, b.event.user_probs)
