"""StreamHub: multi-stream serving equivalence and determinism."""

import numpy as np
import pytest

from repro.core import GesturePrintRuntime, MultiUserRuntime
from repro.preprocessing.multiuser import SeparatorParams
from repro.radar import Frame
from repro.serving import StreamHub, derive_stream_seed


def _person_frame(rng, center_x, count, spread=0.15):
    points = np.zeros((count, 5))
    points[:, 0] = rng.normal(center_x, spread, count)
    points[:, 1] = rng.normal(1.5, spread, count)
    points[:, 2] = rng.normal(0.2, spread, count)
    points[:, 3] = rng.normal(0.8, 0.3, count)
    points[:, 4] = rng.uniform(0.5, 2.0, count)
    return Frame(points=points)


def _gesture_stream(seed, gestures=2):
    """A frame stream with ``gestures`` motion bursts separated by idle."""
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(gestures):
        counts = [0] * 12 + [15] * 18 + [0] * 22
        frames.extend(
            _person_frame(rng, 0.0, c) if c else Frame.empty() for c in counts
        )
    return frames


def _assert_events_identical(hub_events, legacy_events):
    assert len(hub_events) == len(legacy_events)
    for a, b in zip(hub_events, legacy_events):
        assert a.start_frame == b.start_frame
        assert a.end_frame == b.end_frame
        assert a.gesture == b.gesture
        assert a.user == b.user
        assert a.gesture_confidence == b.gesture_confidence
        assert a.user_confidence == b.user_confidence
        assert a.num_points == b.num_points
        assert np.array_equal(a.user_probs, b.user_probs)


class TestHubConstruction:
    def test_requires_system_or_engine(self):
        with pytest.raises(ValueError):
            StreamHub()

    def test_duplicate_stream_rejected(self, fitted):
        hub = StreamHub(fitted)
        hub.open_stream("a", num_points=12)
        with pytest.raises(ValueError):
            hub.open_stream("a", num_points=12)

    def test_close_stream(self, fitted):
        hub = StreamHub(fitted)
        hub.open_stream("a", num_points=12)
        hub.close_stream("a")
        assert hub.num_streams == 0

    def test_close_stream_discards_queued_spans(self, fitted):
        """Regression: a closed stream's queued spans must be cancelled
        via engine.discard_pending, not classified and delivered to the
        dead stream's callback."""
        hub = StreamHub(fitted, max_batch_size=64)
        hub.open_stream("doomed", num_points=12)
        hub.open_stream("alive", num_points=12)
        for frame in _gesture_stream(600, gestures=1):
            hub.push("doomed", frame)
        for frame in _gesture_stream(601, gestures=1):
            hub.push("alive", frame)
        hub.runtime("doomed").flush()  # close segments -> spans queued
        hub.runtime("alive").flush()
        pending_before = hub.engine.num_pending
        assert pending_before >= 2
        hub.close_stream("doomed")
        # Only the closed stream's spans were cancelled...
        assert 1 <= hub.engine.num_pending < pending_before
        events = hub.flush_pending()
        # ...and nothing resurrects the dead stream id at delivery time.
        assert events and all(e.stream_id == "alive" for e in events)
        assert hub.pop_errors() == []

    def test_close_stream_on_shared_engine_leaves_other_callers_alone(
        self, fitted, toy_data
    ):
        from repro.serving import InferenceEngine

        x, _, _ = toy_data
        engine = InferenceEngine(fitted, max_batch_size=64)
        hub = StreamHub(engine=engine)
        hub.open_stream("s", num_points=12)
        foreign = engine.submit(x[0], meta="not-a-hub-span")
        hub.close_stream("s")
        assert not foreign.cancelled
        engine.flush()
        assert foreign.done

    def test_derived_seeds_are_stable_and_distinct(self):
        assert derive_stream_seed(0, "a") == derive_stream_seed(0, "a")
        assert derive_stream_seed(0, "a") != derive_stream_seed(0, "b")
        assert derive_stream_seed(0, "a") != derive_stream_seed(1, "a")


class TestBatchedEquivalence:
    """Tentpole guarantee: hub streams emit byte-identical events to
    standalone runtimes fed the same frames with the same seed."""

    def test_hub_matches_legacy_per_event_path(self, fitted):
        streams = {f"s{i}": _gesture_stream(100 + i) for i in range(6)}

        legacy = {}
        for stream_id, frames in streams.items():
            runtime = GesturePrintRuntime(fitted, num_points=12, seed=7)
            for frame in frames:
                runtime.push_frame(frame)
            runtime.flush()
            legacy[stream_id] = runtime.events

        hub = StreamHub(fitted, max_batch_size=32)
        for stream_id in streams:
            hub.open_stream(stream_id, num_points=12, seed=7)
        rounds = max(len(frames) for frames in streams.values())
        for i in range(rounds):
            hub.push_round({
                sid: frames[i] for sid, frames in streams.items() if i < len(frames)
            })
        hub.flush_streams()

        for stream_id in streams:
            _assert_events_identical(hub.events(stream_id), legacy[stream_id])
        # And the events really were micro-batched, not served one by one.
        assert hub.engine.stats.batches < hub.engine.stats.requests

    def test_multi_user_stream_matches_standalone_runtime(self, fitted):
        rng = np.random.default_rng(5)
        schedule = (
            [((-1.5, 2), (1.5, 2))] * 12
            + [((-1.5, 12), (1.5, 12))] * 20
            + [((-1.5, 2), (1.5, 2))] * 25
        )
        frames = []
        for left, right in schedule:
            chunks = [
                _person_frame(rng, cx, n).points for cx, n in (left, right) if n > 0
            ]
            frames.append(Frame(points=np.vstack(chunks)) if chunks else Frame.empty())

        params = SeparatorParams(
            cluster_eps_m=0.5, gate_radius_m=0.7, max_missed_frames=45
        )
        legacy = MultiUserRuntime(
            fitted, num_points=12, seed=3, separator_params=params
        )
        for frame in frames:
            legacy.push_frame(frame)
        legacy.flush()

        hub = StreamHub(fitted)
        hub.open_stream(
            "scene", multi_user=True, num_points=12, seed=3, separator_params=params
        )
        for frame in frames:
            hub.push_round({"scene": frame})
        hub.flush_streams()

        hub_events = hub.events("scene")
        assert len(hub_events) == len(legacy.events) > 0
        for a, b in zip(hub_events, legacy.events):
            assert a.track_id == b.track_id
            _assert_events_identical([a.event], [b.event])


class _FailOnce:
    """System wrapper whose next predict raises, then delegates."""

    def __init__(self, system):
        self._system = system
        self.fails_left = 1

    def __getattr__(self, name):
        return getattr(self._system, name)

    def predict(self, batch):
        if self.fails_left:
            self.fails_left -= 1
            raise RuntimeError("transient backend failure")
        return self._system.predict(batch)


class TestFaultContainment:
    """One poison span must not strand other streams' delivered events."""

    def test_push_round_unknown_stream_is_atomic(self, fitted):
        """All ids are validated before any frame is pushed: a typo'd id
        cannot leave the round half-applied."""
        hub = StreamHub(fitted)
        hub.open_stream("a", num_points=12)
        frame = _person_frame(np.random.default_rng(0), 0.0, 10)
        with pytest.raises(KeyError):
            hub.push_round({"a": frame, "ghost": frame})
        assert hub.runtime("a").frames_seen == 0  # nothing consumed

    def test_poison_rider_does_not_strand_delivered_events(self, fitted):
        """A failing group on the shared engine must not make the hub's
        flush raise past the drain — successfully classified events are
        returned, not left invisible in hub._delivered."""
        from repro.serving import InferenceEngine

        engine = InferenceEngine(fitted, max_batch_size=64)
        hub = StreamHub(engine=engine)
        hub.open_stream("solo", num_points=12)
        for frame in _gesture_stream(300, gestures=1):
            hub.push("solo", frame)
        hub.runtime("solo").flush()  # close the gesture -> span queued
        assert engine.num_pending > 0
        engine.submit(np.zeros((0, 8)))  # poison rider from another caller
        events = hub.flush_pending()  # must not raise
        assert len(events) >= 1
        assert [e.stream_id for e in events] == ["solo"] * len(events)
        assert hub.pop_errors() == []  # the hub's own span succeeded

    def test_failed_span_recorded_as_stream_error(self, fitted):
        """When the hub's own span fails, the loss is observable: a
        StreamError names the stream instead of silence."""
        hub = StreamHub(fitted, max_batch_size=64)
        hub.open_stream("solo", num_points=12)
        for frame in _gesture_stream(300, gestures=1):
            hub.push("solo", frame)
        hub.runtime("solo").flush()
        assert hub.engine.num_pending > 0
        hub.engine.system = _FailOnce(hub.engine.system)
        assert hub.flush_pending() == []
        errors = hub.pop_errors()
        assert len(errors) == 1
        assert errors[0].stream_id == "solo"
        assert isinstance(errors[0].error, RuntimeError)
        assert hub.pop_errors() == []  # drained
        # The stream keeps serving after the transient failure.
        for frame in _gesture_stream(301, gestures=1):
            hub.push("solo", frame)
        hub.runtime("solo").flush()
        assert len(hub.flush_pending()) >= 1


class TestSchedulerDrivenHub:
    """With an SLO the hub polls instead of force-flushing per round."""

    def test_huge_slo_defers_across_rounds_then_delivers_identical(self, fitted):
        frames = _gesture_stream(500, gestures=2)
        reference = StreamHub(fitted)
        reference.open_stream("s", num_points=12, seed=7)
        ref_events = []
        for frame in frames:
            ref_events.extend(reference.push_round({"s": frame}))
        ref_events.extend(reference.flush_streams())

        hub = StreamHub(fitted, slo_ms=600_000.0)  # budget never expires
        hub.open_stream("s", num_points=12, seed=7)
        deferred = []
        for frame in frames:
            deferred.extend(hub.push_round({"s": frame}))
        assert deferred == []  # nothing forced a flush mid-stream
        events = hub.flush_streams()
        assert len(events) == len(ref_events) > 0
        _assert_events_identical(
            [e.event for e in events], [e.event for e in ref_events]
        )

    def test_zero_slo_behaves_like_flush_per_round(self, fitted):
        frames = _gesture_stream(500, gestures=2)
        reference = StreamHub(fitted)
        reference.open_stream("s", num_points=12, seed=7)
        hub = StreamHub(fitted, slo_ms=0.0)  # every poll releases the queue
        hub.open_stream("s", num_points=12, seed=7)
        for frame in frames:
            ref_round = reference.push_round({"s": frame})
            slo_round = hub.push_round({"s": frame})
            assert len(ref_round) == len(slo_round)
        _assert_events_identical(
            [e.event for e in hub.flush_streams()],
            [e.event for e in reference.flush_streams()],
        )


class TestDeterminism:
    def test_events_independent_of_open_order(self, fitted):
        streams = {f"s{i}": _gesture_stream(200 + i, gestures=1) for i in range(4)}

        def run(order):
            hub = StreamHub(fitted, base_seed=13)
            for stream_id in order:
                hub.open_stream(stream_id, num_points=12)
            rounds = max(len(frames) for frames in streams.values())
            for i in range(rounds):
                hub.push_round({
                    sid: frames[i]
                    for sid, frames in streams.items()
                    if i < len(frames)
                })
            hub.flush_streams()
            return {sid: hub.events(sid) for sid in streams}

        forward = run(list(streams))
        backward = run(list(reversed(list(streams))))
        for stream_id in streams:
            _assert_events_identical(forward[stream_id], backward[stream_id])

    def test_reset_cancels_pending_spans(self, fitted):
        """Spans submitted before reset must not leak into the new epoch."""
        hub = StreamHub(fitted, max_batch_size=64)
        hub.open_stream("solo", num_points=12)
        # Push a complete gesture but never flush: the span sits queued.
        for frame in _gesture_stream(400, gestures=1):
            hub.push("solo", frame)
        hub.runtime("solo").flush()  # close the segment -> span submitted
        assert hub.engine.num_pending > 0
        hub.reset()
        assert hub.engine.num_pending == 0
        assert hub.flush_pending() == []
        assert hub.events("solo") == []

    def test_push_defers_until_flush(self, fitted):
        hub = StreamHub(fitted, max_batch_size=64)
        hub.open_stream("solo", num_points=12)
        frames = _gesture_stream(300, gestures=1)
        for frame in frames:
            assert hub.push("solo", frame) == []  # queue stays below max_batch
        events = hub.flush_streams()
        assert [e.stream_id for e in events] == ["solo"] * len(events)
        assert hub.events("solo") == [e.event for e in events]
