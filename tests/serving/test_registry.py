"""ModelRegistry: LRU caching, persistence round-trips, memoised fits."""

import numpy as np
import pytest

from repro.core import GesturePrint, GesturePrintConfig, TrainConfig
from repro.serving import ModelRegistry

from tests.serving.conftest import tiny_network, toy_dataset


class TestCacheSemantics:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)

    def test_put_rejects_unfitted(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.put("key", GesturePrint())

    def test_get_miss_returns_none(self):
        registry = ModelRegistry()
        assert registry.get("nope") is None
        assert registry.stats.misses == 1

    def test_put_get_roundtrip_same_object(self, fitted):
        registry = ModelRegistry()
        registry.put("a", fitted)
        assert registry.get("a") is fitted
        assert "a" in registry
        assert len(registry) == 1

    def test_lru_eviction_order(self, fitted):
        registry = ModelRegistry(capacity=2)
        registry.put("a", fitted)
        registry.put("b", fitted)
        registry.get("a")  # refresh: b is now least recently used
        registry.put("c", fitted)
        assert "b" not in registry
        assert registry.keys() == ["a", "c"]
        assert registry.stats.evictions == 1

    def test_evict(self, fitted):
        registry = ModelRegistry()
        registry.put("a", fitted)
        assert registry.evict("a")
        assert not registry.evict("a")


class TestPersistence:
    def test_save_load_roundtrip_identical_predictions(self, fitted, toy_data, tmp_path):
        """A checkpointed system predicts byte-identically after reload."""
        x, _, _ = toy_data
        registry = ModelRegistry()
        registry.save(fitted, tmp_path / "model")
        registry.clear()  # force the disk path
        restored = registry.load(tmp_path / "model")
        assert restored is not fitted
        a = fitted.predict(x[:16])
        b = restored.predict(x[:16])
        assert np.array_equal(a.gesture_probs, b.gesture_probs)
        assert np.array_equal(a.user_probs, b.user_probs)
        assert np.array_equal(a.gesture_pred, b.gesture_pred)
        assert np.array_equal(a.user_pred, b.user_pred)

    def test_load_caches_by_resolved_path(self, fitted, tmp_path):
        registry = ModelRegistry()
        registry.save(fitted, tmp_path / "model")
        registry.clear()
        first = registry.load(tmp_path / "model")
        second = registry.load(tmp_path / "model")
        assert first is second
        assert registry.stats.loads == 1
        assert registry.stats.hits == 1

    def test_load_notices_overwritten_checkpoint(self, fitted, tmp_path):
        """An on-disk overwrite must not be masked by the cache."""
        import os

        registry = ModelRegistry()
        registry.save(fitted, tmp_path / "model")
        first = registry.load(tmp_path / "model")
        # Simulate an external retrain: bump the manifest mtime.
        manifest = tmp_path / "model" / "manifest.json"
        stat = manifest.stat()
        os.utime(manifest, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        second = registry.load(tmp_path / "model")
        assert second is not first  # re-read from disk, not served stale

    def test_load_on_change_fires_only_on_staleness(self, fitted, tmp_path):
        """on_change is the hot-reload hook: silent on first load and on
        warm hits, called with the fresh system when the checkpoint was
        overwritten underneath a cached entry."""
        import os

        registry = ModelRegistry()
        registry.save(fitted, tmp_path / "model")
        registry.clear()
        changes = []
        first = registry.load(tmp_path / "model", on_change=changes.append)
        assert changes == []  # a first load is not a change
        registry.load(tmp_path / "model", on_change=changes.append)
        assert changes == []  # warm hit
        manifest = tmp_path / "model" / "manifest.json"
        stat = manifest.stat()
        os.utime(manifest, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        second = registry.load(tmp_path / "model", on_change=changes.append)
        assert changes == [second]
        assert second is not first


class TestGetOrFit:
    def _factory(self):
        x, g, u = toy_dataset(n_per_cell=6)
        config = GesturePrintConfig(
            network=tiny_network(),
            training=TrainConfig(epochs=2, batch_size=8),
            augment=False,
        )
        return GesturePrint(config).fit(x, g, u)

    def test_fits_once_then_hits_cache(self):
        registry = ModelRegistry()
        calls = []

        def factory():
            calls.append(1)
            return self._factory()

        first = registry.get_or_fit("k", factory)
        second = registry.get_or_fit("k", factory)
        assert first is second
        assert len(calls) == 1
        assert registry.stats.fits == 1

    def test_persists_and_reloads_across_registries(self, tmp_path):
        """The cross-invocation path: fit+save once, later processes load."""
        directory = tmp_path / "ckpt"
        first = ModelRegistry().get_or_fit("k", self._factory, directory=directory)
        fresh = ModelRegistry()
        second = fresh.get_or_fit("k", self._factory, directory=directory)
        assert fresh.stats.fits == 0  # loaded, not re-fitted
        assert fresh.stats.loads == 1
        x, _, _ = toy_dataset(n_per_cell=2)
        assert np.array_equal(
            first.predict(x).user_probs, second.predict(x).user_probs
        )

    def test_factory_returning_unfitted_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.get_or_fit("k", GesturePrint)

    def test_checkpoint_load_records_mtime_for_later_load(self, tmp_path):
        """get_or_fit's checkpoint branch must prime the path-keyed cache
        and mtime, so a later load() of the same directory warm-hits
        instead of always seeing a staleness mismatch and re-reading."""
        directory = tmp_path / "ckpt"
        ModelRegistry().get_or_fit("k", self._factory, directory=directory)

        registry = ModelRegistry()
        system = registry.get_or_fit("k", self._factory, directory=directory)
        assert registry.stats.loads == 1
        again = registry.load(directory)
        assert again is system
        assert registry.stats.loads == 1  # warm hit, weights not re-read

    def test_fit_branch_primes_path_cache_for_later_load(self, tmp_path):
        directory = tmp_path / "ckpt"
        registry = ModelRegistry()
        system = registry.get_or_fit("k", self._factory, directory=directory)
        assert registry.load(directory) is system
        assert registry.stats.loads == 0  # served from cache, never read
