"""Wire protocol: roundtrips, malformed-frame rejection, versioning."""

import numpy as np
import pytest

from repro.serving.gateway import protocol
from repro.serving.gateway.protocol import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    VersionMismatch,
)


def roundtrip(frame: Frame) -> Frame:
    frames = FrameDecoder().feed(protocol.encode_frame(frame))
    assert len(frames) == 1
    return frames[0]


class _FakeResult:
    """Duck-typed SampleResult for result_frame."""

    def __init__(self, rng):
        self.gesture = 2
        self.gesture_probs = rng.dirichlet(np.ones(4))
        self.user = 1
        self.user_probs = rng.dirichlet(np.ones(3))
        self.model_version = 5


class TestRoundtrip:
    """Every frame kind survives encode -> decode bit-for-bit."""

    def test_hello(self):
        frame = roundtrip(protocol.hello_frame(client="edge-7", tenant="acme"))
        assert frame.kind is FrameType.HELLO
        assert frame.meta == {"client": "edge-7", "tenant": "acme"}

    def test_hello_reply(self):
        frame = roundtrip(
            protocol.hello_reply(
                server="gw", tenant="acme", slo_class="premium",
                slo_ms=50.0, model_version=3,
            )
        )
        assert frame.meta["slo_class"] == "premium"
        assert frame.meta["model_version"] == 3
        assert "node_id" not in frame.meta  # absent unless the shard has one

    def test_hello_reply_carries_node_id(self):
        frame = roundtrip(
            protocol.hello_reply(
                server="gw", tenant="acme", slo_class="premium",
                slo_ms=50.0, model_version=3, node_id="shard-2",
            )
        )
        assert frame.meta["node_id"] == "shard-2"

    def test_submit_preserves_float32_cloud_exactly(self):
        sample = np.random.default_rng(0).normal(size=(24, 8))
        frame = roundtrip(protocol.submit_frame(9, sample, deadline_ms=25.0))
        request_id, decoded, deadline_ms = protocol.decode_submit(frame)
        assert request_id == 9
        assert deadline_ms == 25.0
        # float32 on the wire: decoded equals the quantised original.
        assert np.array_equal(decoded, protocol.quantise_sample(sample))
        assert decoded.dtype == np.float64

    def test_submit_without_deadline(self):
        frame = roundtrip(protocol.submit_frame(1, np.zeros((4, 3))))
        _, _, deadline_ms = protocol.decode_submit(frame)
        assert deadline_ms is None

    def test_result_posteriors_are_byte_identical(self):
        result = _FakeResult(np.random.default_rng(1))
        wire = protocol.decode_result(roundtrip(protocol.result_frame(11, result)))
        assert wire.request_id == 11
        assert wire.gesture == 2 and wire.user == 1
        assert wire.model_version == 5
        # float64 posteriors take no precision loss across the wire.
        assert np.array_equal(wire.gesture_probs, result.gesture_probs)
        assert np.array_equal(wire.user_probs, result.user_probs)
        # Cluster stamps default off for single-node serving.
        assert wire.node_id is None
        assert wire.retried is False

    def test_result_cluster_stamps_roundtrip(self):
        result = _FakeResult(np.random.default_rng(2))
        frame = roundtrip(
            protocol.result_frame(7, result, node_id="shard-1", retried=True)
        )
        wire = protocol.decode_result(frame)
        assert wire.request_id == 7
        assert wire.node_id == "shard-1"
        assert wire.retried is True
        assert np.array_equal(wire.gesture_probs, result.gesture_probs)

    def test_error(self):
        frame = roundtrip(protocol.error_frame("shed", "overloaded", request_id=4))
        assert frame.kind is FrameType.ERROR
        assert frame.meta == {"code": "shed", "message": "overloaded", "id": 4}

    def test_stats_request_and_reply(self):
        assert roundtrip(protocol.stats_frame()).meta == {}
        snapshot = {"queued": 3, "tenants": {"a": {"shed": 1}}}
        assert roundtrip(protocol.stats_frame(snapshot)).meta == snapshot

    def test_reload_request_and_reply(self):
        assert roundtrip(protocol.reload_frame()).meta == {}
        reply = roundtrip(protocol.reload_frame(model_version=2, swapped=True))
        assert reply.meta == {"model_version": 2, "swapped": True}


class TestDecoderRobustness:
    def test_truncated_frame_waits_instead_of_erroring(self):
        data = protocol.encode_frame(protocol.stats_frame({"x": 1}))
        decoder = FrameDecoder()
        for cut in range(1, len(data)):
            assert FrameDecoder().feed(data[:cut]) == []
        # Byte-at-a-time delivery still yields exactly one frame.
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i : i + 1]))
        assert len(frames) == 1 and frames[0].meta == {"x": 1}

    def test_two_frames_in_one_chunk(self):
        data = protocol.encode_frame(protocol.stats_frame()) + protocol.encode_frame(
            protocol.error_frame("boom", "x")
        )
        frames = FrameDecoder().feed(data)
        assert [f.kind for f in frames] == [FrameType.STATS, FrameType.ERROR]

    def test_garbage_magic_rejected(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(b"HTTP/1.1 200 OK\r\n\r\n")

    def test_oversized_declared_payload_rejected(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, int(FrameType.STATS),
                             MAX_PAYLOAD + 1)
        with pytest.raises(ProtocolError) as excinfo:
            FrameDecoder().feed(header)
        assert excinfo.value.code == "frame_too_large"

    def test_oversized_encode_rejected(self):
        frame = Frame(FrameType.SUBMIT, {}, b"\0" * (MAX_PAYLOAD + 1))
        with pytest.raises(ProtocolError):
            protocol.encode_frame(frame)

    def test_unknown_frame_kind_rejected(self):
        data = protocol.encode_frame(protocol.stats_frame())
        bad = bytearray(data)
        bad[3] = 250  # kind byte
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            FrameDecoder().feed(bytes(bad))

    def test_malformed_meta_json_rejected(self):
        meta = b"{not json"
        payload = protocol.JSON_LEN.pack(len(meta)) + meta
        data = HEADER.pack(MAGIC, PROTOCOL_VERSION, int(FrameType.STATS),
                           len(payload)) + payload
        with pytest.raises(ProtocolError, match="malformed frame meta"):
            FrameDecoder().feed(data)

    def test_meta_length_overrun_rejected(self):
        payload = protocol.JSON_LEN.pack(999) + b"{}"
        data = HEADER.pack(MAGIC, PROTOCOL_VERSION, int(FrameType.STATS),
                           len(payload)) + payload
        with pytest.raises(ProtocolError, match="overruns"):
            FrameDecoder().feed(data)

    def test_non_object_meta_rejected(self):
        meta = b"[1,2]"
        payload = protocol.JSON_LEN.pack(len(meta)) + meta
        data = HEADER.pack(MAGIC, PROTOCOL_VERSION, int(FrameType.STATS),
                           len(payload)) + payload
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(data)

    def test_submit_body_shape_mismatch_rejected(self):
        frame = roundtrip(protocol.submit_frame(1, np.zeros((4, 3))))
        lying = Frame(frame.kind, {**frame.meta, "shape": [5, 3]}, frame.body)
        with pytest.raises(ProtocolError, match="SUBMIT body"):
            protocol.decode_submit(lying)

    def test_result_body_length_mismatch_rejected(self):
        result = _FakeResult(np.random.default_rng(2))
        frame = roundtrip(protocol.result_frame(1, result))
        lying = Frame(frame.kind, {**frame.meta, "user_classes": 7}, frame.body)
        with pytest.raises(ProtocolError, match="RESULT body"):
            protocol.decode_result(lying)


class TestVersioning:
    def test_version_mismatch_detected_before_payload(self):
        data = protocol.encode_frame(
            protocol.hello_frame(client="c", tenant="t"), version=PROTOCOL_VERSION + 1
        )
        with pytest.raises(VersionMismatch) as excinfo:
            FrameDecoder().feed(data)
        assert excinfo.value.peer_version == PROTOCOL_VERSION + 1
        assert excinfo.value.code == "version_mismatch"

    def test_matching_version_passes(self):
        data = protocol.encode_frame(protocol.hello_frame(client="c", tenant="t"))
        assert FrameDecoder().feed(data)[0].kind is FrameType.HELLO
