"""BatchScheduler: deadline-forced flushes and EWMA batch adaptation."""

import pytest

from repro.serving import BatchScheduler, InferenceEngine


class FakeClock:
    """Deterministic monotonic clock for scheduler/engine tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestValidation:
    def test_negative_slo_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(slo_ms=-1.0)

    def test_bad_batch_bounds_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(min_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(min_batch=8, max_batch=4)

    def test_bad_alpha_and_safety_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            BatchScheduler(safety=1.5)


class TestFlushPolicy:
    def test_empty_queue_never_flushes(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        assert not scheduler.should_flush(0, slack_s=-1.0)

    def test_depth_trigger(self):
        scheduler = BatchScheduler(slo_ms=None, max_batch=4)
        assert not scheduler.should_flush(3)
        assert scheduler.should_flush(4)
        assert scheduler.stats.depth_flushes == 1

    def test_deadline_trigger_before_model_is_fitted(self):
        """With no latency observations, flush exactly when the budget
        (plus the scheduling margin) runs out."""
        scheduler = BatchScheduler(slo_ms=50.0, margin_ms=0.0, max_batch=8)
        assert not scheduler.should_flush(2, slack_s=0.010)
        assert scheduler.should_flush(2, slack_s=0.0)
        assert scheduler.stats.deadline_flushes == 1

    def test_deadline_trigger_accounts_for_predicted_latency(self):
        """Flush early enough that *executing* the batch still meets the
        deadline: slack <= predicted(depth) + margin."""
        scheduler = BatchScheduler(slo_ms=50.0, margin_ms=0.0, max_batch=64)
        scheduler.observe_batch(4, 0.010)  # 2.5 ms / sample
        assert scheduler.predicted_latency_s(3) == pytest.approx(0.0075)
        assert scheduler.should_flush(3, slack_s=0.007)
        assert not scheduler.should_flush(3, slack_s=0.010)

    def test_no_slo_and_no_deadline_means_depth_only(self):
        scheduler = BatchScheduler(slo_ms=None, max_batch=16)
        assert not scheduler.should_flush(15, slack_s=None)


class TestAdaptation:
    def test_limit_tracks_observed_per_sample_latency(self):
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        scheduler.observe_batch(10, 0.020)  # 2 ms/sample -> 80 ms budget / 2
        assert scheduler.batch_limit == 40
        for _ in range(50):  # latency doubles: the limit halves
            scheduler.observe_batch(10, 0.040)
        assert scheduler.batch_limit == 20

    def test_limit_clamps_to_bounds(self):
        scheduler = BatchScheduler(
            slo_ms=10.0, min_batch=2, max_batch=8, safety=0.8
        )
        scheduler.observe_batch(4, 0.200)  # 50 ms/sample: budget fits 0
        assert scheduler.batch_limit == 2
        scheduler = BatchScheduler(slo_ms=1000.0, max_batch=8, safety=0.8)
        scheduler.observe_batch(4, 0.001)
        assert scheduler.batch_limit == 8

    def test_unfitted_model_allows_max_batch(self):
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=24)
        assert scheduler.batch_limit == 24
        assert scheduler.predicted_latency_s(10) == 0.0

    def test_regression_separates_overhead_from_per_sample(self):
        """Varied batch sizes let the model see the fixed overhead, so
        the limit is not throttled by it (overhead 10 ms + 1 ms/sample:
        amortised-only would cap near budget/2.5ms)."""
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        for _ in range(40):
            scheduler.observe_batch(10, 0.020)
            scheduler.observe_batch(20, 0.030)
        overhead, per_sample = scheduler._model()
        assert per_sample == pytest.approx(0.001, rel=0.05)
        assert overhead == pytest.approx(0.010, rel=0.10)
        assert scheduler.batch_limit == 64  # (80 - 10) / 1 -> clamped

    def test_constant_batch_sizes_do_not_death_spiral(self):
        """With near-constant batch sizes the slope is noise; the
        amortised fallback must keep the limit at a stable fixed point
        instead of ratcheting down to min_batch."""
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        # Overhead-heavy truth: exec(B) = 40 ms + 1 ms * B.
        limit_history = []
        batch = 32
        for _ in range(30):
            scheduler.observe_batch(batch, 0.040 + 0.001 * batch)
            batch = scheduler.batch_limit
            limit_history.append(batch)
        assert limit_history[-1] >= 30  # equilibrium exec(B) ~= budget
        assert min(limit_history) > scheduler.min_batch

    def test_queue_p95(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        assert scheduler.queue_p95_ms is None
        for ms in range(1, 101):  # 1..100 ms
            scheduler.record_queue_latency(ms / 1e3)
        assert scheduler.queue_p95_ms == pytest.approx(95.0)

    def test_snapshot_keys(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        scheduler.observe_batch(4, 0.010)
        snap = scheduler.snapshot()
        assert snap["slo_ms"] == 50.0
        assert snap["observed_batches"] == 1
        assert snap["batch_limit"] == scheduler.batch_limit


class TestEngineIntegration:
    def test_poll_deadline_forces_flush(self, fitted, toy_data):
        """A lone queued request is released when its SLO budget runs
        out — the unbounded-wait gap this scheduler exists to close."""
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(
            slo_ms=50.0, max_batch=16, margin_ms=0.0, clock=clock
        )
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        ticket = engine.submit(x[0])
        clock.advance(0.040)
        assert engine.poll() == [] and not ticket.done
        clock.advance(0.011)  # past the 50 ms budget
        flushed = engine.poll()
        assert ticket.done and flushed == [ticket]
        assert scheduler.stats.deadline_flushes == 1

    def test_per_request_deadline_beats_global_slo(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(
            slo_ms=500.0, max_batch=16, margin_ms=0.0, clock=clock
        )
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        urgent = engine.submit(x[0], deadline_ms=10.0)
        clock.advance(0.011)
        engine.poll()
        assert urgent.done  # its own 10 ms budget won, not the 500 ms SLO

    def test_submit_autoflushes_at_adaptive_limit(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=32, clock=clock)
        engine = InferenceEngine(fitted, max_batch_size=32, scheduler=scheduler)
        # Teach the model 20 ms/sample: 80 ms budget -> limit 4.
        scheduler.observe_batch(4, 0.080)
        assert engine.batch_limit == 4
        tickets = [engine.submit(sample) for sample in x[:4]]
        assert all(ticket.done for ticket in tickets)  # 4th submit flushed
        assert scheduler.stats.depth_flushes == 1

    def test_engine_without_scheduler_honours_explicit_deadline(
        self, fitted, toy_data
    ):
        x, _, _ = toy_data
        clock = FakeClock()
        engine = InferenceEngine(fitted, max_batch_size=16, clock=clock)
        ticket = engine.submit(x[0], deadline_ms=20.0)
        assert ticket.arrival == 0.0 and ticket.deadline == pytest.approx(0.020)
        assert engine.poll() == []
        clock.advance(0.021)
        engine.poll()
        assert ticket.done

    def test_queue_latency_recorded_from_arrival(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=16, clock=clock)
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        engine.submit(x[0], arrival=clock.t - 0.030)  # span closed 30 ms ago
        engine.flush()
        assert scheduler.queue_p95_ms == pytest.approx(30.0)
