"""BatchScheduler: deadline-forced flushes and EWMA batch adaptation."""

import pytest

from repro.serving import BatchScheduler, InferenceEngine, request_order


class FakeClock:
    """Deterministic monotonic clock for scheduler/engine tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestValidation:
    def test_negative_slo_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(slo_ms=-1.0)

    def test_bad_batch_bounds_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(min_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(min_batch=8, max_batch=4)

    def test_bad_alpha_and_safety_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            BatchScheduler(safety=1.5)


class TestFlushPolicy:
    def test_empty_queue_never_flushes(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        assert not scheduler.should_flush(0, slack_s=-1.0)

    def test_depth_trigger(self):
        scheduler = BatchScheduler(slo_ms=None, max_batch=4)
        assert not scheduler.should_flush(3)
        assert scheduler.should_flush(4)
        assert scheduler.stats.depth_flushes == 1

    def test_deadline_trigger_before_model_is_fitted(self):
        """With no latency observations, flush exactly when the budget
        (plus the scheduling margin) runs out."""
        scheduler = BatchScheduler(slo_ms=50.0, margin_ms=0.0, max_batch=8)
        assert not scheduler.should_flush(2, slack_s=0.010)
        assert scheduler.should_flush(2, slack_s=0.0)
        assert scheduler.stats.deadline_flushes == 1

    def test_deadline_trigger_accounts_for_predicted_latency(self):
        """Flush early enough that *executing* the batch still meets the
        deadline: slack <= predicted(depth) + margin."""
        scheduler = BatchScheduler(slo_ms=50.0, margin_ms=0.0, max_batch=64)
        scheduler.observe_batch(4, 0.010)  # 2.5 ms / sample
        assert scheduler.predicted_latency_s(3) == pytest.approx(0.0075)
        assert scheduler.should_flush(3, slack_s=0.007)
        assert not scheduler.should_flush(3, slack_s=0.010)

    def test_no_slo_and_no_deadline_means_depth_only(self):
        scheduler = BatchScheduler(slo_ms=None, max_batch=16)
        assert not scheduler.should_flush(15, slack_s=None)


class TestAdaptation:
    def test_limit_tracks_observed_per_sample_latency(self):
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        scheduler.observe_batch(10, 0.020)  # 2 ms/sample -> 80 ms budget / 2
        assert scheduler.batch_limit == 40
        for _ in range(50):  # latency doubles: the limit halves
            scheduler.observe_batch(10, 0.040)
        assert scheduler.batch_limit == 20

    def test_limit_clamps_to_bounds(self):
        scheduler = BatchScheduler(
            slo_ms=10.0, min_batch=2, max_batch=8, safety=0.8
        )
        scheduler.observe_batch(4, 0.200)  # 50 ms/sample: budget fits 0
        assert scheduler.batch_limit == 2
        scheduler = BatchScheduler(slo_ms=1000.0, max_batch=8, safety=0.8)
        scheduler.observe_batch(4, 0.001)
        assert scheduler.batch_limit == 8

    def test_unfitted_model_allows_max_batch(self):
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=24)
        assert scheduler.batch_limit == 24
        assert scheduler.predicted_latency_s(10) == 0.0

    def test_regression_separates_overhead_from_per_sample(self):
        """Varied batch sizes let the model see the fixed overhead, so
        the limit is not throttled by it (overhead 10 ms + 1 ms/sample:
        amortised-only would cap near budget/2.5ms)."""
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        for _ in range(40):
            scheduler.observe_batch(10, 0.020)
            scheduler.observe_batch(20, 0.030)
        overhead, per_sample = scheduler._model()
        assert per_sample == pytest.approx(0.001, rel=0.05)
        assert overhead == pytest.approx(0.010, rel=0.10)
        assert scheduler.batch_limit == 64  # (80 - 10) / 1 -> clamped

    def test_constant_batch_sizes_do_not_death_spiral(self):
        """With near-constant batch sizes the slope is noise; the
        amortised fallback must keep the limit at a stable fixed point
        instead of ratcheting down to min_batch."""
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=64, safety=0.8)
        # Overhead-heavy truth: exec(B) = 40 ms + 1 ms * B.
        limit_history = []
        batch = 32
        for _ in range(30):
            scheduler.observe_batch(batch, 0.040 + 0.001 * batch)
            batch = scheduler.batch_limit
            limit_history.append(batch)
        assert limit_history[-1] >= 30  # equilibrium exec(B) ~= budget
        assert min(limit_history) > scheduler.min_batch

    def test_queue_p95(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        assert scheduler.queue_p95_ms is None
        for ms in range(1, 101):  # 1..100 ms
            scheduler.record_queue_latency(ms / 1e3)
        assert scheduler.queue_p95_ms == pytest.approx(95.0)

    def test_snapshot_keys(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        scheduler.observe_batch(4, 0.010)
        snap = scheduler.snapshot()
        assert snap["slo_ms"] == 50.0
        assert snap["observed_batches"] == 1
        assert snap["batch_limit"] == scheduler.batch_limit
        assert snap["margin_ms"] == pytest.approx(2.0)


class TestMarginController:
    """p95 safety-margin feedback loop (adapt_margin=True)."""

    @staticmethod
    def _controller(**kwargs):
        defaults = dict(
            slo_ms=50.0, adapt_margin=True, adapt_every=16,
            margin_bounds_ms=(0.5, 25.0), margin_ms=2.0,
        )
        defaults.update(kwargs)
        return BatchScheduler(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(margin_bounds_ms=(5.0, 1.0))
        with pytest.raises(ValueError):
            self._controller(margin_target=0.0)
        with pytest.raises(ValueError):
            self._controller(adapt_every=0)

    def test_breached_p95_widens_margin(self):
        scheduler = self._controller()
        for _ in range(16):
            scheduler.record_queue_latency(0.060)  # 60 ms > 50 ms SLO
        assert scheduler.margin_s == pytest.approx(0.003)  # 2 ms * 1.5
        assert scheduler.stats.margin_widened == 1

    def test_comfortable_p95_narrows_margin(self):
        scheduler = self._controller()
        for _ in range(16):
            scheduler.record_queue_latency(0.010)  # far below 0.8 * SLO
        assert scheduler.margin_s == pytest.approx(0.0017)  # 2 ms * 0.85
        assert scheduler.stats.margin_narrowed == 1

    def test_dead_band_leaves_margin_alone(self):
        scheduler = self._controller()
        for _ in range(48):
            scheduler.record_queue_latency(0.045)  # inside [0.8*SLO, SLO]
        assert scheduler.margin_s == pytest.approx(0.002)
        assert scheduler.stats.margin_widened == 0
        assert scheduler.stats.margin_narrowed == 0

    def test_margin_clamped_to_bounds(self):
        scheduler = self._controller(margin_bounds_ms=(1.0, 6.0))
        for _ in range(16 * 10):  # ten breach decisions
            scheduler.record_queue_latency(0.200)
        assert scheduler.margin_s == pytest.approx(0.006)  # upper clamp
        scheduler = self._controller(margin_bounds_ms=(1.5, 6.0))
        for _ in range(16 * 10):
            scheduler.record_queue_latency(0.001)
        assert scheduler.margin_s == pytest.approx(0.0015)  # lower clamp

    def test_decisions_are_paced_by_adapt_every(self):
        scheduler = self._controller(adapt_every=32)
        for _ in range(31):
            scheduler.record_queue_latency(0.060)
        assert scheduler.stats.margin_widened == 0  # not yet
        scheduler.record_queue_latency(0.060)
        assert scheduler.stats.margin_widened == 1

    def test_disabled_by_default_and_without_slo(self):
        scheduler = BatchScheduler(slo_ms=50.0)
        for _ in range(200):
            scheduler.record_queue_latency(0.500)
        assert scheduler.margin_s == pytest.approx(0.002)  # untouched
        scheduler = BatchScheduler(slo_ms=None, adapt_margin=True)
        for _ in range(200):
            scheduler.record_queue_latency(0.500)
        assert scheduler.margin_s == pytest.approx(0.002)

    def test_widened_margin_forces_earlier_flushes(self):
        """The control output actually reaches the flush policy — and
        widening escapes even a zero margin (the 0.5 ms seed)."""
        scheduler = self._controller(margin_ms=0.0, margin_bounds_ms=(0.0, 25.0))
        assert not scheduler.should_flush(2, slack_s=0.0006)
        for _ in range(16):
            scheduler.record_queue_latency(0.060)
        assert scheduler.margin_s == pytest.approx(0.00075)  # 0.5 ms * 1.5
        assert scheduler.should_flush(2, slack_s=0.0006)

    def test_recovers_throughput_after_transient_spike(self):
        """Widen on a spike, then creep back down once p95 recovers."""
        scheduler = self._controller(window=64, adapt_every=16)
        for _ in range(64):
            scheduler.record_queue_latency(0.080)  # sustained breach
        widened = scheduler.margin_s
        assert widened > 0.002
        for _ in range(256):
            scheduler.record_queue_latency(0.005)  # calm again
        assert scheduler.margin_s < widened
        assert scheduler.stats.margin_narrowed >= 1


class TestRequestOrder:
    def test_priority_then_deadline_then_arrival(self):
        entries = [
            ("batch-early", request_order(2, None, 0.0)),
            ("premium-late", request_order(0, 5.0, 9.0)),
            ("premium-early", request_order(0, 1.0, 8.0)),
            ("standard", request_order(1, 2.0, 1.0)),
            ("premium-no-deadline", request_order(0, None, 0.5)),
        ]
        ordered = [name for name, key in sorted(entries, key=lambda e: e[1])]
        assert ordered == [
            "premium-early",
            "premium-late",
            "premium-no-deadline",
            "standard",
            "batch-early",
        ]


class TestEngineIntegration:
    def test_poll_deadline_forces_flush(self, fitted, toy_data):
        """A lone queued request is released when its SLO budget runs
        out — the unbounded-wait gap this scheduler exists to close."""
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(
            slo_ms=50.0, max_batch=16, margin_ms=0.0, clock=clock
        )
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        ticket = engine.submit(x[0])
        clock.advance(0.040)
        assert engine.poll() == [] and not ticket.done
        clock.advance(0.011)  # past the 50 ms budget
        flushed = engine.poll()
        assert ticket.done and flushed == [ticket]
        assert scheduler.stats.deadline_flushes == 1

    def test_per_request_deadline_beats_global_slo(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(
            slo_ms=500.0, max_batch=16, margin_ms=0.0, clock=clock
        )
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        urgent = engine.submit(x[0], deadline_ms=10.0)
        clock.advance(0.011)
        engine.poll()
        assert urgent.done  # its own 10 ms budget won, not the 500 ms SLO

    def test_submit_autoflushes_at_adaptive_limit(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(slo_ms=100.0, max_batch=32, clock=clock)
        engine = InferenceEngine(fitted, max_batch_size=32, scheduler=scheduler)
        # Teach the model 20 ms/sample: 80 ms budget -> limit 4.
        scheduler.observe_batch(4, 0.080)
        assert engine.batch_limit == 4
        tickets = [engine.submit(sample) for sample in x[:4]]
        assert all(ticket.done for ticket in tickets)  # 4th submit flushed
        assert scheduler.stats.depth_flushes == 1

    def test_engine_without_scheduler_honours_explicit_deadline(
        self, fitted, toy_data
    ):
        x, _, _ = toy_data
        clock = FakeClock()
        engine = InferenceEngine(fitted, max_batch_size=16, clock=clock)
        ticket = engine.submit(x[0], deadline_ms=20.0)
        assert ticket.arrival == 0.0 and ticket.deadline == pytest.approx(0.020)
        assert engine.poll() == []
        clock.advance(0.021)
        engine.poll()
        assert ticket.done

    def test_queue_latency_recorded_from_arrival(self, fitted, toy_data):
        x, _, _ = toy_data
        clock = FakeClock()
        scheduler = BatchScheduler(slo_ms=50.0, max_batch=16, clock=clock)
        engine = InferenceEngine(fitted, max_batch_size=16, scheduler=scheduler)
        engine.submit(x[0], arrival=clock.t - 0.030)  # span closed 30 ms ago
        engine.flush()
        assert scheduler.queue_p95_ms == pytest.approx(30.0)
