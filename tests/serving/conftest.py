"""Shared fixtures for the serving-layer tests: one tiny fitted system."""

import numpy as np
import pytest

from repro.core import GesturePrint, GesturePrintConfig, TrainConfig
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec

NUM_POINTS = 12
NUM_CHANNELS = 8


def tiny_network() -> GesIDNetConfig:
    return GesIDNetConfig(
        num_points=NUM_POINTS,
        in_feature_channels=NUM_CHANNELS,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )


def toy_dataset(n_per_cell=10, num_gestures=2, num_users=2, seed=0):
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(num_gestures):
        for u in range(num_users):
            for _ in range(n_per_cell):
                x = rng.normal(size=(NUM_POINTS, NUM_CHANNELS))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.5 * u
                x[:, 6] = 0.4 + 0.3 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


@pytest.fixture(scope="session")
def toy_data():
    return toy_dataset()


@pytest.fixture(scope="session")
def fitted(toy_data):
    x, g, u = toy_data
    config = GesturePrintConfig(
        network=tiny_network(),
        training=TrainConfig(epochs=10, batch_size=8, learning_rate=3e-3),
        augment=False,
    )
    return GesturePrint(config).fit(x, g, u)


@pytest.fixture(scope="session")
def fitted_b(toy_data):
    """A second system with different weights (hot-reload tests)."""
    x, g, u = toy_data
    config = GesturePrintConfig(
        network=tiny_network(),
        training=TrainConfig(epochs=4, batch_size=8, learning_rate=3e-3, seed=1),
        augment=False,
    )
    return GesturePrint(config).fit(x, g, u)
