"""HashRing invariants: balance, minimal movement, determinism.

These are the two properties the cluster tier leans on (see
``docs/cluster.md``): tenant shares stay within 1.3x max/min across
4 nodes at 64 vnodes, and a node join/leave only moves the tenants
that node owned.
"""

import pytest

from repro.serving.cluster import EmptyRingError, HashRing

NODES = [f"node-{i}" for i in range(4)]
TENANTS = [f"tenant-{i:04d}" for i in range(2000)]


class TestBalance:
    def test_four_nodes_within_1_3x(self):
        ring = HashRing(NODES, vnodes=64)
        counts = {
            node: len(owned)
            for node, owned in ring.assignments(TENANTS).items()
        }
        assert sum(counts.values()) == len(TENANTS)
        assert min(counts.values()) > 0
        ratio = max(counts.values()) / min(counts.values())
        assert ratio <= 1.3, f"share imbalance {ratio:.3f} ({counts})"

    def test_balance_holds_across_name_sets(self):
        # Balance must not depend on lucky node names.
        for prefix in ("shard", "gw", "replica"):
            ring = HashRing([f"{prefix}-{i}" for i in range(4)], vnodes=64)
            counts = [len(v) for v in ring.assignments(TENANTS).values()]
            assert max(counts) / min(counts) <= 1.3

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"], vnodes=64)
        assert all(ring.owner(t) == "solo" for t in TENANTS[:50])


class TestMovement:
    def test_remove_moves_only_the_dead_nodes_tenants(self):
        ring = HashRing(NODES, vnodes=64)
        before = {t: ring.owner(t) for t in TENANTS}
        assert ring.remove("node-2")
        moved = [t for t in TENANTS if ring.owner(t) != before[t]]
        # Exactly the departed node's tenants move, nobody else.
        assert moved
        assert all(before[t] == "node-2" for t in moved)
        assert len(moved) == sum(1 for t in TENANTS if before[t] == "node-2")

    def test_join_moves_roughly_one_nth(self):
        ring = HashRing(NODES[:3], vnodes=64)
        before = {t: ring.owner(t) for t in TENANTS}
        assert ring.add("node-3")
        moved = [t for t in TENANTS if ring.owner(t) != before[t]]
        # Everything that moved landed on the new node...
        assert all(ring.owner(t) == "node-3" for t in moved)
        # ...and the movement is ~1/4 of the key space, not a reshuffle.
        assert len(moved) <= len(TENANTS) // 2

    def test_heal_restores_original_placement(self):
        ring = HashRing(NODES, vnodes=64)
        before = {t: ring.owner(t) for t in TENANTS}
        ring.remove("node-1")
        ring.add("node-1")
        assert {t: ring.owner(t) for t in TENANTS} == before


class TestDeterminism:
    def test_independent_rings_agree(self):
        # Placement is a pure function of (node set, tenant): two router
        # processes built from the same shard list route identically.
        a = HashRing(NODES, vnodes=64)
        b = HashRing(reversed(NODES), vnodes=64)
        assert all(a.owner(t) == b.owner(t) for t in TENANTS[:200])

    def test_membership_helpers(self):
        ring = HashRing(NODES)
        assert len(ring) == 4
        assert "node-0" in ring
        assert "ghost" not in ring
        assert not ring.add("node-0")
        assert not ring.remove("ghost")
        snap = ring.snapshot()
        assert snap["nodes"] == sorted(NODES)
        assert snap["points"] == snap["vnodes"] * 4

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(EmptyRingError):
            ring.owner("anyone")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing(probes=0)
