"""Tests for the Module/Parameter base machinery."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class _Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(2, 2, rng=np.random.default_rng(0))
        self.weight = Parameter(np.ones(3))
        self.blocks = [Linear(2, 2, rng=np.random.default_rng(1)), ReLU()]

    def forward(self, x):
        return self.inner(x)

    def backward(self, grad):
        return self.inner.backward(grad)


class TestParameter:
    def test_grad_starts_zero(self):
        param = Parameter(np.ones((2, 3)))
        np.testing.assert_array_equal(param.grad, 0.0)
        assert param.shape == (2, 3)

    def test_zero_grad(self):
        param = Parameter(np.ones(4))
        param.grad += 3.0
        param.zero_grad()
        np.testing.assert_array_equal(param.grad, 0.0)


class TestModuleTree:
    def test_parameters_collects_nested_and_lists(self):
        model = _Nested()
        # inner (W, b) + own weight + blocks[0] (W, b) = 5 parameters.
        assert len(model.parameters()) == 5

    def test_named_parameters_paths(self):
        model = _Nested()
        names = {name for name, _ in model.named_parameters()}
        assert "weight" in names
        assert "inner.bias" in names
        assert "blocks.0.weight" in names

    def test_no_duplicate_parameters(self):
        model = _Nested()
        shared = model.inner
        model.alias = shared  # same module twice
        params = model.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_train_eval_recursion(self):
        model = _Nested()
        model.eval()
        assert not model.inner.training
        assert not model.blocks[0].training
        model.train()
        assert model.blocks[0].training

    def test_zero_grad_recursive(self):
        model = _Nested()
        for param in model.parameters():
            param.grad += 1.0
        model.zero_grad()
        for param in model.parameters():
            np.testing.assert_array_equal(param.grad, 0.0)

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward()


class TestNamedParameterStability:
    def test_identical_builds_share_names(self):
        a = Sequential(Linear(2, 3, rng=np.random.default_rng(0)), ReLU())
        b = Sequential(Linear(2, 3, rng=np.random.default_rng(9)), ReLU())
        assert [n for n, _ in a.named_parameters()] == [n for n, _ in b.named_parameters()]
