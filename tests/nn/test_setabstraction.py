"""Tests for multi-scale set abstraction and the global feature extractor."""

import numpy as np
import pytest

from repro.nn import MultiScaleSetAbstraction, ScaleSpec
from repro.nn.setabstraction import GlobalFeatureExtractor


def _block(rng=None, in_channels=2):
    return MultiScaleSetAbstraction(
        num_centers=4,
        in_channels=in_channels,
        scales=[
            ScaleSpec(radius=0.5, max_neighbors=3, mlp_channels=(6,)),
            ScaleSpec(radius=1.0, max_neighbors=4, mlp_channels=(5,)),
        ],
        rng=rng or np.random.default_rng(0),
    )


class TestScaleSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleSpec(radius=0.0, max_neighbors=3, mlp_channels=(4,))
        with pytest.raises(ValueError):
            ScaleSpec(radius=0.5, max_neighbors=0, mlp_channels=(4,))
        with pytest.raises(ValueError):
            ScaleSpec(radius=0.5, max_neighbors=3, mlp_channels=())


class TestMultiScaleSetAbstraction:
    def test_output_shapes(self):
        block = _block()
        rng = np.random.default_rng(1)
        coords = rng.normal(size=(3, 12, 3))
        feats = rng.normal(size=(3, 2, 12))
        centers, out = block(coords, feats)
        assert centers.shape == (3, 4, 3)
        assert out.shape == (3, 11, 4)  # 6 + 5 channels
        assert block.out_channels == 11

    def test_bare_coords_block(self):
        block = MultiScaleSetAbstraction(
            num_centers=2,
            in_channels=0,
            scales=[ScaleSpec(radius=1.0, max_neighbors=2, mlp_channels=(4,))],
            rng=np.random.default_rng(0),
        )
        centers, out = block(np.random.default_rng(1).normal(size=(1, 6, 3)))
        assert out.shape == (1, 4, 2)
        assert block.backward(np.ones_like(out)) is None

    def test_feature_validation(self):
        block = _block()
        coords = np.zeros((1, 6, 3))
        with pytest.raises(ValueError):
            block(coords)  # missing features
        with pytest.raises(ValueError):
            block(coords, np.zeros((1, 3, 6)))  # wrong channels

    def test_centers_are_input_points(self):
        block = _block()
        rng = np.random.default_rng(2)
        coords = rng.normal(size=(1, 10, 3))
        centers, _ = block(coords, rng.normal(size=(1, 2, 10)))
        for center in centers[0]:
            assert any(np.allclose(center, p) for p in coords[0])

    def test_backward_shape(self):
        block = _block()
        rng = np.random.default_rng(3)
        coords = rng.normal(size=(2, 8, 3))
        feats = rng.normal(size=(2, 2, 8))
        _, out = block(coords, feats)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == feats.shape

    def test_feature_gradient_matches_numeric(self):
        block = _block(rng=np.random.default_rng(4))
        block.eval()  # freeze batch-norm stats for clean numerics
        rng = np.random.default_rng(5)
        coords = rng.normal(size=(1, 8, 3))
        feats = rng.normal(size=(1, 2, 8))
        _, out = block(coords, feats)
        grad_out = rng.normal(size=out.shape)
        analytic = block.backward(grad_out)
        eps = 1e-6
        numeric = np.zeros_like(feats)
        flat, nflat = feats.ravel(), numeric.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = (block(coords, feats)[1] * grad_out).sum()
            flat[i] = orig - eps
            down = (block(coords, feats)[1] * grad_out).sum()
            flat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestGlobalFeatureExtractor:
    def test_output_shape(self):
        extractor = GlobalFeatureExtractor(4, (8, 6), rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        out = extractor(rng.normal(size=(3, 7, 3)), rng.normal(size=(3, 4, 7)))
        assert out.shape == (3, 6)

    def test_backward_shape(self):
        extractor = GlobalFeatureExtractor(4, (8,), rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        feats = rng.normal(size=(2, 4, 5))
        out = extractor(rng.normal(size=(2, 5, 3)), feats)
        grad = extractor.backward(np.ones_like(out))
        assert grad.shape == feats.shape

    def test_translation_invariant_given_same_features(self):
        # The extractor centres coords on the centroid, so a pure
        # translation with identical features gives identical output.
        extractor = GlobalFeatureExtractor(2, (6,), rng=np.random.default_rng(0))
        extractor.eval()
        rng = np.random.default_rng(2)
        coords = rng.normal(size=(1, 6, 3))
        feats = rng.normal(size=(1, 2, 6))
        out_a = extractor(coords, feats)
        out_b = extractor(coords + 5.0, feats)
        np.testing.assert_allclose(out_a, out_b)
