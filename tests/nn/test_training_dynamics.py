"""Training-dynamics sanity tests on small synthetic problems.

These guard against silent optimisation bugs (wrong gradient scaling,
broken schedulers) that per-layer gradient checks cannot catch.
"""

import numpy as np
import pytest

from repro.nn import Adam, CrossEntropyLoss, Linear, ReLU, SGD, Sequential, StepLR


def _two_moons(n=120, seed=0):
    """A simple nonlinear binary problem."""
    rng = np.random.default_rng(seed)
    t = rng.uniform(0, np.pi, n)
    labels = rng.integers(0, 2, n)
    x = np.stack(
        [
            np.cos(t) + labels * 1.0 + rng.normal(0, 0.1, n),
            np.sin(t) * (1 - 2 * labels) + rng.normal(0, 0.1, n),
        ],
        axis=1,
    )
    return x, labels


def _train(model, x, y, optimizer, epochs=120):
    loss_fn = CrossEntropyLoss()
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model(x)
        loss_fn(logits, y)
        model.backward(loss_fn.backward())
        optimizer.step()
    return (model(x).argmax(axis=1) == y).mean()


class TestOptimisationDynamics:
    def test_mlp_solves_two_moons_with_adam(self):
        x, y = _two_moons()
        rng = np.random.default_rng(1)
        model = Sequential(Linear(2, 24, rng=rng), ReLU(), Linear(24, 2, rng=rng))
        accuracy = _train(model, x, y, Adam(model.parameters(), lr=0.01))
        assert accuracy > 0.95

    def test_mlp_solves_two_moons_with_sgd_momentum(self):
        x, y = _two_moons(seed=2)
        rng = np.random.default_rng(3)
        model = Sequential(Linear(2, 24, rng=rng), ReLU(), Linear(24, 2, rng=rng))
        accuracy = _train(model, x, y, SGD(model.parameters(), lr=0.1, momentum=0.9))
        assert accuracy > 0.9

    def test_linear_model_cannot_solve_xor(self):
        # Sanity check that the test problems actually need nonlinearity.
        x = np.array([[0.0, 0], [0, 1], [1, 0], [1, 1]] * 20)
        y = np.array([0, 1, 1, 0] * 20)
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(4)))
        accuracy = _train(model, x, y, Adam(model.parameters(), lr=0.05), epochs=200)
        assert accuracy <= 0.8

    def test_scheduler_reduces_final_oscillation(self):
        x, y = _two_moons(seed=5)
        rng = np.random.default_rng(6)
        model = Sequential(Linear(2, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        optimizer = Adam(model.parameters(), lr=0.05)
        scheduler = StepLR(optimizer, step_size=30, gamma=0.2)
        loss_fn = CrossEntropyLoss()
        for _ in range(90):
            optimizer.zero_grad()
            loss_fn(model(x), y)
            model.backward(loss_fn.backward())
            optimizer.step()
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.05 * 0.2**3)
