"""Tests for farthest-point sampling, ball query, and gathering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ball_query, farthest_point_sampling, gather_points, group_points


class TestFarthestPointSampling:
    def test_selects_extremes(self):
        points = np.array([[[0.0, 0, 0], [0.1, 0, 0], [5.0, 0, 0], [5.1, 0, 0]]])
        idx = farthest_point_sampling(points, 2)
        chosen = points[0, idx[0]]
        # One point from each end of the line.
        assert abs(chosen[0, 0] - chosen[1, 0]) > 4.0

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(2, 30, 3))
        a = farthest_point_sampling(points, 8)
        b = farthest_point_sampling(points, 8)
        np.testing.assert_array_equal(a, b)

    def test_unique_when_enough_points(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(1, 50, 3))
        idx = farthest_point_sampling(points, 10)[0]
        assert len(set(idx.tolist())) == 10

    def test_wraps_when_too_few_points(self):
        points = np.zeros((1, 3, 3))
        idx = farthest_point_sampling(points, 7)
        assert idx.shape == (1, 7)
        assert (idx < 3).all()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            farthest_point_sampling(np.zeros((1, 0, 3)), 2)

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            farthest_point_sampling(np.zeros((1, 5, 3)), 0)

    @settings(max_examples=20)
    @given(st.integers(4, 40), st.integers(1, 10))
    def test_indices_in_range(self, n, k):
        rng = np.random.default_rng(n)
        points = rng.normal(size=(2, n, 3))
        idx = farthest_point_sampling(points, k)
        assert idx.shape == (2, k)
        assert (idx >= 0).all() and (idx < n).all()


class TestBallQuery:
    def test_finds_neighbors_within_radius(self):
        points = np.array([[[0.0, 0, 0], [0.1, 0, 0], [9.0, 0, 0]]])
        centers = np.array([[[0.0, 0, 0]]])
        idx = ball_query(points, centers, radius=0.5, max_neighbors=2)
        assert set(idx[0, 0].tolist()) == {0, 1}

    def test_pads_with_closest(self):
        points = np.array([[[0.0, 0, 0], [9.0, 0, 0]]])
        centers = np.array([[[0.0, 0, 0]]])
        idx = ball_query(points, centers, radius=0.5, max_neighbors=4)
        np.testing.assert_array_equal(idx[0, 0], [0, 0, 0, 0])

    def test_empty_ball_falls_back_to_nearest(self):
        points = np.array([[[5.0, 0, 0], [9.0, 0, 0]]])
        centers = np.array([[[0.0, 0, 0]]])
        idx = ball_query(points, centers, radius=0.1, max_neighbors=2)
        assert (idx[0, 0] == 0).all()

    def test_huge_radius_is_knn(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(1, 20, 3))
        centers = points[:, :1]
        idx = ball_query(points, centers, radius=1e9, max_neighbors=5)[0, 0]
        dists = np.linalg.norm(points[0] - points[0, 0], axis=1)
        expected = set(np.argsort(dists)[:5].tolist())
        assert set(idx.tolist()) == expected

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            ball_query(np.zeros((1, 2, 3)), np.zeros((1, 1, 3)), radius=0.0, max_neighbors=1)

    def test_neighbors_sorted_by_distance(self):
        points = np.array([[[3.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]]])
        centers = np.array([[[0.0, 0, 0]]])
        idx = ball_query(points, centers, radius=10.0, max_neighbors=3)
        np.testing.assert_array_equal(idx[0, 0], [1, 2, 0])


class TestGathering:
    def test_gather_points(self):
        points = np.arange(12.0).reshape(1, 4, 3)
        out = gather_points(points, np.array([[2, 0]]))
        np.testing.assert_array_equal(out[0, 0], points[0, 2])
        np.testing.assert_array_equal(out[0, 1], points[0, 0])

    def test_group_points_shape(self):
        points = np.random.default_rng(0).normal(size=(2, 10, 3))
        groups = np.zeros((2, 4, 5), dtype=np.int64)
        out = group_points(points, groups)
        assert out.shape == (2, 4, 5, 3)
