"""Tests for the 2-D convolution stack used by CNN baselines."""

import numpy as np
import pytest

from repro.nn.conv2d import Conv2d, Flatten, MaxPool2d


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(2, 5, kernel_size=3, rng=np.random.default_rng(0))
        assert conv(np.zeros((4, 2, 16, 16))).shape == (4, 5, 14, 14)

    def test_stride(self):
        conv = Conv2d(1, 1, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        assert conv(np.zeros((1, 1, 9, 9))).shape == (1, 1, 4, 4)

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, kernel_size=1, rng=np.random.default_rng(0))
        conv.weight.data = np.array([[1.0]])
        conv.bias.data = np.array([0.0])
        x = np.random.default_rng(1).normal(size=(2, 1, 4, 4))
        np.testing.assert_allclose(conv(x), x)

    def test_known_3x3_sum_kernel(self):
        conv = Conv2d(1, 1, kernel_size=3, rng=np.random.default_rng(0))
        conv.weight.data = np.ones((1, 9))
        conv.bias.data = np.array([0.0])
        x = np.ones((1, 1, 3, 3))
        assert conv(x)[0, 0, 0, 0] == pytest.approx(9.0)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        grad_out = rng.normal(size=(2, 3, 4, 4))
        conv(x)
        analytic = conv.backward(grad_out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        flat, nflat = x.ravel(), numeric.ravel()
        for i in range(0, flat.size, 5):
            orig = flat[i]
            flat[i] = orig + eps
            up = (conv(x) * grad_out).sum()
            flat[i] = orig - eps
            down = (conv(x) * grad_out).sum()
            flat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        mask = numeric != 0
        np.testing.assert_allclose(analytic[mask], numeric[mask], atol=1e-5)

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        conv = Conv2d(1, 2, kernel_size=2, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))
        grad_out = rng.normal(size=(2, 2, 3, 3))
        conv.zero_grad()
        conv(x)
        conv.backward(grad_out)
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        flat = conv.weight.data.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = (conv(x) * grad_out).sum()
            flat[i] = orig - eps
            down = (conv(x) * grad_out).sum()
            flat[i] = orig
            assert analytic.ravel()[i] == pytest.approx((up - down) / (2 * eps), abs=1e-5)


class TestMaxPool2d:
    def test_pooling(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_gradient(self):
        pool = MaxPool2d(2)
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        pool(x)
        grad = pool.backward(np.array([[[[7.0]]]]))
        assert grad[0, 0, 1, 1] == 7.0
        assert grad.sum() == 7.0

    def test_odd_size_trims(self):
        pool = MaxPool2d(2)
        assert pool(np.zeros((1, 1, 5, 5))).shape == (1, 1, 2, 2)


class TestFlatten:
    def test_round_trip(self):
        flat = Flatten()
        x = np.random.default_rng(0).normal(size=(3, 2, 4))
        out = flat(x)
        assert out.shape == (3, 8)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)
