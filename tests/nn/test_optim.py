"""Tests for SGD, Adam, and the step LR schedule."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, StepLR
from repro.nn.module import Parameter


def _quadratic_problem(seed=0):
    """A convex quadratic: loss = 0.5 * ||p - target||^2."""
    rng = np.random.default_rng(seed)
    param = Parameter(rng.normal(size=5))
    target = rng.normal(size=5)

    def step_loss():
        param.zero_grad()
        param.grad += param.data - target
        return 0.5 * float(np.sum((param.data - target) ** 2))

    return param, target, step_loss


class TestSGD:
    def test_plain_step(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        param.grad += np.array([2.0])
        opt.step()
        assert param.data[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        param, target, step_loss = _quadratic_problem()
        opt = SGD([param], lr=0.3)
        for _ in range(100):
            step_loss()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        param_a, target, loss_a = _quadratic_problem(1)
        param_b = Parameter(param_a.data.copy())

        def loss_b():
            param_b.zero_grad()
            param_b.grad += param_b.data - target
            return 0.5 * float(np.sum((param_b.data - target) ** 2))

        plain = SGD([param_a], lr=0.05)
        momentum = SGD([param_b], lr=0.05, momentum=0.9)
        for _ in range(30):
            loss_a()
            plain.step()
            loss_b()
            momentum.step()
        assert np.sum((param_b.data - target) ** 2) < np.sum((param_a.data - target) ** 2)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.step()  # zero gradient, only decay
        assert param.data[0] < 10.0

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param, target, step_loss = _quadratic_problem(2)
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            step_loss()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step has magnitude ~lr.
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.01)
        param.grad += np.array([123.0])
        opt.step()
        assert abs(param.data[0]) == pytest.approx(0.01, rel=1e-5)

    def test_zero_grad_clears(self):
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        param.grad += 5.0
        opt.zero_grad()
        np.testing.assert_array_equal(param.grad, 0.0)


class TestStepLR:
    def test_decays_on_schedule(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_invalid_step_size_raises(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
