"""Shared numerical gradient-checking helper."""


def numeric_param_grads(loss_fn, params, eps: float = 1e-6, stride: int = 1):
    """Central-difference gradients for a sample of parameter entries.

    Returns a list of (name, index, numeric_grad) tuples covering every
    ``stride``-th entry of every parameter.
    """
    results = []
    for name, param in params:
        flat = param.data.ravel()
        for idx in range(0, flat.size, stride):
            original = flat[idx]
            flat[idx] = original + eps
            loss_plus = loss_fn()
            flat[idx] = original - eps
            loss_minus = loss_fn()
            flat[idx] = original
            results.append((name, idx, (loss_plus - loss_minus) / (2.0 * eps)))
    return results


def assert_grads_match(model, loss_and_backward, stride: int = 7, tol: float = 1e-5):
    """Check analytic vs numeric gradients on a subsample of parameters.

    ``loss_and_backward()`` must zero grads, run forward+backward and
    return the scalar loss; it is re-invoked (gradient side effects are
    harmless) for the numeric probes.
    """
    loss_and_backward()
    named = model.named_parameters()
    analytic = {name: param.grad.copy() for name, param in named}

    def pure_loss():
        return loss_and_backward()

    for name, idx, numeric in numeric_param_grads(pure_loss, named, stride=stride):
        ana = analytic[name].ravel()[idx]
        scale = max(1.0, abs(numeric), abs(ana))
        assert abs(numeric - ana) <= tol * scale, (
            f"gradient mismatch at {name}[{idx}]: numeric {numeric}, analytic {ana}"
        )
