"""Tests for dense layers: shapes, semantics, and exact gradients."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Dropout, LeakyReLU, Linear, ReLU, Sequential, Softmax


def _numeric_grad_input(module, x, grad_out, eps=1e-6):
    numeric = np.zeros_like(x)
    flat_x = x.ravel()
    flat_num = numeric.ravel()
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        up = (module(x) * grad_out).sum()
        flat_x[i] = orig - eps
        down = (module(x) * grad_out).sum()
        flat_x[i] = orig
        flat_num[i] = (up - down) / (2 * eps)
    return numeric


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, rng=np.random.default_rng(0))
        assert layer(np.zeros((3, 4))).shape == (3, 7)

    def test_known_computation(self):
        layer = Linear(2, 1, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[2.0, -1.0]])
        layer.bias.data = np.array([0.5])
        out = layer(np.array([[1.0, 3.0]]))
        assert out[0, 0] == pytest.approx(2 - 3 + 0.5)

    def test_bad_shape_raises(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(np.zeros((3, 5)))

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer(x)
        analytic = layer.backward(grad_out)
        numeric = _numeric_grad_input(layer, x, grad_out)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_weight_gradient_accumulates(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer(x)
        layer.backward(np.ones((4, 2)))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestActivations:
    def test_relu_clips_negatives(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_gradient_mask(self):
        layer = ReLU()
        layer(np.array([-1.0, 2.0]))
        grad = layer.backward(np.array([5.0, 5.0]))
        np.testing.assert_array_equal(grad, [0.0, 5.0])

    def test_leaky_relu_negative_slope(self):
        layer = LeakyReLU(0.1)
        out = layer(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(out, [-0.2, 3.0])
        grad = layer.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(grad, [0.1, 1.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = np.random.default_rng(1).normal(size=(8, 8))
        np.testing.assert_array_equal(layer(x), x)

    def test_train_mode_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(np.ones((20, 20)))
        assert (out == 0).any()
        assert (out != 0).any()

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        out = layer(np.ones((200, 200)))
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(np.ones((10, 10)))
        grad = layer.backward(np.ones((10, 10)))
        np.testing.assert_array_equal(grad, out)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalises_batch(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(64, 3))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_three_dim_input(self):
        layer = BatchNorm(4)
        x = np.random.default_rng(1).normal(size=(8, 4, 10))
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-9)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm(2, momentum=1.0)
        x = np.random.default_rng(2).normal(3.0, 2.0, size=(512, 2))
        layer(x)
        layer.eval()
        out = layer(x)
        assert abs(out.mean()) < 0.05

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            BatchNorm(3)(np.zeros((4, 5)))

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        grad_out = rng.normal(size=(6, 3))

        def forward_only(inp):
            saved = (layer.running_mean.copy(), layer.running_var.copy())
            out = layer(inp)
            layer.running_mean, layer.running_var = saved
            return out

        layer(x)
        analytic = layer.backward(grad_out)
        numeric = np.zeros_like(x)
        eps = 1e-6
        flat = x.ravel()
        num_flat = numeric.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = (forward_only(x) * grad_out).sum()
            flat[i] = orig - eps
            down = (forward_only(x) * grad_out).sum()
            flat[i] = orig
            num_flat[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = Softmax()(np.random.default_rng(0).normal(size=(5, 4)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        layer = Softmax()
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(layer(x), layer(x + 100.0))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = Softmax()
        x = rng.normal(size=(3, 4))
        grad_out = rng.normal(size=(3, 4))
        layer(x)
        analytic = layer.backward(grad_out)
        numeric = _numeric_grad_input(layer, x, grad_out)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestSequential:
    def test_composes_forward(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        assert seq(np.zeros((4, 3))).shape == (4, 2)
        assert len(seq) == 3

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5), ReLU())
        seq.eval()
        assert not seq[0].training
        seq.train()
        assert seq[0].training

    def test_parameters_collected(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        assert len(seq.parameters()) == 4
