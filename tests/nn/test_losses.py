"""Tests for cross-entropy loss and softmax probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import CrossEntropyLoss, softmax_probabilities


class TestSoftmaxProbabilities:
    def test_sums_to_one(self):
        probs = softmax_probabilities(np.random.default_rng(0).normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_large_logits_stable(self):
        probs = softmax_probabilities(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_k(self):
        loss = CrossEntropyLoss()
        value = loss(np.zeros((5, 4)), np.arange(5) % 4)
        assert value == pytest.approx(np.log(4.0))

    def test_confident_correct_is_small(self):
        loss = CrossEntropyLoss()
        logits = np.array([[20.0, 0.0], [0.0, 20.0]])
        assert loss(logits, [0, 1]) < 1e-6

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        loss(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        for i in range(logits.size):
            flat = logits.ravel()
            orig = flat[i]
            flat[i] = orig + eps
            up = loss(logits, targets)
            flat[i] = orig - eps
            down = loss(logits, targets)
            flat[i] = orig
            assert analytic.ravel()[i] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_label_smoothing_raises_floor(self):
        plain = CrossEntropyLoss()
        smooth = CrossEntropyLoss(label_smoothing=0.2)
        logits = np.array([[50.0, 0.0]])
        assert smooth(logits, [0]) > plain(logits, [0])

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((1, 2)), [5])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    @settings(max_examples=25)
    @given(st.integers(2, 6), st.integers(1, 12))
    def test_loss_nonnegative(self, num_classes, batch):
        rng = np.random.default_rng(batch)
        logits = rng.normal(size=(batch, num_classes))
        targets = rng.integers(0, num_classes, batch)
        assert CrossEntropyLoss()(logits, targets) >= 0.0
