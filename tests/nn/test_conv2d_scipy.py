"""Conv2d / MaxPool2d cross-checked against scipy and naive loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.signal import correlate2d

from repro.nn.conv2d import Conv2d, MaxPool2d


def _reference_conv(x, weight, bias, kernel, stride):
    """Direct correlate2d implementation of valid-mode convolution."""
    batch, in_ch, h, w = x.shape
    out_ch = weight.shape[0]
    kernels = weight.reshape(out_ch, in_ch, kernel, kernel)
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    out = np.zeros((batch, out_ch, out_h, out_w))
    for b in range(batch):
        for o in range(out_ch):
            acc = np.zeros((h - kernel + 1, w - kernel + 1))
            for c in range(in_ch):
                acc += correlate2d(x[b, c], kernels[o, c], mode="valid")
            out[b, o] = acc[::stride, ::stride] + bias[o]
    return out


class TestConvAgainstScipy:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        in_ch=st.integers(1, 3),
        out_ch=st.integers(1, 4),
        size=st.integers(5, 12),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 3),
    )
    def test_forward_matches_correlate2d(self, seed, in_ch, out_ch, size, kernel, stride):
        if kernel > size:
            kernel = size
        rng = np.random.default_rng(seed)
        layer = Conv2d(in_ch, out_ch, kernel, stride, rng=rng)
        x = rng.normal(size=(2, in_ch, size, size))
        expected = _reference_conv(
            x, layer.weight.data, layer.bias.data, kernel, stride
        )
        np.testing.assert_allclose(layer(x), expected, atol=1e-10)

    def test_conv_is_linear_in_input(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(2, 3, 3, rng=rng)
        layer.bias.data[:] = 0.0
        a = rng.normal(size=(1, 2, 8, 8))
        b = rng.normal(size=(1, 2, 8, 8))
        np.testing.assert_allclose(
            layer(a + 2.0 * b), layer(a) + 2.0 * layer(b), atol=1e-10
        )

    def test_translation_equivariance(self):
        """Shifting the input by the stride shifts the output by one."""
        rng = np.random.default_rng(2)
        layer = Conv2d(1, 2, 3, stride=1, rng=rng)
        x = rng.normal(size=(1, 1, 10, 10))
        shifted = np.roll(x, 1, axis=3)
        out = layer(x)
        out_shifted = layer(shifted)
        np.testing.assert_allclose(out[..., :-2], out_shifted[..., 1:-1], atol=1e-10)


class TestMaxPoolAgainstNaive:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        channels=st.integers(1, 4),
        height=st.integers(2, 11),
        width=st.integers(2, 11),
        pool=st.integers(1, 3),
    )
    def test_forward_matches_naive_loop(self, seed, channels, height, width, pool):
        if pool > min(height, width):
            pool = min(height, width)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, channels, height, width))
        out = MaxPool2d(pool)(x)
        out_h, out_w = height // pool, width // pool
        assert out.shape == (2, channels, out_h, out_w)
        for b in range(2):
            for c in range(channels):
                for i in range(out_h):
                    for j in range(out_w):
                        window = x[
                            b, c, i * pool : (i + 1) * pool, j * pool : (j + 1) * pool
                        ]
                        assert out[b, c, i, j] == window.max()

    def test_pool_gradient_sums_to_upstream(self):
        """Max routing conserves total gradient mass."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 2, 6, 6))
        pool = MaxPool2d(2)
        out = pool(x)
        grad_out = rng.normal(size=out.shape)
        grad_in = pool.backward(grad_out)
        assert grad_in.sum() == pytest.approx(grad_out.sum())

    def test_pool_of_negative_values(self):
        x = -np.ones((1, 1, 4, 4))
        x[0, 0, 1, 1] = -0.5
        out = MaxPool2d(2)(x)
        assert out[0, 0, 0, 0] == -0.5
        assert out[0, 0, 1, 1] == -1.0
