"""Tests for pointwise convolutions, shared MLPs, and point max pooling."""

import numpy as np
import pytest

from repro.nn import Conv1x1, SharedMLP
from repro.nn.conv import MaxPoolPoints


class TestConv1x1:
    def test_shape(self):
        conv = Conv1x1(4, 6, rng=np.random.default_rng(0))
        assert conv(np.zeros((2, 4, 10))).shape == (2, 6, 10)

    def test_equivalent_to_per_point_linear(self):
        rng = np.random.default_rng(1)
        conv = Conv1x1(3, 2, rng=rng)
        x = rng.normal(size=(2, 3, 5))
        out = conv(x)
        for point in range(5):
            expected = conv.weight.data @ x[0, :, point] + conv.bias.data
            np.testing.assert_allclose(out[0, :, point], expected)

    def test_wrong_channels_raises(self):
        conv = Conv1x1(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(np.zeros((2, 4, 10)))

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        conv = Conv1x1(3, 2, rng=rng)
        x = rng.normal(size=(2, 3, 4))
        grad_out = rng.normal(size=(2, 2, 4))
        conv(x)
        analytic = conv.backward(grad_out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        flat, nflat = x.ravel(), numeric.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = (conv(x) * grad_out).sum()
            flat[i] = orig - eps
            down = (conv(x) * grad_out).sum()
            flat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        conv = Conv1x1(2, 2, rng=rng)
        x = rng.normal(size=(3, 2, 4))
        grad_out = rng.normal(size=(3, 2, 4))
        conv.zero_grad()
        conv(x)
        conv.backward(grad_out)
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        for i in range(conv.weight.data.size):
            flat = conv.weight.data.ravel()
            orig = flat[i]
            flat[i] = orig + eps
            up = (conv(x) * grad_out).sum()
            flat[i] = orig - eps
            down = (conv(x) * grad_out).sum()
            flat[i] = orig
            assert analytic.ravel()[i] == pytest.approx((up - down) / (2 * eps), abs=1e-6)


class TestSharedMLP:
    def test_stacking(self):
        mlp = SharedMLP([3, 8, 16], rng=np.random.default_rng(0))
        out = mlp(np.random.default_rng(1).normal(size=(2, 3, 7)))
        assert out.shape == (2, 16, 7)
        assert (out >= 0).all()  # final ReLU

    def test_needs_two_channels(self):
        with pytest.raises(ValueError):
            SharedMLP([4])

    def test_without_batchnorm(self):
        mlp = SharedMLP([3, 4], batch_norm=False, rng=np.random.default_rng(0))
        assert mlp(np.zeros((1, 3, 2))).shape == (1, 4, 2)

    def test_backward_shape(self):
        mlp = SharedMLP([3, 4], rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 5))
        out = mlp(x)
        grad = mlp.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestMaxPoolPoints:
    def test_takes_max(self):
        pool = MaxPoolPoints()
        x = np.array([[[1.0, 5.0, 3.0], [2.0, 0.0, -1.0]]])
        out = pool(x)
        np.testing.assert_array_equal(out, [[5.0, 2.0]])

    def test_backward_routes_to_argmax(self):
        pool = MaxPoolPoints()
        x = np.array([[[1.0, 5.0, 3.0]]])
        pool(x)
        grad = pool.backward(np.array([[2.0]]))
        np.testing.assert_array_equal(grad, [[[0.0, 2.0, 0.0]]])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            MaxPoolPoints()(np.zeros((2, 3)))
