"""Tests for weight save/load round trips."""

import numpy as np
import pytest

from repro.core.gesidnet import GesIDNet, GesIDNetConfig
from repro.nn import Linear, ReLU, Sequential, load_state, save_state
from repro.nn.layers import BatchNorm


def test_round_trip_simple(tmp_path):
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    path = tmp_path / "weights.npz"
    save_state(model, path)
    clone = Sequential(
        Linear(4, 8, rng=np.random.default_rng(99)), ReLU(), Linear(8, 2, rng=np.random.default_rng(98))
    )
    load_state(clone, path)
    x = rng.normal(size=(3, 4))
    np.testing.assert_allclose(model(x), clone(x))


def test_round_trip_includes_batchnorm_buffers(tmp_path):
    model = Sequential(Linear(3, 3, rng=np.random.default_rng(0)), BatchNorm(3))
    model(np.random.default_rng(1).normal(2.0, 1.0, size=(32, 3)))  # update stats
    path = tmp_path / "bn.npz"
    save_state(model, path)
    clone = Sequential(Linear(3, 3, rng=np.random.default_rng(5)), BatchNorm(3))
    load_state(clone, path)
    np.testing.assert_allclose(clone[1].running_mean, model[1].running_mean)
    np.testing.assert_allclose(clone[1].running_var, model[1].running_var)


def test_round_trip_gesidnet(tmp_path):
    cfg = GesIDNetConfig.small()
    model = GesIDNet(4, cfg, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(3, cfg.num_points, 8))
    model(x)  # populate batch-norm stats
    model.eval()
    reference, _ = model(x)
    path = tmp_path / "gesid.npz"
    save_state(model, path)
    clone = GesIDNet(4, cfg, rng=np.random.default_rng(77))
    load_state(clone, path)
    clone.eval()
    restored, _ = clone(x)
    np.testing.assert_allclose(restored, reference)


def test_shape_mismatch_raises(tmp_path):
    model = Sequential(Linear(4, 2, rng=np.random.default_rng(0)))
    path = tmp_path / "w.npz"
    save_state(model, path)
    wrong = Sequential(Linear(4, 3, rng=np.random.default_rng(0)))
    with pytest.raises(ValueError):
        load_state(wrong, path)


def test_missing_parameter_raises(tmp_path):
    small = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
    path = tmp_path / "w.npz"
    save_state(small, path)
    bigger = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), Linear(2, 2, rng=np.random.default_rng(1)))
    with pytest.raises(ValueError):
        load_state(bigger, path)
