"""Tests for weight save/load round trips (.npz and flat mmap arenas)."""

import numpy as np
import pytest

from repro.core.gesidnet import GesIDNet, GesIDNetConfig
from repro.nn import Linear, ReLU, Sequential, load_state, save_state
from repro.nn.layers import BatchNorm
from repro.nn.serialization import load_flat_mmap, pack_flat


def test_round_trip_simple(tmp_path):
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    path = tmp_path / "weights.npz"
    save_state(model, path)
    clone = Sequential(
        Linear(4, 8, rng=np.random.default_rng(99)), ReLU(), Linear(8, 2, rng=np.random.default_rng(98))
    )
    load_state(clone, path)
    x = rng.normal(size=(3, 4))
    np.testing.assert_allclose(model(x), clone(x))


def test_round_trip_includes_batchnorm_buffers(tmp_path):
    model = Sequential(Linear(3, 3, rng=np.random.default_rng(0)), BatchNorm(3))
    model(np.random.default_rng(1).normal(2.0, 1.0, size=(32, 3)))  # update stats
    path = tmp_path / "bn.npz"
    save_state(model, path)
    clone = Sequential(Linear(3, 3, rng=np.random.default_rng(5)), BatchNorm(3))
    load_state(clone, path)
    np.testing.assert_allclose(clone[1].running_mean, model[1].running_mean)
    np.testing.assert_allclose(clone[1].running_var, model[1].running_var)


def test_round_trip_gesidnet(tmp_path):
    cfg = GesIDNetConfig.small()
    model = GesIDNet(4, cfg, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(3, cfg.num_points, 8))
    model(x)  # populate batch-norm stats
    model.eval()
    reference, _ = model(x)
    path = tmp_path / "gesid.npz"
    save_state(model, path)
    clone = GesIDNet(4, cfg, rng=np.random.default_rng(77))
    load_state(clone, path)
    clone.eval()
    restored, _ = clone(x)
    np.testing.assert_allclose(restored, reference)


def test_shape_mismatch_raises(tmp_path):
    model = Sequential(Linear(4, 2, rng=np.random.default_rng(0)))
    path = tmp_path / "w.npz"
    save_state(model, path)
    wrong = Sequential(Linear(4, 3, rng=np.random.default_rng(0)))
    with pytest.raises(ValueError):
        load_state(wrong, path)


def test_missing_parameter_raises(tmp_path):
    small = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
    path = tmp_path / "w.npz"
    save_state(small, path)
    bigger = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), Linear(2, 2, rng=np.random.default_rng(1)))
    with pytest.raises(ValueError):
        load_state(bigger, path)


class TestFlatArena:
    """pack_flat / load_flat_mmap: one contiguous float64 mmap arena."""

    def test_round_trip_byte_identical(self, tmp_path):
        cfg = GesIDNetConfig.small()
        model = GesIDNet(4, cfg, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, cfg.num_points, 8))
        model(x)  # populate batch-norm running stats
        model.eval()
        reference, _ = model(x)
        arena_path = tmp_path / "weights.arena"
        manifest = pack_flat(model, arena_path)
        assert manifest["elements"] > 0
        assert (tmp_path / "weights.arena.json").exists()
        clone = GesIDNet(4, cfg, rng=np.random.default_rng(9))
        load_flat_mmap(clone, arena_path)
        clone.eval()
        restored, _ = clone(x)
        # Bit-exact, not just close: mmap'd weights are the same bytes.
        assert np.array_equal(restored, reference)

    def test_attached_weights_are_readonly_views(self, tmp_path):
        model = Sequential(Linear(4, 8, rng=np.random.default_rng(0)))
        arena_path = tmp_path / "w.arena"
        pack_flat(model, arena_path)
        clone = Sequential(Linear(4, 8, rng=np.random.default_rng(5)))
        arena = load_flat_mmap(clone, arena_path)
        param = clone[0].weight
        assert isinstance(param.data, np.memmap)
        assert np.shares_memory(param.data, arena)
        with pytest.raises((ValueError, OSError)):
            param.data[0, 0] = 1.0  # read-only mapping
        param.grad[:] = 1.0  # gradients stay writable

    def test_buffers_attach_as_views(self, tmp_path):
        model = Sequential(Linear(3, 3, rng=np.random.default_rng(0)), BatchNorm(3))
        model(np.random.default_rng(1).normal(2.0, 1.0, size=(32, 3)))
        arena_path = tmp_path / "bn.arena"
        pack_flat(model, arena_path)
        clone = Sequential(Linear(3, 3, rng=np.random.default_rng(5)), BatchNorm(3))
        arena = load_flat_mmap(clone, arena_path)
        assert np.array_equal(clone[1].running_mean, model[1].running_mean)
        assert np.array_equal(clone[1].running_var, model[1].running_var)
        assert np.shares_memory(clone[1].running_mean, arena)

    def test_shape_mismatch_raises(self, tmp_path):
        model = Sequential(Linear(4, 2, rng=np.random.default_rng(0)))
        arena_path = tmp_path / "w.arena"
        pack_flat(model, arena_path)
        wrong = Sequential(Linear(4, 3, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_flat_mmap(wrong, arena_path)

    def test_missing_parameter_raises(self, tmp_path):
        small = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        arena_path = tmp_path / "w.arena"
        pack_flat(small, arena_path)
        bigger = Sequential(
            Linear(2, 2, rng=np.random.default_rng(0)),
            Linear(2, 2, rng=np.random.default_rng(1)),
        )
        with pytest.raises(ValueError, match="missing parameters"):
            load_flat_mmap(bigger, arena_path)

    def test_shared_arena_array_needs_manifest(self, tmp_path):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        arena_path = tmp_path / "w.arena"
        manifest = pack_flat(model, arena_path)
        arena = np.memmap(arena_path, dtype="<f8", mode="r")
        with pytest.raises(ValueError, match="manifest"):
            load_flat_mmap(model, arena)
        clone = Sequential(Linear(2, 2, rng=np.random.default_rng(7)))
        load_flat_mmap(clone, arena, manifest=manifest)
        assert np.array_equal(clone[0].weight.data, model[0].weight.data)
