"""LSTM: shape contract, state propagation, and exact BPTT gradients."""

import numpy as np
import pytest

from repro.nn.recurrent import LSTM, _sigmoid


@pytest.fixture()
def sequence_batch():
    rng = np.random.default_rng(0)
    return rng.normal(size=(3, 5, 6))


class TestSigmoid:
    def test_matches_reference(self):
        x = np.linspace(-30, 30, 101)
        expected = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(_sigmoid(x), expected, rtol=1e-12)

    def test_extreme_values_do_not_overflow(self):
        out = _sigmoid(np.array([-1e4, 1e4]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)


class TestLSTMForward:
    def test_output_shape(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(1))
        out = lstm(sequence_batch)
        assert out.shape == (3, 5, 4)

    def test_hidden_values_bounded(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(1))
        out = lstm(10.0 * sequence_batch)
        assert np.all(np.abs(out) <= 1.0)  # h = o * tanh(c), both in [-1, 1]

    def test_deterministic(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(lstm(sequence_batch), lstm(sequence_batch))

    def test_prefix_consistency(self, sequence_batch):
        """The hidden state at step t only depends on inputs up to t."""
        lstm = LSTM(6, 4, rng=np.random.default_rng(1))
        full = lstm(sequence_batch)
        prefix = lstm(sequence_batch[:, :3])
        np.testing.assert_allclose(full[:, :3], prefix, atol=1e-12)

    def test_forget_bias_initialised(self):
        lstm = LSTM(6, 4, forget_bias=1.0, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(lstm.bias.data[4:8], np.ones(4))
        assert np.all(lstm.bias.data[:4] == 0.0)
        assert np.all(lstm.bias.data[8:] == 0.0)

    def test_rejects_wrong_rank(self):
        lstm = LSTM(6, 4)
        with pytest.raises(ValueError):
            lstm(np.zeros((3, 6)))

    def test_rejects_wrong_feature_dim(self):
        lstm = LSTM(6, 4)
        with pytest.raises(ValueError):
            lstm(np.zeros((3, 5, 7)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            LSTM(0, 4)
        with pytest.raises(ValueError):
            LSTM(6, -1)


class TestLSTMBackward:
    def test_backward_before_forward_raises(self):
        lstm = LSTM(6, 4)
        with pytest.raises(RuntimeError):
            lstm.backward(np.zeros((3, 5, 4)))

    def test_backward_rejects_wrong_shape(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(1))
        lstm(sequence_batch)
        with pytest.raises(ValueError):
            lstm.backward(np.zeros((3, 5, 3)))

    def test_parameter_gradients_match_central_differences(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        grad_out = rng.normal(size=(3, 5, 4))

        def loss():
            return float(np.sum(lstm(sequence_batch) * grad_out))

        lstm.zero_grad()
        lstm(sequence_batch)
        lstm.backward(grad_out)
        analytic = {name: p.grad.copy() for name, p in lstm.named_parameters()}

        eps = 1e-6
        for name, param in lstm.named_parameters():
            flat = param.data.ravel()
            for idx in range(0, flat.size, max(flat.size // 6, 1)):
                orig = flat[idx]
                flat[idx] = orig + eps
                up = loss()
                flat[idx] = orig - eps
                down = loss()
                flat[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert analytic[name].ravel()[idx] == pytest.approx(
                    numeric, abs=1e-6, rel=1e-5
                ), f"{name}[{idx}]"

    def test_input_gradient_matches_central_differences(self, sequence_batch):
        lstm = LSTM(6, 4, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        grad_out = rng.normal(size=(3, 5, 4))
        lstm(sequence_batch)
        grad_x = lstm.backward(grad_out)

        eps = 1e-6
        x = sequence_batch.copy()
        for b, t, c in [(0, 0, 0), (1, 2, 3), (2, 4, 5), (0, 3, 1)]:
            orig = x[b, t, c]
            x[b, t, c] = orig + eps
            up = float(np.sum(lstm(x) * grad_out))
            x[b, t, c] = orig - eps
            down = float(np.sum(lstm(x) * grad_out))
            x[b, t, c] = orig
            numeric = (up - down) / (2 * eps)
            assert grad_x[b, t, c] == pytest.approx(numeric, abs=1e-6, rel=1e-5)

    def test_last_step_gradient_flows_to_all_inputs(self, sequence_batch):
        """Gradient through the recurrence reaches the first time step."""
        lstm = LSTM(6, 4, rng=np.random.default_rng(2))
        out = lstm(sequence_batch)
        grad_out = np.zeros_like(out)
        grad_out[:, -1] = 1.0
        grad_x = lstm.backward(grad_out)
        assert np.any(grad_x[:, 0] != 0.0)
