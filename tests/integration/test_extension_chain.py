"""Integration: the discussion-section extensions chained on real renders.

Simulated recordings flow through the streaming runtime (with a work
zone), session fusion accumulates identity evidence over consecutive
gestures, and CORAL alignment is a near-no-op within a single domain —
all against one trained system, mirroring how a deployment would stack
these pieces.
"""

import numpy as np
import pytest

from repro.core import (
    CoralAligner,
    GesturePrint,
    GesturePrintConfig,
    GesturePrintRuntime,
    SessionIdentifier,
    TrainConfig,
    WorkZone,
    ZoneAdvisory,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.core.trainer import train_test_split
from repro.datasets import build_selfcollected
from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.radar import FastRadar, IWR6843_CONFIG

NUM_POINTS = 64


@pytest.fixture(scope="module")
def dataset():
    return build_selfcollected(
        num_users=3,
        num_gestures=3,
        reps=12,
        environments=("office",),
        num_points=NUM_POINTS,
        seed=29,
    )


@pytest.fixture(scope="module")
def fitted(dataset):
    train, _ = train_test_split(dataset.num_samples, 0.25, seed=1)
    config = GesturePrintConfig(
        network=GesIDNetConfig.small(),
        training=TrainConfig(epochs=20, batch_size=24, learning_rate=3e-3),
        augment=True,
        augment_copies=2,
    )
    return GesturePrint(config).fit(
        dataset.inputs[train], dataset.gesture_labels[train], dataset.user_labels[train]
    )


@pytest.mark.slow
class TestExtensionChain:
    def test_streaming_runtime_with_work_zone(self, fitted):
        """A rendered recording streams through the runtime: one event,
        and the work-zone advisory reports the user in range."""
        users = generate_users(3, seed=29)
        radar = FastRadar(IWR6843_CONFIG, seed=6)
        recording = perform_gesture(
            users[0],
            list(ASL_GESTURES.values())[0],
            radar,
            ENVIRONMENTS["office"],
            rng=np.random.default_rng(3),
        )
        runtime = GesturePrintRuntime(
            fitted, num_points=NUM_POINTS, work_zone=WorkZone(), seed=0
        )
        events = []
        for frame in recording.frames:
            event = runtime.push_frame(frame)
            if event:
                events.append(event)
        tail = runtime.flush()
        if tail:
            events.append(tail)
        assert len(events) >= 1
        assert runtime.zone_advisory in (ZoneAdvisory.IN_ZONE, ZoneAdvisory.NO_PRESENCE)
        assert 0 <= events[0].gesture < fitted.num_gestures

    def test_session_fusion_on_held_out_gestures(self, dataset, fitted):
        """Fused identification over 4 held-out gestures per user does at
        least as well as the average single-gesture decision."""
        _, test = train_test_split(dataset.num_samples, 0.25, seed=1)
        inputs = dataset.inputs[test]
        users = dataset.user_labels[test]
        rng = np.random.default_rng(11)
        fused_correct = single_correct = trials = 0
        for user in np.unique(users):
            idx = np.flatnonzero(users == user)
            if idx.size < 4:
                continue
            for _ in range(4):
                chosen = rng.choice(idx, size=4, replace=False)
                identifier = SessionIdentifier(fitted)
                for sample in inputs[chosen]:
                    estimate = identifier.update(sample)
                single = fitted.predict(inputs[chosen[:1]])
                fused_correct += estimate.user == user
                single_correct += int(single.user_pred[0]) == user
                trials += 1
        assert trials > 0
        assert fused_correct >= single_correct - 1

    def test_coral_within_domain_is_nearly_identity(self, dataset, fitted):
        """Aligning a domain to itself must not change predictions much."""
        _, test = train_test_split(dataset.num_samples, 0.25, seed=1)
        inputs = dataset.inputs[test]
        aligner = CoralAligner().fit(dataset.inputs, dataset.inputs)
        aligned = aligner.transform(inputs)
        before = fitted.predict(inputs).gesture_pred
        after = fitted.predict(aligned).gesture_pred
        agreement = float(np.mean(before == after))
        assert agreement >= 0.9
