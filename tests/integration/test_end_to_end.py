"""End-to-end integration: raw radar frames -> trained system -> predictions.

This is the full paper pipeline at miniature scale: simulate recordings,
preprocess them, train GesturePrint, and check that it beats chance by a
wide margin on held-out repetitions.
"""

import numpy as np
import pytest

from repro.analysis import profile_pipeline
from repro.core import GesturePrint, GesturePrintConfig, IdentificationMode, TrainConfig
from repro.core.gesidnet import GesIDNetConfig
from repro.core.trainer import train_test_split
from repro.datasets import build_selfcollected
from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.radar import FastRadar, IWR6843_CONFIG


@pytest.fixture(scope="module")
def dataset():
    return build_selfcollected(
        num_users=3,
        num_gestures=3,
        reps=14,
        environments=("office",),
        num_points=64,
        seed=17,
    )


@pytest.fixture(scope="module")
def fitted_system(dataset):
    train, _ = train_test_split(dataset.num_samples, 0.25, seed=1)
    config = GesturePrintConfig(
        network=GesIDNetConfig.small(),
        training=TrainConfig(epochs=25, batch_size=24, learning_rate=3e-3),
        augment=True,
        augment_copies=2,
    )
    return GesturePrint(config).fit(
        dataset.inputs[train], dataset.gesture_labels[train], dataset.user_labels[train]
    )


@pytest.mark.slow
class TestEndToEnd:
    def test_beats_chance_on_held_out_data(self, dataset, fitted_system):
        _, test = train_test_split(dataset.num_samples, 0.25, seed=1)
        metrics = fitted_system.evaluate(
            dataset.inputs[test], dataset.gesture_labels[test], dataset.user_labels[test]
        )
        assert metrics["GRA"] > 0.7  # chance = 1/3
        assert metrics["UIA"] > 0.5  # chance = 1/3
        assert metrics["EER"] < 0.45

    def test_serialized_beats_parallel_or_close(self, dataset):
        # The paper reports serialized >= parallel (within a few percent).
        train, test = train_test_split(dataset.num_samples, 0.25, seed=2)
        results = {}
        for mode in (IdentificationMode.SERIALIZED, IdentificationMode.PARALLEL):
            config = GesturePrintConfig(
                network=GesIDNetConfig.small(),
                training=TrainConfig(epochs=22, batch_size=24, learning_rate=3e-3),
                mode=mode,
                augment=True,
                augment_copies=2,
            )
            system = GesturePrint(config).fit(
                dataset.inputs[train],
                dataset.gesture_labels[train],
                dataset.user_labels[train],
            )
            results[mode] = system.evaluate(
                dataset.inputs[test], dataset.gesture_labels[test], dataset.user_labels[test]
            )
        assert results[IdentificationMode.SERIALIZED]["UIA"] > 0.45
        assert results[IdentificationMode.PARALLEL]["UIA"] > 0.33

    def test_latency_profile(self, fitted_system):
        users = generate_users(1, seed=3)
        radar = FastRadar(IWR6843_CONFIG, seed=4)
        recordings = [
            perform_gesture(
                users[0],
                list(ASL_GESTURES.values())[i % 3],
                radar,
                ENVIRONMENTS["office"],
                rng=np.random.default_rng(i),
            )
            for i in range(3)
        ]
        report = profile_pipeline(
            fitted_system, recordings, num_points=48, runs=5, seed=0
        )
        assert report.preprocessing_ms > 0
        assert report.recognition_ms > 0
        assert report.total_ms == pytest.approx(
            report.preprocessing_ms + report.inference_ms
        )
