"""Tests for the from-scratch DBSCAN implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing import dbscan
from repro.preprocessing.dbscan import NOISE


def _blob(center, n, scale=0.05, seed=0):
    rng = np.random.default_rng(seed)
    return np.asarray(center) + rng.normal(scale=scale, size=(n, 3))


class TestDbscan:
    def test_two_blobs_two_clusters(self):
        points = np.vstack([_blob([0, 0, 0], 20, seed=1), _blob([5, 5, 5], 20, seed=2)])
        labels = dbscan(points, eps=0.5, min_points=4)
        clusters = set(labels) - {NOISE}
        assert len(clusters) == 2
        # Points of the same blob share a label.
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1

    def test_isolated_points_are_noise(self):
        points = np.vstack([_blob([0, 0, 0], 20, seed=3), [[50.0, 50, 50]]])
        labels = dbscan(points, eps=0.5, min_points=4)
        assert labels[-1] == NOISE

    def test_min_points_enforced(self):
        # Three mutual neighbours cannot form a cluster with min_points=4.
        points = _blob([0, 0, 0], 3, seed=4)
        labels = dbscan(points, eps=1.0, min_points=4)
        assert (labels == NOISE).all()

    def test_chain_connectivity(self):
        # A line of points spaced 0.4 apart with eps 0.5 is one cluster.
        points = np.array([[0.4 * i, 0.0, 0.0] for i in range(20)])
        labels = dbscan(points, eps=0.5, min_points=3)
        assert len(set(labels)) == 1
        assert labels[0] != NOISE

    def test_border_point_adoption(self):
        # A point within eps of a core point joins even if not core itself.
        core = _blob([0, 0, 0], 10, scale=0.01, seed=5)
        border = np.array([[0.4, 0.0, 0.0]])
        labels = dbscan(np.vstack([core, border]), eps=0.5, min_points=5)
        assert labels[-1] == labels[0]

    def test_empty_input(self):
        labels = dbscan(np.zeros((0, 3)), eps=1.0, min_points=2)
        assert labels.shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 3)), eps=0.0, min_points=2)
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 3)), eps=1.0, min_points=0)
        with pytest.raises(ValueError):
            dbscan(np.zeros(3), eps=1.0, min_points=2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 40), st.integers(2, 6))
    def test_labels_are_contiguous_or_noise(self, n, min_points):
        rng = np.random.default_rng(n)
        points = rng.normal(size=(n, 3))
        labels = dbscan(points, eps=0.8, min_points=min_points)
        clusters = sorted(set(labels) - {NOISE})
        assert clusters == list(range(len(clusters)))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(10, 30))
    def test_permutation_invariant_partition(self, n):
        """Cluster *partitions* match under point reordering."""
        rng = np.random.default_rng(n)
        points = np.vstack([_blob([0, 0, 0], n, seed=n), _blob([4, 0, 0], n, seed=n + 1)])
        labels_a = dbscan(points, eps=0.6, min_points=4)
        perm = rng.permutation(points.shape[0])
        labels_b = dbscan(points[perm], eps=0.6, min_points=4)
        # Compare as partitions over original indices.
        def partition(labels):
            groups = {}
            for idx, lab in enumerate(labels):
                groups.setdefault(lab, set()).add(idx)
            return {frozenset(v) for k, v in groups.items() if k != NOISE}

        restored = np.empty_like(labels_b)
        restored[perm] = labels_b
        assert partition(labels_a) == partition(restored)
