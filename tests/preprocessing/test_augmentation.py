"""Tests for training-time jitter augmentation."""

import numpy as np
import pytest

from repro.preprocessing import augment_cloud, jitter_points
from repro.radar import PointCloud


class TestJitterPoints:
    def test_only_xyz_perturbed(self):
        rng = np.random.default_rng(0)
        points = np.ones((10, 5))
        jittered = jitter_points(points, rng)
        assert not np.allclose(jittered[:, :3], 1.0)
        np.testing.assert_array_equal(jittered[:, 3:], 1.0)

    def test_jitter_scale(self):
        rng = np.random.default_rng(1)
        points = np.zeros((5000, 5))
        jittered = jitter_points(points, rng, sigma=0.02)
        assert jittered[:, :3].std() == pytest.approx(0.02, rel=0.05)

    def test_input_not_mutated(self):
        rng = np.random.default_rng(2)
        points = np.zeros((5, 5))
        jitter_points(points, rng)
        np.testing.assert_array_equal(points, 0.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            jitter_points(np.zeros((5, 2)), np.random.default_rng(0))


class TestAugmentCloud:
    def test_paper_default_three_copies(self):
        cloud = PointCloud(points=np.zeros((10, 5)))
        augmented = augment_cloud(cloud, np.random.default_rng(0))
        assert len(augmented) == 4  # original + 3 copies
        assert augmented[0] is cloud

    def test_copies_differ(self):
        cloud = PointCloud(points=np.zeros((10, 5)))
        augmented = augment_cloud(cloud, np.random.default_rng(1))
        assert not np.allclose(augmented[1].points, augmented[2].points)

    def test_frame_indices_copied(self):
        cloud = PointCloud(points=np.zeros((4, 5)), frame_indices=np.array([0, 0, 1, 2]))
        augmented = augment_cloud(cloud, np.random.default_rng(2), num_copies=1)
        np.testing.assert_array_equal(augmented[1].frame_indices, cloud.frame_indices)

    def test_zero_copies(self):
        cloud = PointCloud(points=np.zeros((3, 5)))
        assert len(augment_cloud(cloud, np.random.default_rng(0), num_copies=0)) == 1

    def test_negative_copies_raise(self):
        cloud = PointCloud(points=np.zeros((3, 5)))
        with pytest.raises(ValueError):
            augment_cloud(cloud, np.random.default_rng(0), num_copies=-1)
