"""Tests for multi-person separation and tracking."""

import numpy as np
import pytest

from repro.gestures import ASL_GESTURES, Bystander, ENVIRONMENTS, generate_users, perform_gesture
from repro.preprocessing import MultiUserSeparator, SeparatorParams
from repro.radar import FastRadar, Frame, IWR6843_CONFIG


def _frame_with_people(positions, points_each=8, rng=None, spread=0.15):
    rng = rng or np.random.default_rng(0)
    rows = []
    for center in positions:
        pts = np.zeros((points_each, 5))
        pts[:, :3] = np.asarray(center) + rng.normal(scale=spread, size=(points_each, 3))
        rows.append(pts)
    if not rows:
        return Frame.empty()
    return Frame(points=np.vstack(rows))


class TestSeparatorSynthetic:
    def test_two_static_people_two_tracks(self):
        rng = np.random.default_rng(1)
        separator = MultiUserSeparator()
        frames = [
            _frame_with_people([(0.0, 1.2, 0.0), (2.0, 2.5, 0.0)], rng=rng)
            for _ in range(15)
        ]
        tracks = separator.separate(frames)
        assert len(tracks) == 2
        centroids = sorted(float(t.current_centroid()[0]) for t in tracks)
        assert centroids[0] == pytest.approx(0.0, abs=0.3)
        assert centroids[1] == pytest.approx(2.0, abs=0.3)

    def test_tracks_follow_moving_person(self):
        rng = np.random.default_rng(2)
        separator = MultiUserSeparator()
        frames = [
            _frame_with_people([(-1.0 + 0.15 * i, 2.0, 0.0)], rng=rng) for i in range(16)
        ]
        tracks = separator.separate(frames)
        assert len(tracks) == 1
        assert tracks[0].current_centroid()[0] == pytest.approx(-1.0 + 0.15 * 15, abs=0.3)

    def test_person_leaving_keeps_track_alignment(self):
        rng = np.random.default_rng(3)
        separator = MultiUserSeparator()
        frames = [
            _frame_with_people([(0.0, 1.2, 0.0), (2.0, 2.5, 0.0)], rng=rng)
            for _ in range(8)
        ]
        frames += [_frame_with_people([(0.0, 1.2, 0.0)], rng=rng) for _ in range(8)]
        tracks = separator.separate(frames)
        for track in tracks:
            assert len(track.frames) == 16  # frame-aligned streams

    def test_empty_stream(self):
        separator = MultiUserSeparator()
        assert separator.separate([Frame.empty() for _ in range(10)]) == []

    def test_min_track_points_filters_flicker(self):
        rng = np.random.default_rng(4)
        separator = MultiUserSeparator(SeparatorParams(min_track_points=50))
        frames = [_frame_with_people([(0.0, 1.2, 0.0)], points_each=3, rng=rng)
                  for _ in range(5)]
        assert separator.separate(frames) == []

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SeparatorParams(cluster_eps_m=0.0)
        with pytest.raises(ValueError):
            SeparatorParams(cluster_min_points=0)


class TestSeparatorOnSimulatedScene:
    def test_user_and_walker_separate(self):
        user = generate_users(1, seed=5)[0]
        radar = FastRadar(IWR6843_CONFIG, seed=6)
        walker = Bystander(mode="walking", walk_start=(-2.5, 3.2), walk_end=(2.5, 3.2))
        recording = perform_gesture(
            user,
            ASL_GESTURES["push"],
            radar,
            ENVIRONMENTS["meeting_room"],
            rng=np.random.default_rng(7),
            bystanders=[walker],
        )
        tracks = MultiUserSeparator().separate(recording.frames)
        assert len(tracks) >= 2
        # The user's track sits near y=1.2; the walker's near y=3.2.
        user_track = min(tracks, key=lambda t: abs(t.current_centroid()[1] - 1.2))
        walker_track = max(tracks, key=lambda t: t.current_centroid()[1])
        assert user_track.current_centroid()[1] == pytest.approx(1.2, abs=0.5)
        assert walker_track.current_centroid()[1] > 2.4
