"""DI-Gesture-style DRAI segmentation: window dynamics and IoU scoring."""

import numpy as np
import pytest

from repro.preprocessing.drai_segmentation import (
    DRAIGestureSegmenter,
    DRAISegmenterParams,
    best_segment_iou,
    segmentation_iou,
)
from repro.preprocessing.segmentation import Segment
from repro.radar.pointcloud import Frame


def _quiet_frame(rng) -> Frame:
    """Sparse low-energy residue, the idle-room signature."""
    n = int(rng.integers(0, 3))
    if n == 0:
        return Frame.empty()
    pts = np.column_stack(
        [
            rng.normal(0.0, 1.0, n),
            rng.uniform(2.5, 4.0, n),
            rng.normal(0.0, 0.3, n),
            rng.normal(0.0, 0.1, n),
            rng.uniform(0.2, 0.6, n),
        ]
    )
    return Frame(points=pts)


def _motion_frame(rng, t: float) -> Frame:
    """A dense moving blob sweeping laterally, the gesture signature."""
    n = int(rng.integers(12, 20))
    cx = -0.4 + 0.8 * t
    pts = np.column_stack(
        [
            rng.normal(cx, 0.1, n),
            rng.normal(1.2, 0.1, n),
            rng.normal(0.2, 0.1, n),
            rng.normal(1.0, 0.3, n),
            rng.uniform(1.5, 3.0, n),
        ]
    )
    return Frame(points=pts)


def _recording(rng, quiet_before=20, motion=12, quiet_after=20):
    frames = [_quiet_frame(rng) for _ in range(quiet_before)]
    frames += [_motion_frame(rng, i / max(motion - 1, 1)) for i in range(motion)]
    frames += [_quiet_frame(rng) for _ in range(quiet_after)]
    return frames, quiet_before, quiet_before + motion


class TestParams:
    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            DRAISegmenterParams(margin=0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DRAISegmenterParams(floor_alpha=0.0)

    def test_rejects_bad_frame_thresholds(self):
        with pytest.raises(ValueError):
            DRAISegmenterParams(min_motion_frames=0)
        with pytest.raises(ValueError):
            DRAISegmenterParams(quiet_frames_to_close=0)


class TestSegmentation:
    def test_detects_single_gesture(self):
        rng = np.random.default_rng(0)
        frames, start, end = _recording(rng)
        segments = DRAIGestureSegmenter().segment(frames)
        assert len(segments) >= 1
        assert best_segment_iou(segments, start, end) > 0.5

    def test_quiet_stream_emits_nothing(self):
        rng = np.random.default_rng(1)
        frames = [_quiet_frame(rng) for _ in range(60)]
        assert DRAIGestureSegmenter().segment(frames) == []

    def test_two_gestures_yield_two_segments(self):
        rng = np.random.default_rng(2)
        first, start1, end1 = _recording(rng, quiet_before=20, motion=10, quiet_after=15)
        second, start2, end2 = _recording(rng, quiet_before=0, motion=10, quiet_after=15)
        frames = first + second
        offset = len(first)
        segments = DRAIGestureSegmenter().segment(frames)
        assert len(segments) == 2
        assert best_segment_iou(segments, start1, end1) > 0.4
        assert best_segment_iou(segments, offset + start2, offset + end2) > 0.4

    def test_flush_closes_open_window(self):
        rng = np.random.default_rng(3)
        segmenter = DRAIGestureSegmenter()
        frames, start, _ = _recording(rng, quiet_before=20, motion=10, quiet_after=0)
        for frame in frames:
            segmenter.push(frame)
        assert segmenter.in_gesture
        tail = segmenter.flush()
        assert tail is not None
        assert tail.end == len(frames)
        assert not segmenter.in_gesture

    def test_reset_restores_initial_state(self):
        rng = np.random.default_rng(4)
        segmenter = DRAIGestureSegmenter()
        frames, _, _ = _recording(rng)
        segmenter.segment(frames)
        segmenter.reset()
        assert not segmenter.in_gesture
        assert segmenter.current_threshold() > 0.0

    def test_threshold_adapts_to_noise_level(self):
        """A noisier room should yield a higher motion threshold."""
        rng = np.random.default_rng(5)
        quiet = DRAIGestureSegmenter()
        for _ in range(40):
            quiet.push(_quiet_frame(rng))
        noisy = DRAIGestureSegmenter()
        for _ in range(40):
            frame = _quiet_frame(rng)
            if frame.num_points:
                frame.points[:, 4] *= 10.0
            noisy.push(frame)
        assert noisy.current_threshold() >= quiet.current_threshold()


class TestIoU:
    def test_perfect_overlap(self):
        assert segmentation_iou(Segment(10, 20), 10, 20) == pytest.approx(1.0)

    def test_disjoint_spans(self):
        assert segmentation_iou(Segment(0, 5), 10, 20) == 0.0

    def test_partial_overlap(self):
        assert segmentation_iou(Segment(10, 20), 15, 25) == pytest.approx(5 / 15)

    def test_best_of_empty_list_is_zero(self):
        assert best_segment_iou([], 0, 10) == 0.0

    def test_best_picks_maximum(self):
        segments = [Segment(0, 5), Segment(9, 21), Segment(30, 40)]
        assert best_segment_iou(segments, 10, 20) == pytest.approx(10 / 12)
