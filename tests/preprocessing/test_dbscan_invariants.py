"""DBSCAN definitional invariants, checked on random point sets.

These pin the algorithm to its textbook definition: every cluster is
grown from core points, and a point left as noise provably has fewer
than ``min_points`` neighbours within ``eps``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.dbscan import NOISE, dbscan


def _random_points(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # A mix of tight blobs and scattered outliers.
    blobs = rng.normal(scale=0.15, size=(n // 2, 3)) + rng.choice(
        [-1.5, 0.0, 1.5], size=(n // 2, 1)
    )
    outliers = rng.uniform(-4, 4, size=(n - n // 2, 3))
    return np.vstack([blobs, outliers])


def _neighbor_counts(points: np.ndarray, eps: float) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    return (distances <= eps).sum(axis=1)  # includes the point itself


class TestDefinitionalInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 60), min_points=st.integers(2, 6))
    def test_noise_points_are_not_core(self, seed, n, min_points):
        eps = 0.5
        points = _random_points(seed, n)
        labels = dbscan(points, eps, min_points)
        counts = _neighbor_counts(points, eps)
        for i in np.flatnonzero(labels == NOISE):
            assert counts[i] < min_points

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 60), min_points=st.integers(2, 6))
    def test_every_cluster_contains_a_core_point(self, seed, n, min_points):
        eps = 0.5
        points = _random_points(seed, n)
        labels = dbscan(points, eps, min_points)
        counts = _neighbor_counts(points, eps)
        for label in set(labels.tolist()) - {NOISE}:
            members = np.flatnonzero(labels == label)
            assert any(counts[i] >= min_points for i in members)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 60))
    def test_core_point_neighbors_share_its_cluster(self, seed, n):
        eps, min_points = 0.5, 3
        points = _random_points(seed, n)
        labels = dbscan(points, eps, min_points)
        counts = _neighbor_counts(points, eps)
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff**2).sum(axis=2))
        for i in range(n):
            if counts[i] < min_points:
                continue  # not core
            # Every point within eps of a core point is density-reachable:
            # it must belong to the same cluster (never noise).
            for j in np.flatnonzero(distances[i] <= eps):
                assert labels[j] != NOISE
                assert labels[j] == labels[i]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 40))
    def test_scaling_points_and_eps_together_is_invariant(self, seed, n):
        points = _random_points(seed, n)
        labels = dbscan(points, 0.5, 3)
        scaled = dbscan(10.0 * points, 5.0, 3)
        np.testing.assert_array_equal(labels, scaled)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_larger_eps_never_increases_noise(self, seed):
        points = _random_points(seed, 40)
        noise_small = (dbscan(points, 0.3, 3) == NOISE).sum()
        noise_large = (dbscan(points, 1.0, 3) == NOISE).sum()
        assert noise_large <= noise_small
