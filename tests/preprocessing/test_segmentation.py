"""Tests for the parameter-adaptive sliding-window segmenter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing import GestureSegmenter, SegmenterParams
from repro.radar import Frame


def _frames_from_counts(counts, rng=None):
    rng = rng or np.random.default_rng(0)
    frames = []
    for count in counts:
        points = np.zeros((count, 5))
        points[:, :3] = rng.normal(size=(count, 3))
        frames.append(Frame(points=points))
    return frames


def _synthetic_stream(idle, motion, idle_after, low=1, high=14, rng=None):
    counts = [low] * idle + [high] * motion + [low] * idle_after
    return _frames_from_counts(counts, rng)


class TestSegmenterParams:
    def test_paper_defaults(self):
        params = SegmenterParams()
        assert params.threshold_window == 50  # N
        assert params.detection_window == 10  # n
        assert params.min_motion_frames == 8  # F_thr

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmenterParams(threshold_window=0)
        with pytest.raises(ValueError):
            SegmenterParams(min_motion_frames=11, detection_window=10)
        with pytest.raises(ValueError):
            SegmenterParams(min_threshold=0.0)


class TestThreshold:
    def test_initial_threshold_is_minimum(self):
        segmenter = GestureSegmenter()
        assert segmenter.current_threshold() == SegmenterParams().min_threshold

    def test_bimodal_counts_split_between_modes(self):
        segmenter = GestureSegmenter()
        for frame in _synthetic_stream(10, 10, 0, low=1, high=20):
            segmenter.push(frame)
        threshold = segmenter.current_threshold()
        assert 1.0 < threshold < 20.0

    def test_threshold_adapts_to_noise_level(self):
        quiet = GestureSegmenter()
        noisy = GestureSegmenter()
        rng = np.random.default_rng(0)
        for frame in _frames_from_counts([1] * 20 + [20] * 10, rng):
            quiet.push(frame)
        for frame in _frames_from_counts([8] * 20 + [40] * 10, rng):
            noisy.push(frame)
        assert noisy.current_threshold() > quiet.current_threshold()


class TestSegmentation:
    def test_detects_single_gesture(self):
        frames = _synthetic_stream(12, 25, 15)
        segments = GestureSegmenter().segment(frames)
        assert len(segments) == 1
        seg = segments[0]
        # Starts near frame 12, ends near frame 37.
        assert abs(seg.start - 12) <= 3
        assert abs(seg.end - 37) <= 11

    def test_detects_two_gestures(self):
        counts = [1] * 12 + [14] * 20 + [1] * 25 + [14] * 20 + [1] * 15
        segments = GestureSegmenter().segment(_frames_from_counts(counts))
        assert len(segments) == 2

    def test_ignores_short_blips(self):
        # A 3-frame spike cannot satisfy F_thr = 8 motion frames.
        counts = [1] * 20 + [15] * 3 + [1] * 30
        segments = GestureSegmenter().segment(_frames_from_counts(counts))
        assert segments == []

    def test_all_idle_yields_nothing(self):
        segments = GestureSegmenter().segment(_frames_from_counts([1] * 60))
        assert segments == []

    def test_open_gesture_flushed_at_end(self):
        counts = [1] * 15 + [14] * 20  # stream ends mid-gesture
        segments = GestureSegmenter().segment(_frames_from_counts(counts))
        assert len(segments) == 1
        assert segments[0].end == 35

    def test_segment_resets_state(self):
        segmenter = GestureSegmenter()
        first = segmenter.segment(_synthetic_stream(10, 20, 15))
        second = segmenter.segment(_synthetic_stream(10, 20, 15))
        assert [(s.start, s.end) for s in first] == [(s.start, s.end) for s in second]

    def test_online_push_matches_batch(self):
        frames = _synthetic_stream(12, 22, 14)
        batch = GestureSegmenter().segment(frames)
        online = GestureSegmenter()
        collected = [seg for f in frames if (seg := online.push(f))]
        tail = online.flush()
        if tail:
            collected.append(tail)
        assert [(s.start, s.end) for s in collected] == [(s.start, s.end) for s in batch]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 25), st.integers(12, 40), st.integers(11, 25))
    def test_property_single_burst_found(self, idle, motion, after):
        frames = _synthetic_stream(idle, motion, after, low=1, high=16)
        segments = GestureSegmenter().segment(frames)
        assert len(segments) == 1
        seg = segments[0]
        inter = max(0, min(seg.end, idle + motion) - max(seg.start, idle))
        assert inter >= 0.6 * motion  # covers most of the true burst
