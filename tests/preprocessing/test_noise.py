"""Tests for noise canceling (main cluster retention)."""

import numpy as np
import pytest

from repro.preprocessing import NoiseCancelerParams, keep_main_cluster
from repro.radar import PointCloud


def _cloud_from_xyz(xyz):
    points = np.zeros((len(xyz), 5))
    points[:, :3] = xyz
    return PointCloud(points=points)


class TestKeepMainCluster:
    def test_keeps_largest_cluster(self):
        rng = np.random.default_rng(0)
        body = rng.normal(scale=0.2, size=(40, 3)) + [0, 1.2, 0]
        clutter = rng.normal(scale=0.1, size=(8, 3)) + [3.0, 4.0, 0]
        cloud = _cloud_from_xyz(np.vstack([body, clutter]))
        cleaned = keep_main_cluster(cloud)
        assert cleaned.num_points == 40
        assert np.abs(cleaned.xyz[:, 0]).max() < 1.5

    def test_discards_isolated_noise(self):
        rng = np.random.default_rng(1)
        body = rng.normal(scale=0.2, size=(30, 3))
        outliers = np.array([[7.0, 7, 7], [-6, 5, 2]])
        cloud = _cloud_from_xyz(np.vstack([body, outliers]))
        cleaned = keep_main_cluster(cloud)
        assert cleaned.num_points == 30

    def test_all_noise_returns_input(self):
        # Points too far apart to form any cluster: degrade gracefully.
        xyz = np.array([[0.0, 0, 0], [10, 0, 0], [0, 10, 0]])
        cloud = _cloud_from_xyz(xyz)
        cleaned = keep_main_cluster(cloud)
        assert cleaned.num_points == 3

    def test_empty_cloud_passthrough(self):
        cloud = PointCloud(points=np.zeros((0, 5)))
        assert keep_main_cluster(cloud).num_points == 0

    def test_paper_parameters_default(self):
        params = NoiseCancelerParams()
        assert params.max_pair_distance_m == 1.0  # D_max
        assert params.min_cluster_points == 4  # N_min

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NoiseCancelerParams(max_pair_distance_m=0.0)
        with pytest.raises(ValueError):
            NoiseCancelerParams(min_cluster_points=0)

    def test_frame_indices_preserved(self):
        rng = np.random.default_rng(2)
        xyz = rng.normal(scale=0.1, size=(20, 3))
        points = np.zeros((20, 5))
        points[:, :3] = xyz
        cloud = PointCloud(points=points, frame_indices=np.arange(20))
        cleaned = keep_main_cluster(cloud)
        assert cleaned.frame_indices.size == cleaned.num_points
