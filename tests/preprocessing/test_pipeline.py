"""Tests for the end-to-end preprocessing pipeline and cloud normalisation."""

import numpy as np
import pytest

from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.preprocessing import PreprocessorParams, preprocess_recording
from repro.preprocessing.pipeline import NORMALIZED_CHANNELS, normalize_cloud
from repro.radar import FastRadar, IWR6843_CONFIG, PointCloud


@pytest.fixture(scope="module")
def recording():
    user = generate_users(1, seed=2)[0]
    radar = FastRadar(IWR6843_CONFIG, seed=0)
    return perform_gesture(
        user, ASL_GESTURES["push"], radar, ENVIRONMENTS["office"],
        rng=np.random.default_rng(0),
    )


class TestPreprocessRecording:
    def test_produces_cloud(self, recording):
        cloud = preprocess_recording(recording)
        assert cloud is not None
        assert cloud.num_points >= PreprocessorParams().min_cloud_points

    def test_cloud_is_near_user(self, recording):
        cloud = preprocess_recording(recording)
        assert np.median(cloud.xyz[:, 1]) == pytest.approx(recording.distance_m, abs=0.5)

    def test_cloud_spans_motion_frames(self, recording):
        cloud = preprocess_recording(recording)
        # Most points should come from within the true motion window.
        inside = (
            (cloud.frame_indices >= recording.motion_start_frame - 3)
            & (cloud.frame_indices <= recording.motion_end_frame + 3)
        ).mean()
        assert inside > 0.8

    def test_no_fallback_returns_none_for_empty(self):
        from repro.gestures.synthesis import GestureRecording
        from repro.radar import Frame

        empty = GestureRecording(
            frames=[Frame.empty() for _ in range(30)],
            user_id=0,
            gesture_name="x",
            distance_m=1.2,
            environment="office",
            motion_start_frame=5,
            motion_end_frame=20,
        )
        assert preprocess_recording(empty) is None


class TestNormalizeCloud:
    def _cloud(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 5))
        points[:, 1] += 1.2
        return PointCloud(points=points, frame_indices=rng.integers(0, 20, n))

    def test_output_shape(self):
        cloud = self._cloud()
        out = normalize_cloud(cloud, 64, np.random.default_rng(0))
        assert out.shape == (64, NORMALIZED_CHANNELS)

    def test_x_centered(self):
        cloud = self._cloud()
        out = normalize_cloud(cloud, 256, np.random.default_rng(0))
        assert abs(out[:, 0].mean()) < 0.3  # subsampling jitter allowed

    def test_z_not_centered(self):
        rng = np.random.default_rng(1)
        points = rng.normal(scale=0.1, size=(60, 5))
        points[:, 2] += 0.5  # user's height offset must survive
        cloud = PointCloud(points=points)
        out = normalize_cloud(cloud, 60, np.random.default_rng(0))
        assert out[:, 2].mean() == pytest.approx(0.5, abs=0.1)

    def test_phase_channel_in_unit_range(self):
        cloud = self._cloud()
        out = normalize_cloud(cloud, 32, np.random.default_rng(0))
        assert out[:, 5].min() >= 0.0
        assert out[:, 5].max() <= 1.0

    def test_scalar_channels_constant(self):
        cloud = self._cloud()
        out = normalize_cloud(cloud, 32, np.random.default_rng(0))
        assert np.unique(out[:, 6]).size == 1  # duration
        assert np.unique(out[:, 7]).size == 1  # log point count

    def test_small_cloud_padded(self):
        cloud = self._cloud(n=5)
        out = normalize_cloud(cloud, 32, np.random.default_rng(0))
        assert out.shape[0] == 32

    def test_empty_cloud_raises(self):
        with pytest.raises(ValueError):
            normalize_cloud(PointCloud(points=np.zeros((0, 5))), 16, np.random.default_rng(0))

    def test_duration_channel_tracks_frames(self):
        points = np.zeros((10, 5))
        cloud = PointCloud(points=points, frame_indices=np.arange(10))
        out = normalize_cloud(cloud, 10, np.random.default_rng(0))
        assert out[0, 6] == pytest.approx(10 / 50.0)
