"""Tests for the four dataset clones (scaled-down builds)."""

import numpy as np
import pytest

from repro.datasets import (
    build_mhomeges,
    build_mtranssee,
    build_pantomime,
    build_selfcollected,
)
from repro.datasets.clones import MTRANSSEE_ANCHORS


@pytest.mark.slow
class TestSelfCollected:
    def test_two_environments(self):
        ds = build_selfcollected(
            num_users=2, num_gestures=2, reps=2, num_points=24, seed=1
        )
        assert set(ds.environment_names) == {"office", "meeting_room"}
        assert set(np.unique(ds.environment_labels)) == {0, 1}

    def test_gesture_names_are_asl(self):
        ds = build_selfcollected(
            num_users=1, num_gestures=3, reps=1, environments=("office",),
            num_points=24, seed=2,
        )
        assert ds.gesture_names == ["ahead", "and", "another"]


@pytest.mark.slow
class TestPantomime:
    def test_disjoint_users_per_environment(self):
        ds = build_pantomime(
            num_users=2, num_gestures=2, reps=2, num_points=24, seed=3
        )
        office = ds.in_environment("office")
        open_env = ds.in_environment("open")
        assert set(np.unique(office.user_labels)).isdisjoint(
            np.unique(open_env.user_labels)
        )

    def test_distance_is_one_meter(self):
        ds = build_pantomime(
            num_users=1, num_gestures=1, reps=1, environments=("office",),
            num_points=24, seed=4,
        )
        assert (ds.distances_m == 1.0).all()


@pytest.mark.slow
class TestHomeDatasets:
    def test_mhomeges_home_environment(self):
        ds = build_mhomeges(num_users=1, num_gestures=2, reps=1, num_points=24, seed=5)
        assert ds.environment_names == ["home"]

    def test_mtranssee_anchor_grid(self):
        assert len(MTRANSSEE_ANCHORS) == 13
        assert MTRANSSEE_ANCHORS[0] == 1.2
        assert MTRANSSEE_ANCHORS[-1] == 4.8

    def test_mtranssee_multiple_distances(self):
        ds = build_mtranssee(
            num_users=1, num_gestures=1, reps=2,
            distances_m=(1.2, 2.4), num_points=24, seed=6,
        )
        assert set(np.round(np.unique(ds.distances_m), 1)) == {1.2, 2.4}

    def test_far_anchor_yields_fewer_points(self):
        ds = build_mtranssee(
            num_users=2, num_gestures=1, reps=3,
            distances_m=(1.2, 4.5), num_points=24, seed=7, keep_clouds=True,
        )
        near = [c.num_points for c, d in zip(ds.clouds, ds.distances_m) if d < 2]
        far = [c.num_points for c, d in zip(ds.clouds, ds.distances_m) if d > 4]
        assert np.mean(far) < np.mean(near)
