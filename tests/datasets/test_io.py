"""Dataset .npz persistence: round trips and validation."""

import numpy as np
import pytest

from repro.datasets import GestureDataset, load_dataset, save_dataset


def _dataset(n=12, seed=0):
    rng = np.random.default_rng(seed)
    return GestureDataset(
        inputs=rng.normal(size=(n, 16, 8)),
        gesture_labels=rng.integers(0, 3, size=n),
        user_labels=rng.integers(0, 2, size=n),
        distances_m=np.full(n, 1.2),
        environment_labels=np.zeros(n, dtype=np.int64),
        duration_frames=rng.integers(10, 30, size=n),
        gesture_names=["ahead", "away", "push"],
        environment_names=["office"],
    )


class TestRoundTrip:
    def test_arrays_survive(self, tmp_path):
        dataset = _dataset()
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.inputs, dataset.inputs)
        np.testing.assert_array_equal(loaded.gesture_labels, dataset.gesture_labels)
        np.testing.assert_array_equal(loaded.user_labels, dataset.user_labels)
        np.testing.assert_array_equal(loaded.distances_m, dataset.distances_m)
        np.testing.assert_array_equal(loaded.duration_frames, dataset.duration_frames)

    def test_names_survive(self, tmp_path):
        dataset = _dataset()
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.gesture_names == dataset.gesture_names
        assert loaded.environment_names == dataset.environment_names

    def test_clouds_are_dropped(self, tmp_path):
        dataset = _dataset()
        dataset.clouds = [object()] * dataset.num_samples  # ragged payload
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        assert load_dataset(path).clouds == []

    def test_loaded_dataset_supports_subsetting(self, tmp_path):
        dataset = _dataset(seed=1)
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        subset = loaded.in_environment("office")
        assert subset.num_samples == loaded.num_samples


class TestValidation:
    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, inputs=np.zeros((2, 4, 8)))
        with pytest.raises(ValueError, match="missing arrays"):
            load_dataset(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.npz")
