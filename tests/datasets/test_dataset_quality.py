"""Statistical quality checks on rendered datasets.

These assert the dataset-level properties the paper's analysis depends
on: gesture separability exceeding user separability (Fig. 3), duration
correlating with user speed (Fig. 13), and basic numeric hygiene.
"""

import numpy as np
import pytest

from repro.datasets import build_selfcollected
from repro.metrics import chamfer_distance


@pytest.fixture(scope="module")
def dataset():
    return build_selfcollected(
        num_users=4,
        num_gestures=4,
        reps=8,
        environments=("office",),
        num_points=48,
        seed=29,
    )


class TestNumericHygiene:
    def test_no_nans(self, dataset):
        assert np.isfinite(dataset.inputs).all()

    def test_doppler_within_radar_limits(self, dataset):
        assert np.abs(dataset.inputs[:, :, 3]).max() <= 2.71

    def test_phase_in_unit_interval(self, dataset):
        phases = dataset.inputs[:, :, 5]
        assert phases.min() >= 0.0
        assert phases.max() <= 1.0

    def test_y_near_configured_distance(self, dataset):
        assert np.median(dataset.inputs[:, :, 1]) == pytest.approx(1.2, abs=0.4)

    def test_every_cell_represented(self, dataset):
        cells = set(zip(dataset.gesture_labels.tolist(), dataset.user_labels.tolist()))
        assert len(cells) == 16  # 4 gestures x 4 users


class TestClassStructure:
    def _mean_chamfer(self, dataset, pairs):
        return float(
            np.mean(
                [
                    chamfer_distance(
                        dataset.inputs[i][:, :3], dataset.inputs[j][:, :3]
                    )
                    for i, j in pairs
                ]
            )
        )

    def test_gesture_separation_exceeds_repetition_noise(self, dataset):
        rng = np.random.default_rng(0)
        same, cross = [], []
        n = dataset.num_samples
        while len(same) < 60 or len(cross) < 60:
            i, j = rng.integers(0, n, 2)
            if i == j:
                continue
            if (
                dataset.gesture_labels[i] == dataset.gesture_labels[j]
                and dataset.user_labels[i] == dataset.user_labels[j]
                and len(same) < 60
            ):
                same.append((i, j))
            elif dataset.gesture_labels[i] != dataset.gesture_labels[j] and len(cross) < 60:
                cross.append((i, j))
        assert self._mean_chamfer(dataset, cross) > 1.15 * self._mean_chamfer(dataset, same)

    def test_duration_tracks_user_speed(self, dataset):
        # Same gesture: per-user mean durations must spread (speed trait).
        durations = dataset.duration_frames
        gesture0 = dataset.gesture_labels == 0
        per_user = [
            durations[gesture0 & (dataset.user_labels == u)].mean()
            for u in range(4)
            if (gesture0 & (dataset.user_labels == u)).any()
        ]
        assert max(per_user) - min(per_user) >= 2.0  # frames
