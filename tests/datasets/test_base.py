"""Tests for the dataset container and rendering loop."""

import numpy as np
import pytest

from repro.datasets import DatasetSpec, build_dataset
from repro.gestures import ASL_GESTURES, generate_users


@pytest.fixture(scope="module")
def small_dataset():
    users = generate_users(2, seed=0)
    templates = tuple(list(ASL_GESTURES.values())[:2])
    spec = DatasetSpec(
        users=tuple(users),
        templates=templates,
        environments=("office",),
        reps=3,
        num_points=32,
        seed=5,
    )
    return build_dataset(spec, keep_clouds=True)


class TestDatasetSpec:
    def test_validation(self):
        users = tuple(generate_users(1, seed=0))
        templates = (ASL_GESTURES["push"],)
        with pytest.raises(ValueError):
            DatasetSpec(users=(), templates=templates)
        with pytest.raises(ValueError):
            DatasetSpec(users=users, templates=templates, reps=0)
        with pytest.raises(ValueError):
            DatasetSpec(users=users, templates=templates, environments=("moon",))


class TestBuildDataset:
    def test_sample_count(self, small_dataset):
        # 2 users x 2 gestures x 3 reps (some may drop, most survive).
        assert 8 <= small_dataset.num_samples <= 12

    def test_input_shape(self, small_dataset):
        assert small_dataset.inputs.shape[1:] == (32, 8)

    def test_labels_aligned(self, small_dataset):
        n = small_dataset.num_samples
        assert small_dataset.gesture_labels.shape == (n,)
        assert small_dataset.user_labels.shape == (n,)
        assert small_dataset.distances_m.shape == (n,)

    def test_label_ranges(self, small_dataset):
        assert set(small_dataset.gesture_labels) <= {0, 1}
        assert set(small_dataset.user_labels) <= {0, 1}

    def test_clouds_kept_when_requested(self, small_dataset):
        assert len(small_dataset.clouds) == small_dataset.num_samples
        assert all(c.num_points > 0 for c in small_dataset.clouds)

    def test_deterministic(self):
        users = generate_users(1, seed=1)
        spec = DatasetSpec(
            users=tuple(users),
            templates=(ASL_GESTURES["push"],),
            reps=2,
            num_points=16,
            seed=9,
        )
        a = build_dataset(spec)
        b = build_dataset(spec)
        np.testing.assert_array_equal(a.inputs, b.inputs)


class TestDatasetOps:
    def test_subset(self, small_dataset):
        mask = small_dataset.gesture_labels == 0
        sub = small_dataset.subset(mask)
        assert sub.num_samples == int(mask.sum())
        assert (sub.gesture_labels == 0).all()

    def test_subset_bad_mask(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.subset(np.ones(3, dtype=bool))

    def test_at_distance(self, small_dataset):
        sub = small_dataset.at_distance(1.2)
        assert sub.num_samples == small_dataset.num_samples

    def test_in_environment(self, small_dataset):
        sub = small_dataset.in_environment("office")
        assert sub.num_samples == small_dataset.num_samples
        with pytest.raises(ValueError):
            small_dataset.in_environment("moon")

    def test_merged_with(self, small_dataset):
        merged = small_dataset.merged_with(small_dataset)
        assert merged.num_samples == 2 * small_dataset.num_samples

    def test_merge_requires_same_vocabulary(self, small_dataset):
        other = small_dataset.subset(np.ones(small_dataset.num_samples, dtype=bool))
        other.gesture_names = ["different"]
        with pytest.raises(ValueError):
            small_dataset.merged_with(other)
