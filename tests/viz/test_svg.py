"""SVG builder: well-formedness, escaping, and primitive geometry."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import Canvas, Element, PALETTE, color_for


def _parse(canvas: Canvas) -> ET.Element:
    return ET.fromstring(canvas.to_string())


NS = "{http://www.w3.org/2000/svg}"


class TestElement:
    def test_snake_case_becomes_kebab_case(self):
        element = Element("rect", stroke_width=2)
        assert element.attributes["stroke-width"] == "2"

    def test_trailing_underscore_stripped(self):
        element = Element("text", class_="label")
        assert element.attributes["class"] == "label"

    def test_float_formatting_compact(self):
        element = Element("circle", cx=1.5, cy=2.0)
        assert element.attributes["cx"] == "1.5"
        assert element.attributes["cy"] == "2"

    def test_text_is_escaped(self):
        element = Element("text", text="a < b & c")
        assert "a &lt; b &amp; c" in element.to_string()

    def test_attribute_quoting(self):
        element = Element("text", text="x", font_family='say "hi"')
        ET.fromstring(element.to_string())  # must stay parseable


class TestCanvas:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            Canvas(0, 100)
        with pytest.raises(ValueError):
            Canvas(100, -1)

    def test_document_is_valid_xml(self):
        canvas = Canvas(200, 100)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2)
        canvas.rect(1, 1, 3, 3)
        canvas.text(10, 10, "hello")
        canvas.polyline([(0, 0), (1, 2), (3, 4)])
        root = _parse(canvas)
        assert root.tag == f"{NS}svg"

    def test_background_rect_present(self):
        root = _parse(Canvas(50, 50))
        rects = root.findall(f"{NS}rect")
        assert len(rects) == 1
        assert rects[0].get("fill") == "white"

    def test_no_background_when_disabled(self):
        root = _parse(Canvas(50, 50, background=""))
        assert root.findall(f"{NS}rect") == []

    def test_dash_applied(self):
        canvas = Canvas(50, 50)
        canvas.line(0, 0, 10, 10, dash="4 3")
        line = _parse(canvas).find(f"{NS}line")
        assert line.get("stroke-dasharray") == "4 3"

    def test_polyline_point_encoding(self):
        canvas = Canvas(50, 50)
        canvas.polyline([(0.0, 1.25), (2.5, 3.0)])
        polyline = _parse(canvas).find(f"{NS}polyline")
        assert polyline.get("points") == "0,1.25 2.5,3"

    def test_text_rotation_transform(self):
        canvas = Canvas(50, 50)
        canvas.text(10, 20, "y", rotate=-90.0)
        text = _parse(canvas).find(f"{NS}text")
        assert text.get("transform") == "rotate(-90 10 20)"

    def test_save_round_trip(self, tmp_path):
        canvas = Canvas(60, 40)
        canvas.circle(10, 10, 3)
        path = tmp_path / "figure.svg"
        canvas.save(path)
        ET.parse(path)


class TestPalette:
    def test_colors_cycle(self):
        assert color_for(0) == PALETTE[0]
        assert color_for(len(PALETTE)) == PALETTE[0]
        assert color_for(1) != color_for(2)
