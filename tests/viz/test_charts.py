"""Chart builders: scales, ticks, and rendered structure."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.charts import ChartLayout, heatmap, line_chart, nice_ticks, scatter_chart

NS = "{http://www.w3.org/2000/svg}"


def _parse(canvas) -> ET.Element:
    return ET.fromstring(canvas.to_string())


class TestNiceTicks:
    def test_unit_interval(self):
        ticks = nice_ticks(0.0, 1.0)
        assert ticks[0] == 0.0
        assert ticks[-1] == 1.0
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_covers_range(self):
        ticks = nice_ticks(1.2, 4.8)
        assert min(ticks) >= 1.2
        assert max(ticks) <= 4.8 + 1e-9

    def test_degenerate_range_widened(self):
        ticks = nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            nice_ticks(float("nan"), 1.0)

    def test_step_is_1_2_5(self):
        for low, high in [(0, 1), (0, 7), (0, 23), (0, 480), (0.0, 0.03)]:
            ticks = nice_ticks(low, high)
            step = ticks[1] - ticks[0]
            mantissa = step / (10 ** np.floor(np.log10(step)))
            assert round(mantissa, 6) in (1.0, 2.0, 5.0)


class TestLayout:
    def test_rejects_margins_exceeding_size(self):
        with pytest.raises(ValueError):
            ChartLayout(width=50, margin_left=40, margin_right=40)


class TestLineChart:
    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_renders_one_polyline_per_series(self):
        x = np.linspace(0, 1, 10)
        canvas = line_chart({"a": (x, x), "b": (x, x**2)})
        polylines = _parse(canvas).findall(f"{NS}polyline")
        assert len(polylines) == 2

    def test_diagonal_adds_dashed_line(self):
        x = np.linspace(0, 1, 5)
        canvas = line_chart({"roc": (x, x)}, diagonal=True)
        dashed = [
            e
            for e in _parse(canvas).findall(f"{NS}line")
            if e.get("stroke-dasharray")
        ]
        assert len(dashed) == 1

    def test_constant_x_range_widened(self):
        canvas = line_chart({"a": (np.zeros(3), np.arange(3.0))})
        ET.fromstring(canvas.to_string())

    def test_y_range_override(self):
        x = np.linspace(0, 1, 5)
        canvas = line_chart({"a": (x, 0.5 * x)}, y_range=(0.0, 1.0))
        texts = [t.text for t in _parse(canvas).findall(f"{NS}text")]
        assert "1" in texts  # the top tick label exists

    def test_title_and_labels_rendered(self):
        x = np.linspace(0, 1, 5)
        canvas = line_chart(
            {"a": (x, x)}, title="T", x_label="distance", y_label="accuracy"
        )
        texts = [t.text for t in _parse(canvas).findall(f"{NS}text")]
        for expected in ("T", "distance", "accuracy", "a"):
            assert expected in texts


class TestScatterChart:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            scatter_chart(np.zeros((4, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            scatter_chart(np.zeros((4, 2)), np.zeros(5))

    def test_renders_one_circle_per_point(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(25, 2))
        labels = rng.integers(0, 3, size=25)
        canvas = scatter_chart(points, labels)
        assert len(_parse(canvas).findall(f"{NS}circle")) == 25

    def test_same_label_same_color(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]])
        labels = np.array([1, 1, 0])
        circles = _parse(scatter_chart(points, labels)).findall(f"{NS}circle")
        fills = [c.get("fill") for c in circles]
        assert fills[0] == fills[1]
        assert fills[0] != fills[2]

    def test_degenerate_extent_handled(self):
        points = np.zeros((3, 2))
        canvas = scatter_chart(points, np.zeros(3))
        ET.fromstring(canvas.to_string())


class TestHeatmap:
    def test_rejects_empty_or_wrong_rank(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))

    def test_renders_one_cell_per_entry(self):
        matrix = np.arange(12.0).reshape(3, 4)
        root = _parse(heatmap(matrix, cell_labels=False))
        # +1 for the background rect.
        assert len(root.findall(f"{NS}rect")) == 12 + 1

    def test_cell_labels_rendered(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        texts = [t.text for t in _parse(heatmap(matrix)).findall(f"{NS}text")]
        for expected in ("1", "2", "3", "4"):
            assert expected in texts

    def test_constant_matrix_handled(self):
        canvas = heatmap(np.ones((3, 3)))
        ET.fromstring(canvas.to_string())

    def test_large_matrix_skips_labels(self):
        matrix = np.zeros((25, 25))
        texts = _parse(heatmap(matrix, title="")).findall(f"{NS}text")
        assert texts == []
