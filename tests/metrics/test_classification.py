"""Tests for accuracy, confusion matrix, macro-F1, and one-vs-rest AUC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    accuracy,
    confusion_matrix,
    macro_f1,
    one_vs_rest_auc,
    per_class_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_none_correct(self):
        assert accuracy([0, 0, 0], [1, 1, 1]) == 0.0

    def test_partial(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_self_prediction_is_perfect(self, labels):
        assert accuracy(labels, labels) == 1.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2])
        assert np.array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 1, 0])
        assert matrix[0, 1] == 2
        assert matrix[1, 0] == 1
        assert matrix.trace() == 0

    def test_explicit_num_classes(self):
        matrix = confusion_matrix([0], [0], num_classes=4)
        assert matrix.shape == (4, 4)

    def test_label_exceeding_num_classes_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([5], [0], num_classes=3)

    def test_negative_label_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([-1], [0])

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=60)
    )
    def test_total_count_preserved(self, pairs):
        y_true = [p[0] for p in pairs]
        y_pred = [p[1] for p in pairs]
        assert confusion_matrix(y_true, y_pred).sum() == len(pairs)


class TestPerClassAccuracy:
    def test_basic(self):
        recall = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert recall[0] == 0.5
        assert recall[1] == 1.0

    def test_absent_class_is_nan(self):
        recall = per_class_accuracy([0, 2], [0, 2])
        assert np.isnan(recall[1])


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1([0, 1, 0, 1], [0, 1, 0, 1]) == 1.0

    def test_all_wrong(self):
        assert macro_f1([0, 1], [1, 0]) == 0.0

    def test_imbalanced_weights_classes_equally(self):
        # Class 1 has 1 sample predicted right; class 0 has 9/10 right.
        y_true = [0] * 10 + [1]
        y_pred = [0] * 9 + [1] + [1]
        f1_0 = 2 * (9 / 10) * (9 / 9) / (9 / 10 + 1)
        f1_1 = 2 * (1 / 2) * (1 / 1) / (1 / 2 + 1)
        assert macro_f1(y_true, y_pred) == pytest.approx((f1_0 + f1_1) / 2)

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=40))
    def test_bounded(self, labels):
        rng = np.random.default_rng(0)
        preds = rng.integers(0, 4, len(labels))
        value = macro_f1(labels, preds)
        assert 0.0 <= value <= 1.0


class TestOneVsRestAuc:
    def test_perfectly_separable(self):
        scores = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9], [0.2, 0.8]])
        assert one_vs_rest_auc([0, 0, 1, 1], scores) == 1.0

    def test_inverted_scores(self):
        scores = np.array([[0.1, 0.9], [0.9, 0.1]])
        assert one_vs_rest_auc([0, 1], scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 3, 600)
        scores = rng.random((600, 3))
        assert abs(one_vs_rest_auc(labels, scores) - 0.5) < 0.06

    def test_ties_give_half_credit(self):
        scores = np.ones((4, 2)) * 0.5
        assert one_vs_rest_auc([0, 0, 1, 1], scores) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            one_vs_rest_auc([0, 1], np.zeros(2))

    @settings(max_examples=25)
    @given(st.integers(10, 60), st.integers(2, 4))
    def test_bounded(self, n, k):
        rng = np.random.default_rng(n)
        labels = np.arange(n) % k
        scores = rng.random((n, k))
        assert 0.0 <= one_vs_rest_auc(labels, scores) <= 1.0
