"""Calibration metrics: ECE, reliability curves, and temperature scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.calibration import (
    apply_temperature,
    expected_calibration_error,
    fit_temperature,
    reliability_curve,
)


def _softmax(logits):
    logits = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)


def _synthetic(n=400, classes=4, scale=1.0, seed=0):
    """Scaled logits with labels drawn from the *unscaled* softmax.

    By construction temperature 1 is optimal for the unscaled logits,
    so the scaled ones are exactly ``scale``-miscalibrated: ``scale > 1``
    simulates an overconfident model, ``< 1`` an underconfident one.
    """
    rng = np.random.default_rng(seed)
    logits = rng.normal(scale=1.5, size=(n, classes))
    probs = _softmax(logits)
    labels = np.array([rng.choice(classes, p=row) for row in probs])
    return logits * scale, labels


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((5, 2)) / 2, np.zeros(4, dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((0, 2)), np.zeros(0, dtype=int))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((3, 2)) / 2, np.array([0, 1, 2]))

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((3, 2)) / 2, np.zeros(3, dtype=int), num_bins=0)
        with pytest.raises(ValueError):
            reliability_curve(np.ones((3, 2)) / 2, np.zeros(3, dtype=int), num_bins=-1)


class TestECE:
    def test_perfectly_calibrated_uniform_probs(self):
        """Uniform probabilities on balanced classes: confidence = 1/C =
        accuracy, so ECE ~ 0."""
        n, classes = 4000, 4
        probs = np.full((n, classes), 1.0 / classes)
        probs[:, 0] += 1e-9  # break argmax ties deterministically
        labels = np.arange(n) % classes
        assert expected_calibration_error(probs, labels) < 0.02

    def test_overconfident_wrong_predictions_give_high_ece(self):
        n = 200
        probs = np.zeros((n, 2))
        probs[:, 0] = 0.99
        probs[:, 1] = 0.01
        labels = np.ones(n, dtype=int)  # always the other class
        assert expected_calibration_error(probs, labels) > 0.9

    def test_confident_correct_predictions_give_low_ece(self):
        n = 200
        probs = np.zeros((n, 2))
        probs[:, 0] = 0.99
        probs[:, 1] = 0.01
        labels = np.zeros(n, dtype=int)
        assert expected_calibration_error(probs, labels) < 0.05

    def test_bounded_in_unit_interval(self):
        logits, labels = _synthetic(seed=3)
        ece = expected_calibration_error(_softmax(logits), labels)
        assert 0.0 <= ece <= 1.0


class TestReliabilityCurve:
    def test_counts_sum_to_samples(self):
        logits, labels = _synthetic(seed=1)
        _, _, counts = reliability_curve(_softmax(logits), labels)
        assert counts.sum() == labels.size

    def test_empty_bins_are_nan(self):
        probs = np.zeros((10, 2))
        probs[:, 0] = 0.95
        probs[:, 1] = 0.05
        conf, acc, counts = reliability_curve(probs, np.zeros(10, dtype=int))
        assert counts[0] == 0
        assert np.isnan(conf[0]) and np.isnan(acc[0])
        assert counts[-1] == 10

    def test_bin_confidence_within_bin_edges(self):
        logits, labels = _synthetic(seed=2)
        conf, _, counts = reliability_curve(_softmax(logits), labels, num_bins=5)
        edges = np.linspace(0, 1, 6)
        for i in range(5):
            if counts[i]:
                assert edges[i] < conf[i] <= edges[i + 1]


class TestTemperatureScaling:
    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            fit_temperature(np.ones((4, 2)), np.zeros(3, dtype=int))

    def test_rejects_bad_grid(self):
        logits, labels = _synthetic(n=50)
        with pytest.raises(ValueError):
            fit_temperature(logits, labels, grid=(0.0, 2.0))
        with pytest.raises(ValueError):
            fit_temperature(logits, labels, grid=(3.0, 2.0))

    def test_apply_preserves_argmax(self):
        logits, _ = _synthetic(seed=4)
        for temperature in (0.3, 1.0, 5.0):
            scaled = apply_temperature(logits, temperature)
            np.testing.assert_array_equal(
                scaled.argmax(axis=1), logits.argmax(axis=1)
            )

    def test_apply_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            apply_temperature(np.ones((2, 2)), 0.0)

    def test_high_temperature_flattens(self):
        logits, _ = _synthetic(seed=5)
        flat = apply_temperature(logits, 1e3)
        np.testing.assert_allclose(flat, 1.0 / logits.shape[1], atol=1e-2)

    def test_recovers_known_miscalibration(self):
        """Logits deliberately scaled by 3x should fit T ~ 3."""
        logits, labels = _synthetic(n=2000, scale=3.0, seed=6)
        fitted = fit_temperature(logits, labels)
        assert fitted == pytest.approx(3.0, rel=0.4)

    def test_scaling_reduces_ece_of_overconfident_model(self):
        logits, labels = _synthetic(n=2000, scale=4.0, seed=7)
        before = expected_calibration_error(_softmax(logits), labels)
        fitted = fit_temperature(logits, labels)
        after = expected_calibration_error(apply_temperature(logits, fitted), labels)
        assert after <= before + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(0.3, 6.0), seed=st.integers(0, 10_000))
    def test_property_fitted_nll_not_worse_than_identity(self, scale, seed):
        logits, labels = _synthetic(n=300, scale=scale, seed=seed)
        from repro.metrics.calibration import _nll

        fitted = fit_temperature(logits, labels)
        assert _nll(logits, labels, fitted) <= _nll(logits, labels, 1.0) + 1e-9
