"""Tests for Hausdorff / Chamfer / JSD point-cloud distances (Fig. 3 metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.metrics import (
    chamfer_distance,
    hausdorff_distance,
    jensen_shannon_divergence,
    pairwise_set_distance,
)

clouds = npst.arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.just(3)),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestHausdorff:
    def test_identical_clouds_zero(self):
        cloud = np.array([[0.0, 0, 0], [1, 1, 1]])
        assert hausdorff_distance(cloud, cloud) == 0.0

    def test_known_value(self):
        a = np.array([[0.0, 0, 0]])
        b = np.array([[3.0, 4.0, 0.0]])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)

    def test_outlier_dominates(self):
        a = np.array([[0.0, 0, 0], [10.0, 0, 0]])
        b = np.array([[0.0, 0, 0]])
        assert hausdorff_distance(a, b) == pytest.approx(10.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hausdorff_distance(np.zeros((0, 3)), np.zeros((1, 3)))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            hausdorff_distance(np.zeros((1, 3)), np.zeros((1, 2)))

    @settings(max_examples=30)
    @given(clouds, clouds)
    def test_symmetric_and_nonnegative(self, a, b):
        d_ab = hausdorff_distance(a, b)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(hausdorff_distance(b, a))


class TestChamfer:
    def test_identical_clouds_zero(self):
        cloud = np.array([[0.0, 0, 0], [1, 1, 1]])
        assert chamfer_distance(cloud, cloud) == 0.0

    def test_known_value(self):
        a = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        b = np.array([[0.0, 0, 0]])
        # a->b mean: (0 + 1)/2; b->a mean: 0; chamfer = 0.5*(0.5 + 0).
        assert chamfer_distance(a, b) == pytest.approx(0.25)

    def test_translation_grows_distance(self):
        rng = np.random.default_rng(0)
        cloud = rng.random((15, 3))
        near = chamfer_distance(cloud, cloud + 0.1)
        far = chamfer_distance(cloud, cloud + 1.0)
        assert far > near

    @settings(max_examples=30)
    @given(clouds, clouds)
    def test_symmetric_and_at_most_hausdorff(self, a, b):
        cd = chamfer_distance(a, b)
        assert cd == pytest.approx(chamfer_distance(b, a))
        assert cd <= hausdorff_distance(a, b) + 1e-9


class TestJsd:
    def test_identical_clouds_zero(self):
        rng = np.random.default_rng(1)
        cloud = rng.random((30, 3))
        assert jensen_shannon_divergence(cloud, cloud) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_clouds_ln2(self):
        a = np.zeros((10, 3))
        b = np.ones((10, 3)) * 10.0
        assert jensen_shannon_divergence(a, b) == pytest.approx(np.log(2.0))

    def test_bounded(self):
        rng = np.random.default_rng(2)
        value = jensen_shannon_divergence(rng.random((40, 3)), rng.random((40, 3)) + 0.5)
        assert 0.0 <= value <= np.log(2.0) + 1e-12

    def test_symmetric(self):
        rng = np.random.default_rng(3)
        a, b = rng.random((25, 3)), rng.random((25, 3)) + 0.2
        assert jensen_shannon_divergence(a, b) == pytest.approx(
            jensen_shannon_divergence(b, a)
        )


class TestPairwiseSetDistance:
    def test_excludes_self_pairs(self):
        cloud = np.array([[0.0, 0, 0]])
        clouds_list = [cloud, cloud + 1.0]
        value = pairwise_set_distance(clouds_list, clouds_list, hausdorff_distance)
        assert value == pytest.approx(np.sqrt(3.0))

    def test_cross_sets_average(self):
        a = [np.array([[0.0, 0, 0]])]
        b = [np.array([[1.0, 0, 0]]), np.array([[2.0, 0, 0]])]
        assert pairwise_set_distance(a, b, hausdorff_distance) == pytest.approx(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pairwise_set_distance([], [np.zeros((1, 3))], hausdorff_distance)

    def test_single_cloud_self_comparison_raises(self):
        single = [np.zeros((1, 3))]
        with pytest.raises(ValueError):
            pairwise_set_distance(single, single, hausdorff_distance)
