"""Tests for ROC/DET curves and the Equal Error Rate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import equal_error_rate, roc_curve
from repro.metrics.eer import verification_trials


class TestRocCurve:
    def test_endpoints(self):
        curve = roc_curve([0.9, 0.8], [0.1, 0.2])
        # Accept-everything end: FPR 1, FNR 0; reject-everything end: FPR 0, FNR 1.
        assert curve.false_positive_rate[0] == 1.0
        assert curve.false_negative_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == 0.0
        assert curve.false_negative_rate[-1] == 1.0

    def test_monotonicity(self):
        rng = np.random.default_rng(0)
        curve = roc_curve(rng.normal(1, 1, 100), rng.normal(0, 1, 100))
        assert (np.diff(curve.false_positive_rate) <= 1e-12).all()
        assert (np.diff(curve.false_negative_rate) >= -1e-12).all()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            roc_curve([], [0.5])


class TestEqualErrorRate:
    def test_perfect_separation_gives_zero(self):
        assert equal_error_rate([0.9, 0.95, 0.99], [0.01, 0.05, 0.1]) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_fully_overlapping_gives_half(self):
        scores = np.linspace(0, 1, 50)
        assert equal_error_rate(scores, scores) == pytest.approx(0.5, abs=0.03)

    def test_inverted_scores_give_one(self):
        assert equal_error_rate([0.1, 0.2], [0.8, 0.9]) == pytest.approx(1.0, abs=0.01)

    def test_known_gaussian_overlap(self):
        # Two unit-variance Gaussians 2 sigma apart: EER = Phi(-1) ~ 15.9%.
        rng = np.random.default_rng(7)
        genuine = rng.normal(2.0, 1.0, 4000)
        impostor = rng.normal(0.0, 1.0, 4000)
        assert equal_error_rate(genuine, impostor) == pytest.approx(0.159, abs=0.02)

    @settings(max_examples=20)
    @given(st.integers(5, 200), st.integers(5, 200))
    def test_bounded(self, n_gen, n_imp):
        rng = np.random.default_rng(n_gen * 1000 + n_imp)
        value = equal_error_rate(rng.random(n_gen), rng.random(n_imp))
        assert 0.0 <= value <= 1.0


class TestVerificationTrials:
    def test_splits_genuine_and_impostor(self):
        probs = np.array([[0.7, 0.3], [0.2, 0.8]])
        genuine, impostor = verification_trials(probs, [0, 1])
        assert sorted(genuine.tolist()) == [0.7, 0.8]
        assert sorted(impostor.tolist()) == [0.2, 0.3]

    def test_counts(self):
        rng = np.random.default_rng(0)
        probs = rng.random((10, 4))
        genuine, impostor = verification_trials(probs, rng.integers(0, 4, 10))
        assert genuine.size == 10
        assert impostor.size == 30

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            verification_trials(np.zeros((3, 2)), [0, 1])
