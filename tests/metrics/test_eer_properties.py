"""Property-based tests for the DET curve machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import equal_error_rate, roc_curve

scores = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=80
)


class TestDetCurveProperties:
    @settings(max_examples=40)
    @given(scores, scores)
    def test_eer_bounded(self, genuine, impostor):
        value = equal_error_rate(genuine, impostor)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30)
    @given(scores, scores)
    def test_rates_are_probabilities(self, genuine, impostor):
        curve = roc_curve(genuine, impostor)
        assert (curve.false_positive_rate >= 0).all()
        assert (curve.false_positive_rate <= 1).all()
        assert (curve.false_negative_rate >= 0).all()
        assert (curve.false_negative_rate <= 1).all()

    @settings(max_examples=30)
    @given(scores)
    def test_identical_distributions_give_high_eer(self, values):
        # Same scores for genuine and impostor: EER must be >= ~0.3
        # (cannot be separated; exact value depends on tie handling).
        value = equal_error_rate(values, values)
        assert value >= 0.3

    @settings(max_examples=30)
    @given(scores, st.floats(0.5, 5.0))
    def test_shifting_genuine_up_never_hurts(self, values, shift):
        base = equal_error_rate(values, values)
        shifted = equal_error_rate(np.asarray(values) + shift, values)
        assert shifted <= base + 1e-9
