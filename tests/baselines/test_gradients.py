"""Numerical gradient checks for the baseline architectures.

The shared trainer relies on each baseline's hand-written backward pass;
these tests compare a sample of analytic parameter gradients against
central differences.
"""

import numpy as np
import pytest

from repro.baselines import MGesNet, PanArch, PanArchLSTM, Tesla
from repro.nn.losses import CrossEntropyLoss


def _check_gradients(model, x, y, stride=11, tol=1e-4):
    model.train()
    loss_fn = CrossEntropyLoss()

    def compute_loss():
        logits, _ = model(x)
        return loss_fn(logits, y)

    model.zero_grad()
    logits, _ = model(x)
    loss_fn(logits, y)
    model.backward(loss_fn.backward(), np.zeros_like(logits))
    named = model.named_parameters()
    analytic = {name: p.grad.copy() for name, p in named}

    eps = 1e-6
    checked = 0
    for name, param in named[::2]:
        flat = param.data.ravel()
        for idx in range(0, flat.size, max(flat.size // 4, stride)):
            orig = flat[idx]
            flat[idx] = orig + eps
            up = compute_loss()
            flat[idx] = orig - eps
            down = compute_loss()
            flat[idx] = orig
            numeric = (up - down) / (2 * eps)
            ana = analytic[name].ravel()[idx]
            assert abs(numeric - ana) <= tol * max(1.0, abs(numeric), abs(ana)), (
                f"{type(model).__name__} {name}[{idx}]: numeric {numeric}, analytic {ana}"
            )
            checked += 1
    assert checked >= 5


@pytest.fixture()
def point_batch():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 20, 8))
    x[:, :, 5] = rng.random((4, 20))
    y = np.array([0, 1, 2, 1])
    return x, y


class TestBaselineGradients:
    def test_panarch(self, point_batch):
        x, y = point_batch
        model = PanArch(
            3, num_slices=3, points_per_slice=8, encoder_channels=(8,),
            hidden_dim=10, rng=np.random.default_rng(1),
        )
        _check_gradients(model, x, y)

    def test_tesla(self, point_batch):
        x, y = point_batch
        model = Tesla(
            3, num_neighbors=4, edge_channels=(10,), rng=np.random.default_rng(2)
        )
        _check_gradients(model, x, y)

    def test_mgesnet(self, point_batch):
        x, y = point_batch
        model = MGesNet(3, rng=np.random.default_rng(3))
        _check_gradients(model, x, y, stride=41)

    def test_panarch_lstm(self, point_batch):
        x, y = point_batch
        model = PanArchLSTM(
            3, num_slices=3, points_per_slice=8, encoder_channels=(8,),
            hidden_dim=10, rng=np.random.default_rng(4),
        )
        _check_gradients(model, x, y)
