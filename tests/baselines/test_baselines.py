"""Tests for the four SOTA baseline reimplementations."""

import numpy as np
import pytest

from repro.baselines import (
    MGesNet,
    MSeeNet,
    PanArch,
    PanArchLSTM,
    Tesla,
    position_doppler_profile,
)
from repro.core.trainer import TrainConfig, predict_proba, train_classifier

ALL_BASELINES = [PanArch, PanArchLSTM, Tesla, MGesNet, MSeeNet]


def _separable_data(n=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(scale=0.3, size=(n, 24, 8))
    x[:, :, 5] = rng.random((n, 24))  # phase channel in [0, 1]
    y = np.arange(n) % 2
    x[y == 1, :, 2] += 1.0  # classes separated in height
    x[y == 1, :, 3] += 1.5  # and doppler
    return x, y


class TestContract:
    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_dual_head_contract(self, baseline_cls):
        model = baseline_cls(3, rng=np.random.default_rng(0))
        x, _ = _separable_data(8)
        primary, auxiliary = model(x)
        assert primary.shape == (8, 3)
        np.testing.assert_array_equal(primary, auxiliary)
        assert model.config.aux_weight == 0.0

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_trains_with_shared_trainer(self, baseline_cls):
        x, y = _separable_data(24, seed=1)
        model = baseline_cls(2, rng=np.random.default_rng(1))
        report = train_classifier(
            model, x, y, TrainConfig(epochs=3, batch_size=8, learning_rate=1e-3)
        )
        assert len(report.losses) == 3
        assert np.isfinite(report.losses).all()

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_learns_separable_data(self, baseline_cls):
        x, y = _separable_data(48, seed=2)
        model = baseline_cls(2, rng=np.random.default_rng(2))
        train_classifier(
            model, x, y, TrainConfig(epochs=15, batch_size=12, learning_rate=2e-3, seed=3)
        )
        accuracy = (predict_proba(model, x).argmax(axis=1) == y).mean()
        assert accuracy > 0.85, f"{baseline_cls.__name__} failed to learn: {accuracy}"


class TestPositionDopplerProfile:
    def test_shape(self):
        x, _ = _separable_data(4)
        profile = position_doppler_profile(x)
        assert profile.shape == (4, 2, 16, 16)

    def test_normalised_by_point_count(self):
        x, _ = _separable_data(2)
        profile = position_doppler_profile(x)
        np.testing.assert_allclose(profile.sum(axis=(2, 3)), 1.0)

    def test_doppler_shift_moves_mass(self):
        x = np.zeros((1, 10, 8))
        x[0, :, 1] = 1.2
        x[0, :, 3] = -2.0
        low = position_doppler_profile(x)
        x[0, :, 3] = 2.0
        high = position_doppler_profile(x)
        low_row = np.argmax(low[0, 0].sum(axis=1))
        high_row = np.argmax(high[0, 0].sum(axis=1))
        assert high_row > low_row


class TestPanArchSpecifics:
    def test_slicing_covers_all_phases(self):
        model = PanArch(2, num_slices=4, rng=np.random.default_rng(0))
        x = np.zeros((1, 16, 8))
        x[0, :, 5] = np.linspace(0, 1, 16)
        sliced = model._slice_points(x)
        assert sliced.shape == (1, 4, 8, model.points_per_slice)

    def test_empty_slice_borrows_neighbours(self):
        model = PanArch(2, num_slices=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 16, 8))
        x[0, :, 5] = 0.0  # everything in the first slice
        sliced = model._slice_points(x)
        assert np.isfinite(sliced).all()


class TestTeslaSpecifics:
    def test_phase_scale_changes_neighbourhoods(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 16, 8))
        x[:, :, 5] = rng.random((2, 16))
        near = Tesla(2, phase_scale=0.0, rng=np.random.default_rng(1))
        far = Tesla(2, phase_scale=50.0, rng=np.random.default_rng(1))
        out_near, _ = near(x)
        out_far, _ = far(x)
        assert not np.allclose(out_near, out_far)


class TestPanArchLSTMSpecifics:
    def test_elman_parameters_replaced_by_lstm(self):
        model = PanArchLSTM(2, rng=np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        assert not any(name.startswith(("w_in", "w_rec", "b_rec")) for name in names)
        assert any(name.startswith("lstm.") for name in names)

    def test_differs_from_elman_variant(self):
        x, _ = _separable_data(6, seed=4)
        elman = PanArch(3, rng=np.random.default_rng(5))
        lstm = PanArchLSTM(3, rng=np.random.default_rng(5))
        out_elman, _ = elman(x)
        out_lstm, _ = lstm(x)
        assert out_elman.shape == out_lstm.shape
        assert not np.allclose(out_elman, out_lstm)
