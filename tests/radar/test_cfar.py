"""Tests for the CA-CFAR detectors."""

import numpy as np
import pytest

from repro.radar import ca_cfar_1d, ca_cfar_2d


class TestCfar1d:
    def test_detects_strong_peak(self):
        rng = np.random.default_rng(0)
        power = rng.exponential(1.0, 64)
        power[30] = 500.0
        mask = ca_cfar_1d(power)
        assert mask[30]

    def test_false_alarm_rate_controlled(self):
        rng = np.random.default_rng(1)
        rates = []
        for _ in range(20):
            power = rng.exponential(1.0, 512)
            rates.append(ca_cfar_1d(power, prob_false_alarm=1e-2).mean())
        assert np.mean(rates) < 0.05

    def test_no_detection_on_flat_noise_floor(self):
        mask = ca_cfar_1d(np.ones(64))
        assert not mask.any()

    def test_invalid_pfa_raises(self):
        with pytest.raises(ValueError):
            ca_cfar_1d(np.ones(10), prob_false_alarm=2.0)


class TestCfar2d:
    def test_detects_peak(self):
        rng = np.random.default_rng(2)
        power = rng.exponential(1.0, (32, 64))
        power[10, 20] = 1000.0
        mask = ca_cfar_2d(power)
        assert mask[10, 20]

    def test_masked_cells_are_rare_on_noise(self):
        rng = np.random.default_rng(3)
        power = rng.exponential(1.0, (64, 128))
        mask = ca_cfar_2d(power, prob_false_alarm=1e-4)
        assert mask.mean() < 0.01

    def test_adapts_to_noise_level_step(self):
        # A peak 10x above its LOCAL noise must be found in both halves.
        rng = np.random.default_rng(4)
        power = np.concatenate(
            [rng.exponential(1.0, (32, 32)), rng.exponential(100.0, (32, 32))], axis=1
        )
        power[16, 8] = 400.0  # 400x local
        power[16, 48] = 40000.0  # 400x local
        mask = ca_cfar_2d(power)
        assert mask[16, 8]
        assert mask[16, 48]

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            ca_cfar_2d(np.ones(16))

    def test_output_shape(self):
        power = np.random.default_rng(5).exponential(1.0, (16, 24))
        assert ca_cfar_2d(power).shape == (16, 24)
