"""Property-based tests for scatterer geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.radar import Scatterer, ScattererSet

positions = npst.arrays(
    np.float64,
    st.tuples(st.integers(1, 20), st.just(3)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestScattererSetProperties:
    @settings(max_examples=30)
    @given(positions)
    def test_ranges_nonnegative(self, pos):
        assert (ScattererSet(pos).ranges() >= 0).all()

    @settings(max_examples=30)
    @given(positions)
    def test_static_set_has_zero_radial_velocity(self, pos):
        np.testing.assert_allclose(ScattererSet(pos).radial_velocities(), 0.0)

    @settings(max_examples=20)
    @given(positions, st.floats(0.1, 3.0))
    def test_radial_velocity_bounded_by_speed(self, pos, speed):
        rng = np.random.default_rng(0)
        vel = rng.normal(size=pos.shape)
        norms = np.linalg.norm(vel, axis=1, keepdims=True)
        vel = vel / np.maximum(norms, 1e-12) * speed
        radial = ScattererSet(pos, velocities=vel).radial_velocities()
        assert (np.abs(radial) <= speed + 1e-9).all()

    def test_from_scatterers_round_trip(self):
        scatterers = [
            Scatterer(position=(1.0, 2.0, 0.5), velocity=(0.1, 0.0, 0.0), rcs=2.0),
            Scatterer(position=(0.0, 3.0, -0.5), rcs=0.5),
        ]
        bundle = ScattererSet.from_scatterers(scatterers)
        assert len(bundle) == 2
        np.testing.assert_allclose(bundle.positions[0], [1.0, 2.0, 0.5])
        np.testing.assert_allclose(bundle.rcs, [2.0, 0.5])

    def test_empty_from_scatterers(self):
        assert len(ScattererSet.from_scatterers([])) == 0

    def test_misaligned_velocities_raise(self):
        with pytest.raises(ValueError):
            ScattererSet(np.zeros((2, 3)), velocities=np.zeros((3, 3)))

    def test_scatterer_at_origin_zero_radial(self):
        bundle = ScattererSet(
            np.zeros((1, 3)), velocities=np.array([[1.0, 1.0, 1.0]])
        )
        assert bundle.radial_velocities()[0] == 0.0
