"""Tests for the FFT processing chain on synthetic chirp returns."""

import numpy as np
import pytest

from repro.radar import (
    IWR6843_CONFIG,
    ScattererSet,
    range_doppler_map,
    synthesize_frame,
)
from repro.radar.processing import (
    doppler_bin_to_velocity,
    doppler_fft,
    range_bin_to_meters,
    range_fft,
    remove_static_clutter,
)


def _single_target(range_m=2.0, velocity=1.0):
    return ScattererSet(
        positions=np.array([[0.0, range_m, 0.0]]),
        velocities=np.array([[0.0, velocity, 0.0]]),
        rcs=np.array([5.0]),
    )


class TestRangeFft:
    def test_peak_at_target_range(self):
        config = IWR6843_CONFIG
        cube = synthesize_frame(_single_target(range_m=3.0, velocity=0.5), config,
                                rng=np.random.default_rng(0))
        profile = np.abs(range_fft(cube, config)).sum(axis=(0, 1))
        peak_bin = int(np.argmax(profile))
        assert range_bin_to_meters(peak_bin, config) == pytest.approx(3.0, abs=0.15)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            range_fft(np.zeros((4, 8)), IWR6843_CONFIG)


class TestDopplerChain:
    def test_peak_at_target_velocity(self):
        config = IWR6843_CONFIG
        cube = synthesize_frame(_single_target(range_m=2.0, velocity=1.2), config,
                                rng=np.random.default_rng(1))
        spectrum = doppler_fft(range_fft(cube, config))
        power = (np.abs(spectrum) ** 2).sum(axis=0)
        dop_bin, _rng_bin = np.unravel_index(np.argmax(power), power.shape)
        velocity = doppler_bin_to_velocity(int(dop_bin), power.shape[0], config)
        # Receding target (positive radial velocity) at ~1.2 m/s.
        assert velocity == pytest.approx(1.2, abs=config.velocity_resolution_ms)

    def test_static_clutter_removed(self):
        config = IWR6843_CONFIG
        static = ScattererSet(positions=np.array([[0.0, 2.0, 0.0]]), rcs=np.array([50.0]))
        cube = synthesize_frame(static, config, rng=np.random.default_rng(2))
        with_clutter = range_doppler_map(cube, config, clutter_removal=False)
        without = range_doppler_map(cube, config, clutter_removal=True)
        assert without.max() < 0.01 * with_clutter.max()

    def test_mean_subtraction_cancels_constant_returns(self):
        profile = np.ones((2, 8, 16), dtype=complex)
        cleaned = remove_static_clutter(profile)
        assert np.abs(cleaned).max() == 0.0

    def test_mean_subtraction_preserves_oscillation(self):
        chirps = np.arange(8)
        oscillation = np.exp(2j * np.pi * 0.25 * chirps)[None, :, None]
        profile = np.broadcast_to(oscillation, (2, 8, 16))
        cleaned = remove_static_clutter(profile)
        np.testing.assert_allclose(np.abs(cleaned), np.abs(profile), atol=1e-9)


class TestBinConversions:
    def test_doppler_bin_zero_velocity_at_center(self):
        assert doppler_bin_to_velocity(8, 16, IWR6843_CONFIG) == 0.0

    def test_range_bin_linear(self):
        assert range_bin_to_meters(10, IWR6843_CONFIG) == pytest.approx(0.4, abs=0.01)
