"""Cross-fidelity test: FastRadar must statistically match SignalLevelRadar.

DESIGN.md promises that the two radar backends agree on detection
statistics for identical scenes; dataset builders rely on FastRadar
being a faithful stand-in for the full FMCW chain.
"""

import numpy as np
import pytest

from repro.radar import FastRadar, IWR6843_CONFIG, ScattererSet, SignalLevelRadar


def _hand_like_scene(rng, num=8, speed=1.0):
    """A blob of hand/arm-like scatterers moving radially."""
    center = np.array([0.2, 1.2, 0.0])
    positions = center + rng.normal(scale=0.08, size=(num, 3))
    velocities = np.tile([0.0, speed, 0.1], (num, 1)) + rng.normal(scale=0.05, size=(num, 3))
    return ScattererSet(positions=positions, velocities=velocities, rcs=np.full(num, 0.4))


@pytest.mark.slow
class TestFidelity:
    def test_detection_counts_comparable(self):
        rng = np.random.default_rng(0)
        signal = SignalLevelRadar(IWR6843_CONFIG, seed=1)
        fast = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=2)
        signal_counts = []
        fast_counts = []
        for _ in range(6):
            scene = _hand_like_scene(rng)
            signal_counts.append(signal.capture_frame(scene).num_points)
            fast_counts.append(fast.capture_frame(scene).num_points)
        # Same order of magnitude: within a factor of ~2.5 on average.
        s_mean = max(np.mean(signal_counts), 1e-9)
        f_mean = max(np.mean(fast_counts), 1e-9)
        assert 0.4 < f_mean / s_mean < 2.5

    def test_spatial_centroids_agree(self):
        rng = np.random.default_rng(3)
        signal = SignalLevelRadar(IWR6843_CONFIG, seed=4)
        fast = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=5)
        signal_points, fast_points = [], []
        for _ in range(6):
            scene = _hand_like_scene(rng)
            s_frame = signal.capture_frame(scene)
            f_frame = fast.capture_frame(scene)
            if s_frame.num_points:
                signal_points.append(s_frame.xyz)
            if f_frame.num_points:
                fast_points.append(f_frame.xyz)
        s_centroid = np.vstack(signal_points).mean(axis=0)
        f_centroid = np.vstack(fast_points).mean(axis=0)
        np.testing.assert_allclose(s_centroid, f_centroid, atol=0.3)

    def test_doppler_sign_agrees(self):
        rng = np.random.default_rng(6)
        signal = SignalLevelRadar(IWR6843_CONFIG, seed=7)
        fast = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=8)
        scene = _hand_like_scene(rng, speed=1.5)
        s_frame = signal.capture_frame(scene)
        f_frame = fast.capture_frame(scene)
        assert s_frame.num_points and f_frame.num_points
        # Strongest detection (weak CFAR hits can be sidelobes).
        assert s_frame.doppler[np.argmax(s_frame.intensity)] > 0
        assert np.median(f_frame.doppler) > 0
