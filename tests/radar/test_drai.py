"""Dynamic range-angle image construction and background subtraction."""

import numpy as np
import pytest

from repro.radar.drai import DRAIParams, DRAIStream, drai_sequence, range_angle_image
from repro.radar.pointcloud import Frame


def _frame_at(x: float, y: float, intensity: float = 2.0) -> Frame:
    return Frame(points=np.array([[x, y, 0.0, 0.5, intensity]]))


class TestParams:
    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            DRAIParams(num_range_bins=0)
        with pytest.raises(ValueError):
            DRAIParams(num_angle_bins=-1)

    def test_rejects_bad_extents(self):
        with pytest.raises(ValueError):
            DRAIParams(max_range_m=0.0)
        with pytest.raises(ValueError):
            DRAIParams(max_angle_rad=-0.1)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DRAIParams(background_alpha=0.0)
        with pytest.raises(ValueError):
            DRAIParams(background_alpha=1.5)


class TestRangeAngleImage:
    def test_empty_frame_gives_zero_image(self):
        image = range_angle_image(Frame.empty())
        assert image.shape == (32, 32)
        assert np.all(image == 0.0)

    def test_intensity_lands_in_one_cell(self):
        image = range_angle_image(_frame_at(0.0, 1.2, intensity=3.0))
        assert image.sum() == pytest.approx(3.0)
        assert (image > 0).sum() == 1

    def test_boresight_point_maps_to_center_angle(self):
        params = DRAIParams(num_angle_bins=33)
        image = range_angle_image(_frame_at(0.0, 2.0), params)
        _, angle_idx = np.unravel_index(image.argmax(), image.shape)
        assert angle_idx == 16  # middle bin of 33

    def test_farther_point_maps_to_larger_range_bin(self):
        near = range_angle_image(_frame_at(0.0, 1.0))
        far = range_angle_image(_frame_at(0.0, 4.0))
        near_bin = np.unravel_index(near.argmax(), near.shape)[0]
        far_bin = np.unravel_index(far.argmax(), far.shape)[0]
        assert far_bin > near_bin

    def test_lateral_offset_moves_angle_bin(self):
        left = range_angle_image(_frame_at(-1.0, 2.0))
        right = range_angle_image(_frame_at(1.0, 2.0))
        left_bin = np.unravel_index(left.argmax(), left.shape)[1]
        right_bin = np.unravel_index(right.argmax(), right.shape)[1]
        assert right_bin > left_bin

    def test_out_of_grid_points_clip_to_border(self):
        image = range_angle_image(_frame_at(0.0, 50.0))
        assert image[-1].sum() > 0.0


class TestDRAIStream:
    def test_first_frame_returns_zeros(self):
        stream = DRAIStream()
        out = stream.push(_frame_at(0.0, 1.5))
        assert np.all(out == 0.0)
        assert stream.background is not None

    def test_static_reflector_vanishes(self):
        """A reflector that never moves converges into the background."""
        stream = DRAIStream(DRAIParams(background_alpha=0.5))
        energies = [stream.push(_frame_at(0.3, 2.0)).sum() for _ in range(20)]
        assert energies[-1] < 1e-3

    def test_mover_stays_visible(self):
        stream = DRAIStream(DRAIParams(background_alpha=0.2))
        stream.push(_frame_at(0.0, 1.0))
        energies = []
        for i in range(1, 15):
            energies.append(stream.push(_frame_at(0.0, 1.0 + 0.25 * i)).sum())
        assert np.mean(energies) > 0.5

    def test_reset_clears_background(self):
        stream = DRAIStream()
        stream.push(_frame_at(0.0, 1.0))
        stream.reset()
        assert stream.background is None

    def test_background_property_returns_copy(self):
        stream = DRAIStream()
        stream.push(_frame_at(0.0, 1.0))
        snapshot = stream.background
        snapshot.fill(99.0)
        assert stream.background.max() < 99.0


class TestDRAISequence:
    def test_shape(self):
        frames = [_frame_at(0.0, 1.0 + 0.1 * i) for i in range(6)]
        out = drai_sequence(frames, DRAIParams(num_range_bins=8, num_angle_bins=8))
        assert out.shape == (6, 8, 8)

    def test_all_nonnegative(self):
        frames = [_frame_at(0.0, 1.0 + 0.1 * i) for i in range(6)]
        out = drai_sequence(frames)
        assert np.all(out >= 0.0)
