"""Tests for Frame and PointCloud containers."""

import numpy as np
import pytest

from repro.radar import Frame, PointCloud


class TestFrame:
    def test_accessors(self):
        frame = Frame(points=np.array([[1.0, 2, 3, 4, 5]]))
        np.testing.assert_array_equal(frame.xyz, [[1.0, 2, 3]])
        assert frame.doppler[0] == 4.0
        assert frame.intensity[0] == 5.0
        assert frame.num_points == 1

    def test_empty(self):
        frame = Frame.empty(timestamp_s=1.5)
        assert frame.num_points == 0
        assert frame.timestamp_s == 1.5

    def test_reshapes_flat_input(self):
        frame = Frame(points=np.zeros(5))
        assert frame.points.shape == (1, 5)


class TestPointCloud:
    def test_from_frames_aggregates(self):
        frames = [
            Frame(points=np.ones((2, 5))),
            Frame.empty(),
            Frame(points=2 * np.ones((3, 5))),
        ]
        cloud = PointCloud.from_frames(frames, start_index=10)
        assert cloud.num_points == 5
        np.testing.assert_array_equal(np.unique(cloud.frame_indices), [10, 12])

    def test_num_frames_spans_range(self):
        cloud = PointCloud(points=np.zeros((2, 5)), frame_indices=np.array([3, 7]))
        assert cloud.num_frames == 5

    def test_empty_from_frames(self):
        cloud = PointCloud.from_frames([Frame.empty(), Frame.empty()])
        assert cloud.num_points == 0
        assert cloud.num_frames == 0

    def test_select(self):
        cloud = PointCloud(points=np.arange(10.0).reshape(2, 5))
        picked = cloud.select(np.array([True, False]))
        assert picked.num_points == 1
        np.testing.assert_array_equal(picked.points[0], np.arange(5.0))

    def test_select_bad_mask_raises(self):
        cloud = PointCloud(points=np.zeros((2, 5)))
        with pytest.raises(ValueError):
            cloud.select(np.array([True]))

    def test_misaligned_indices_raise(self):
        with pytest.raises(ValueError):
            PointCloud(points=np.zeros((2, 5)), frame_indices=np.array([1]))


class TestPointCloudProperties:
    def test_from_frames_conserves_points(self):
        rng = np.random.default_rng(0)
        frames = [
            Frame(points=rng.normal(size=(int(rng.integers(0, 6)), 5)))
            for _ in range(12)
        ]
        cloud = PointCloud.from_frames(frames)
        assert cloud.num_points == sum(f.num_points for f in frames)

    def test_from_frames_indices_match_source_frame(self):
        frames = [
            Frame(points=np.full((2, 5), 0.0)),
            Frame.empty(),
            Frame(points=np.full((3, 5), 2.0)),
        ]
        cloud = PointCloud.from_frames(frames, start_index=10)
        np.testing.assert_array_equal(cloud.frame_indices, [10, 10, 12, 12, 12])
        np.testing.assert_array_equal(cloud.points[cloud.frame_indices == 12, 0], 2.0)

    def test_select_composition_equals_combined_mask(self):
        rng = np.random.default_rng(1)
        cloud = PointCloud(points=rng.normal(size=(20, 5)))
        mask_a = rng.random(20) < 0.7
        mask_b = rng.random(int(mask_a.sum())) < 0.5
        step_wise = cloud.select(mask_a).select(mask_b)
        combined = np.zeros(20, dtype=bool)
        combined[np.flatnonzero(mask_a)[mask_b]] = True
        np.testing.assert_array_equal(step_wise.points, cloud.select(combined).points)

    def test_select_all_false_gives_empty_cloud(self):
        cloud = PointCloud(points=np.ones((5, 5)))
        empty = cloud.select(np.zeros(5, dtype=bool))
        assert empty.num_points == 0
        assert empty.num_frames == 0
