"""Tests for the two radar devices (signal-level and fast)."""

import numpy as np
import pytest

from repro.radar import FastRadar, IWR6843_CONFIG, ScattererSet, SignalLevelRadar
from repro.radar.scatterer import Scatterer


def _moving_target(range_m=2.0, velocity=1.0, rcs=5.0):
    return ScattererSet(
        positions=np.array([[0.3, range_m, 0.1]]),
        velocities=np.array([[0.0, velocity, 0.0]]),
        rcs=np.array([rcs]),
    )


class TestSignalLevelRadar:
    def test_detects_moving_target(self):
        radar = SignalLevelRadar(IWR6843_CONFIG, seed=0)
        frame = radar.capture_frame(_moving_target())
        assert frame.num_points >= 1
        best = frame.points[np.argmax(frame.intensity)]
        measured_range = np.linalg.norm(best[:3])
        assert measured_range == pytest.approx(np.linalg.norm([0.3, 2.0, 0.1]), abs=0.2)

    def test_static_target_suppressed(self):
        radar = SignalLevelRadar(IWR6843_CONFIG, seed=1)
        static = ScattererSet(positions=np.array([[0.0, 2.0, 0.0]]), rcs=np.array([20.0]))
        frame = radar.capture_frame(static)
        assert frame.num_points <= 1  # nothing but the odd false alarm

    def test_timestamps_advance(self):
        radar = SignalLevelRadar(IWR6843_CONFIG, seed=2)
        empty = ScattererSet(np.zeros((0, 3)))
        t0 = radar.capture_frame(empty).timestamp_s
        t1 = radar.capture_frame(empty).timestamp_s
        assert t1 - t0 == pytest.approx(IWR6843_CONFIG.frame_interval_s)


class TestFastRadar:
    def test_detects_moving_target(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=0)
        frame = radar.capture_frame(_moving_target())
        assert frame.num_points == 1
        measured_range = np.linalg.norm(frame.xyz[0])
        assert measured_range == pytest.approx(np.linalg.norm([0.3, 2.0, 0.1]), abs=0.1)
        assert frame.doppler[0] == pytest.approx(1.0, abs=0.4)

    def test_static_scatterer_removed(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=1)
        static = ScattererSet(positions=np.array([[0.0, 2.0, 0.0]]), rcs=np.array([20.0]))
        assert radar.capture_frame(static).num_points == 0

    def test_clutter_removal_disabled_keeps_static(self):
        radar = FastRadar(
            IWR6843_CONFIG, clutter_removal=False, false_alarms_per_frame=0.0, seed=2
        )
        static = ScattererSet(positions=np.array([[0.0, 1.5, 0.0]]), rcs=np.array([20.0]))
        assert radar.capture_frame(static).num_points == 1

    def test_detection_probability_decays_with_range(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=3)
        counts = {}
        for distance in (1.2, 4.8):
            detected = 0
            for _ in range(150):
                frame = radar.capture_frame(_moving_target(range_m=distance, rcs=0.3))
                detected += frame.num_points
            counts[distance] = detected
        assert counts[4.8] < counts[1.2]

    def test_false_alarms_appear(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=3.0, seed=4)
        empty = ScattererSet(np.zeros((0, 3)))
        total = sum(radar.capture_frame(empty).num_points for _ in range(30))
        assert total > 30  # ~90 expected

    def test_range_quantisation(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=5)
        frame = radar.capture_frame(_moving_target())
        measured_range = np.linalg.norm(frame.xyz[0])
        # Ranges land on multiples of the range resolution.
        ratio = measured_range / IWR6843_CONFIG.range_resolution_m
        assert abs(ratio - round(ratio)) < 0.35  # angle noise perturbs slightly

    def test_out_of_range_dropped(self):
        radar = FastRadar(IWR6843_CONFIG, false_alarms_per_frame=0.0, seed=6)
        far = _moving_target(range_m=20.0)
        assert radar.capture_frame(far).num_points == 0


class TestScattererValidation:
    def test_negative_rcs_rejected(self):
        with pytest.raises(ValueError):
            Scatterer(position=(0, 1, 0), rcs=-1.0)
        with pytest.raises(ValueError):
            ScattererSet(np.zeros((1, 3)), rcs=np.array([0.0]))

    def test_radial_velocity_sign(self):
        receding = ScattererSet(
            positions=np.array([[0.0, 2.0, 0.0]]), velocities=np.array([[0.0, 1.0, 0.0]])
        )
        approaching = ScattererSet(
            positions=np.array([[0.0, 2.0, 0.0]]), velocities=np.array([[0.0, -1.0, 0.0]])
        )
        assert receding.radial_velocities()[0] > 0
        assert approaching.radial_velocities()[0] < 0

    def test_merge(self):
        a = ScattererSet(np.zeros((2, 3)))
        b = ScattererSet(np.ones((3, 3)))
        assert len(a.merged_with(b)) == 5
