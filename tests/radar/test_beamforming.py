"""Capon vs FFT beamforming: steering math, peaks, and resolution."""

import numpy as np
import pytest

from repro.radar.beamforming import (
    capon_spectrum,
    covariance_matrix,
    estimate_directions,
    fft_spectrum,
    simulate_two_source_snapshots,
    steering_vector,
)

U_GRID = np.linspace(-0.95, 0.95, 381)


class TestSteeringVector:
    def test_boresight_is_all_ones(self):
        np.testing.assert_allclose(steering_vector(0.0, 4), np.ones(4))

    def test_unit_modulus(self):
        np.testing.assert_allclose(np.abs(steering_vector(0.6, 8)), 1.0)

    def test_phase_progression(self):
        a = steering_vector(0.5, 4)
        phases = np.angle(a[1:] / a[:-1])
        np.testing.assert_allclose(phases, np.pi * 0.5)


class TestCovariance:
    def test_rejects_nonpositive_loading(self):
        with pytest.raises(ValueError):
            covariance_matrix(np.ones((4, 4)), diagonal_loading=0.0)

    def test_hermitian(self):
        rng = np.random.default_rng(0)
        snaps = rng.normal(size=(32, 4)) + 1j * rng.normal(size=(32, 4))
        cov = covariance_matrix(snaps)
        np.testing.assert_allclose(cov, cov.conj().T)

    def test_positive_definite(self):
        rng = np.random.default_rng(1)
        snaps = rng.normal(size=(8, 4)) + 1j * rng.normal(size=(8, 4))
        eigenvalues = np.linalg.eigvalsh(covariance_matrix(snaps))
        assert np.all(eigenvalues > 0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            covariance_matrix(np.ones((2, 3, 4)))


class TestSingleSource:
    @pytest.mark.parametrize("truth", [-0.5, 0.0, 0.35, 0.7])
    @pytest.mark.parametrize("method", [fft_spectrum, capon_spectrum])
    def test_peak_at_source_direction(self, truth, method):
        rng = np.random.default_rng(7)
        snaps = simulate_two_source_snapshots(
            truth, truth, num_snapshots=64, snr_db=25.0, rng=rng
        )
        spectrum = method(snaps, U_GRID)
        estimate = estimate_directions(spectrum, U_GRID, 1)[0]
        assert estimate == pytest.approx(truth, abs=0.06)


class TestResolution:
    def test_capon_separates_sources_fft_merges(self):
        """Two sources 0.35 apart in u: below the 4-element FFT limit
        (Rayleigh ~ 2/N = 0.5) but within Capon's reach."""
        rng = np.random.default_rng(3)
        u1, u2 = -0.175, 0.175
        snaps = simulate_two_source_snapshots(
            u1, u2, num_snapshots=256, snr_db=30.0, rng=rng
        )
        capon = capon_spectrum(snaps, U_GRID, diagonal_loading=1e-4)
        capon_peaks = sorted(estimate_directions(capon, U_GRID, 2))
        assert capon_peaks[0] == pytest.approx(u1, abs=0.08)
        assert capon_peaks[1] == pytest.approx(u2, abs=0.08)

        # The conventional spectrum puts its global peak between the two
        # sources — it cannot resolve them at this spacing.
        fft = fft_spectrum(snaps, U_GRID)
        fft_peak = float(U_GRID[np.argmax(fft)])
        assert abs(fft_peak) < 0.1

    def test_wide_separation_resolved_by_both(self):
        rng = np.random.default_rng(4)
        u1, u2 = -0.6, 0.6
        snaps = simulate_two_source_snapshots(
            u1, u2, num_snapshots=128, snr_db=25.0, rng=rng
        )
        for method in (fft_spectrum, capon_spectrum):
            peaks = sorted(estimate_directions(method(snaps, U_GRID), U_GRID, 2))
            assert peaks[0] == pytest.approx(u1, abs=0.1)
            assert peaks[1] == pytest.approx(u2, abs=0.1)


class TestEstimateDirections:
    def test_rejects_misaligned_grid(self):
        with pytest.raises(ValueError):
            estimate_directions(np.ones(10), np.linspace(-1, 1, 11))

    def test_rejects_nonpositive_sources(self):
        with pytest.raises(ValueError):
            estimate_directions(np.ones(10), np.linspace(-1, 1, 10), 0)

    def test_flat_spectrum_falls_back_to_argmax(self):
        out = estimate_directions(np.ones(10), np.linspace(-1, 1, 10), 1)
        assert len(out) == 1

    def test_orders_peaks_by_power(self):
        grid = np.linspace(-1, 1, 201)
        spectrum = np.exp(-((grid + 0.5) ** 2) / 0.001) + 2.0 * np.exp(
            -((grid - 0.5) ** 2) / 0.001
        )
        peaks = estimate_directions(spectrum, grid, 2)
        assert peaks[0] == pytest.approx(0.5, abs=0.02)
        assert peaks[1] == pytest.approx(-0.5, abs=0.02)


class TestMusic:
    def test_rejects_bad_num_sources(self):
        rng = np.random.default_rng(0)
        snaps = simulate_two_source_snapshots(0.0, 0.0, rng=rng)
        from repro.radar.beamforming import music_spectrum

        with pytest.raises(ValueError):
            music_spectrum(snaps, U_GRID, num_sources=0)
        with pytest.raises(ValueError):
            music_spectrum(snaps, U_GRID, num_sources=4)

    @pytest.mark.parametrize("truth", [-0.5, 0.0, 0.4])
    def test_single_source_peak(self, truth):
        from repro.radar.beamforming import music_spectrum

        rng = np.random.default_rng(5)
        snaps = simulate_two_source_snapshots(
            truth, truth, num_snapshots=128, snr_db=25.0, rng=rng
        )
        spectrum = music_spectrum(snaps, U_GRID, num_sources=1)
        estimate = estimate_directions(spectrum, U_GRID, 1)[0]
        assert estimate == pytest.approx(truth, abs=0.06)

    def test_resolves_close_sources(self):
        from repro.radar.beamforming import music_spectrum

        rng = np.random.default_rng(6)
        u1, u2 = -0.175, 0.175
        snaps = simulate_two_source_snapshots(
            u1, u2, num_snapshots=256, snr_db=30.0, rng=rng
        )
        spectrum = music_spectrum(snaps, U_GRID, num_sources=2)
        peaks = sorted(estimate_directions(spectrum, U_GRID, 2))
        assert peaks[0] == pytest.approx(u1, abs=0.08)
        assert peaks[1] == pytest.approx(u2, abs=0.08)
