"""Tests for raw FMCW frame synthesis."""

import numpy as np

from repro.radar import IWR6843_CONFIG, ScattererSet, synthesize_frame
from repro.radar.fmcw import NUM_SAMPLES, virtual_array_layout


class TestVirtualArray:
    def test_layout_shape(self):
        layout = virtual_array_layout(IWR6843_CONFIG)
        assert layout.shape == (12, 2)

    def test_half_wavelength_pitch(self):
        layout = virtual_array_layout(IWR6843_CONFIG)
        horizontal = np.unique(layout[:, 0])
        assert np.allclose(np.diff(horizontal), 0.5)


class TestSynthesizeFrame:
    def test_cube_shape(self):
        cube = synthesize_frame(
            ScattererSet(np.zeros((0, 3))), IWR6843_CONFIG, rng=np.random.default_rng(0)
        )
        assert cube.shape == (12, IWR6843_CONFIG.num_chirps_per_frame, NUM_SAMPLES)
        assert cube.dtype == np.complex128

    def test_empty_scene_is_noise_only(self):
        config = IWR6843_CONFIG
        cube = synthesize_frame(ScattererSet(np.zeros((0, 3))), config,
                                rng=np.random.default_rng(1))
        noise_power = np.mean(np.abs(cube) ** 2)
        expected = 10.0 ** (config.noise_floor_db / 10.0)
        assert 0.5 * expected < noise_power < 2.0 * expected

    def test_target_raises_signal_power(self):
        config = IWR6843_CONFIG
        target = ScattererSet(
            positions=np.array([[0.0, 1.5, 0.0]]),
            velocities=np.array([[0.0, 1.0, 0.0]]),
            rcs=np.array([5.0]),
        )
        with_target = synthesize_frame(target, config, rng=np.random.default_rng(2))
        empty = synthesize_frame(ScattererSet(np.zeros((0, 3))), config,
                                 rng=np.random.default_rng(2))
        assert np.mean(np.abs(with_target) ** 2) > 10.0 * np.mean(np.abs(empty) ** 2)

    def test_out_of_range_target_ignored(self):
        config = IWR6843_CONFIG
        target = ScattererSet(positions=np.array([[0.0, 100.0, 0.0]]), rcs=np.array([5.0]))
        cube = synthesize_frame(target, config, rng=np.random.default_rng(3))
        noise_power = np.mean(np.abs(cube) ** 2)
        expected = 10.0 ** (config.noise_floor_db / 10.0)
        assert noise_power < 2.0 * expected
