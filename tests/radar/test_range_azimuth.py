"""Signal-level range-azimuth maps: peak geometry and clutter behaviour."""

import numpy as np
import pytest

from repro.radar.config import RadarConfig
from repro.radar.fmcw import synthesize_frame
from repro.radar.processing import range_azimuth_map
from repro.radar.scatterer import ScattererSet

CONFIG = RadarConfig(num_range_bins=64, noise_floor_db=-110.0)
ANGLE_BINS = 64


def _frame_for(position, velocity=(0.0, -0.8, 0.0), seed=0):
    scatterers = ScattererSet(
        positions=np.array([position]),
        velocities=np.array([velocity]),
        rcs=np.array([1.0]),
    )
    return synthesize_frame(scatterers, CONFIG, rng=np.random.default_rng(seed))


def _peak(ra_map):
    return np.unravel_index(np.argmax(ra_map), ra_map.shape)


class TestRangeAzimuthMap:
    def test_shape(self):
        cube = _frame_for((0.0, 1.5, 0.0))
        ra = range_azimuth_map(cube, CONFIG, num_angle_bins=ANGLE_BINS)
        assert ra.shape == (CONFIG.num_range_bins, ANGLE_BINS)

    def test_rejects_too_few_angle_bins(self):
        cube = _frame_for((0.0, 1.5, 0.0))
        with pytest.raises(ValueError):
            range_azimuth_map(cube, CONFIG, num_angle_bins=2)

    def test_peak_range_bin_matches_target_range(self):
        distance = 1.6
        cube = _frame_for((0.0, distance, 0.0))
        ra = range_azimuth_map(cube, CONFIG, num_angle_bins=ANGLE_BINS)
        range_bin, _ = _peak(ra)
        expected = distance / CONFIG.range_resolution_m
        assert range_bin == pytest.approx(expected, abs=2.0)

    def test_boresight_target_peaks_at_center_angle(self):
        cube = _frame_for((0.0, 1.5, 0.0))
        ra = range_azimuth_map(cube, CONFIG, num_angle_bins=ANGLE_BINS)
        _, angle_bin = _peak(ra)
        assert abs(angle_bin - ANGLE_BINS // 2) <= 2

    def test_off_axis_target_shifts_angle_peak(self):
        left = _frame_for((-1.0, 1.5, 0.0), seed=1)
        right = _frame_for((1.0, 1.5, 0.0), seed=2)
        _, left_bin = _peak(range_azimuth_map(left, CONFIG, num_angle_bins=ANGLE_BINS))
        _, right_bin = _peak(range_azimuth_map(right, CONFIG, num_angle_bins=ANGLE_BINS))
        assert left_bin != right_bin
        center = ANGLE_BINS // 2
        assert (left_bin - center) * (right_bin - center) < 0  # opposite sides

    def test_static_target_suppressed_by_clutter_removal(self):
        static = _frame_for((0.0, 1.5, 0.0), velocity=(0.0, 0.0, 0.0), seed=3)
        with_removal = range_azimuth_map(static, CONFIG, num_angle_bins=ANGLE_BINS)
        without = range_azimuth_map(
            static, CONFIG, num_angle_bins=ANGLE_BINS, clutter_removal=False
        )
        assert with_removal.max() < 1e-3 * without.max()

    def test_moving_target_survives_clutter_removal(self):
        cube = _frame_for((0.0, 1.5, 0.0), velocity=(0.0, -1.0, 0.0), seed=4)
        with_removal = range_azimuth_map(cube, CONFIG, num_angle_bins=ANGLE_BINS)
        without = range_azimuth_map(
            cube, CONFIG, num_angle_bins=ANGLE_BINS, clutter_removal=False
        )
        assert with_removal.max() > 0.05 * without.max()

    def test_power_is_nonnegative(self):
        cube = _frame_for((0.5, 2.0, 0.1), seed=5)
        ra = range_azimuth_map(cube, CONFIG, num_angle_bins=ANGLE_BINS)
        assert np.all(ra >= 0.0)
