"""Tests for virtual-array angle estimation."""

import numpy as np
import pytest

from repro.radar import IWR6843_CONFIG
from repro.radar.fmcw import virtual_array_layout
from repro.radar.processing import angle_fft


def _snapshot_for_direction(u, w, config=IWR6843_CONFIG):
    """Ideal antenna snapshot for direction cosines (u, w)."""
    layout = virtual_array_layout(config)
    phases = 2.0 * np.pi * (layout[:, 0] * u + layout[:, 1] * w)
    return np.exp(1j * phases)


class TestAngleFft:
    @pytest.mark.parametrize("u,w", [(0.0, 0.0), (0.3, 0.0), (0.0, 0.25), (-0.4, 0.2)])
    def test_recovers_direction(self, u, w):
        snapshot = _snapshot_for_direction(u, w)
        est_u, est_w = angle_fft(snapshot, IWR6843_CONFIG, zero_pad=64)
        # Aperture is small (4 x 3 elements): allow a beamwidth of error.
        assert est_u == pytest.approx(u, abs=0.12)
        assert est_w == pytest.approx(w, abs=0.2)

    def test_boresight_target(self):
        snapshot = _snapshot_for_direction(0.0, 0.0)
        est_u, est_w = angle_fft(snapshot, IWR6843_CONFIG, zero_pad=64)
        assert abs(est_u) < 0.05
        assert abs(est_w) < 0.05

    def test_noisy_snapshot_still_close(self):
        rng = np.random.default_rng(0)
        snapshot = _snapshot_for_direction(0.3, -0.1)
        noisy = snapshot + 0.1 * (rng.normal(size=12) + 1j * rng.normal(size=12))
        est_u, est_w = angle_fft(noisy, IWR6843_CONFIG, zero_pad=64)
        assert est_u == pytest.approx(0.3, abs=0.15)

    def test_left_right_distinguished(self):
        left = angle_fft(_snapshot_for_direction(-0.4, 0.0), IWR6843_CONFIG, zero_pad=64)
        right = angle_fft(_snapshot_for_direction(0.4, 0.0), IWR6843_CONFIG, zero_pad=64)
        assert left[0] < 0 < right[0]
