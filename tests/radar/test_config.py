"""Tests that the radar configuration reproduces the paper's figures (SV)."""

import pytest

from repro.radar import IWR6843_CONFIG, RadarConfig


class TestIWR6843Defaults:
    def test_range_resolution(self):
        assert IWR6843_CONFIG.range_resolution_m == pytest.approx(0.04, abs=0.001)

    def test_max_range(self):
        assert IWR6843_CONFIG.max_range_m == pytest.approx(8.2, abs=0.05)

    def test_max_velocity(self):
        assert IWR6843_CONFIG.max_velocity_ms == pytest.approx(2.7, abs=0.2)

    def test_velocity_resolution(self):
        assert IWR6843_CONFIG.velocity_resolution_ms == pytest.approx(0.34, abs=0.03)

    def test_antennas(self):
        assert IWR6843_CONFIG.num_tx == 3
        assert IWR6843_CONFIG.num_rx == 4
        assert IWR6843_CONFIG.num_virtual_antennas == 12

    def test_frame_rate(self):
        assert IWR6843_CONFIG.frame_rate_hz == 10.0
        assert IWR6843_CONFIG.frame_interval_s == pytest.approx(0.1)

    def test_rf_band(self):
        assert 60e9 <= IWR6843_CONFIG.start_frequency_hz
        assert IWR6843_CONFIG.start_frequency_hz + IWR6843_CONFIG.bandwidth_hz <= 64.1e9

    def test_mounting_height(self):
        assert IWR6843_CONFIG.mounting_height_m == pytest.approx(1.25)


class TestValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            RadarConfig(start_frequency_hz=0.0)

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            RadarConfig(num_range_bins=0)

    def test_rejects_bad_antennas(self):
        with pytest.raises(ValueError):
            RadarConfig(num_tx=0)

    def test_rejects_bad_frame_rate(self):
        with pytest.raises(ValueError):
            RadarConfig(frame_rate_hz=-1.0)
