"""Property-based tests on the gesture synthesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.gestures.synthesis import _interpolate_waypoints, _personalized_waypoints
from repro.radar import FastRadar, IWR6843_CONFIG


class TestInterpolationProperties:
    @settings(max_examples=25)
    @given(st.integers(2, 8), st.floats(0.0, 1.0))
    def test_outputs_on_path_bounding_box(self, num_waypoints, smoothness):
        rng = np.random.default_rng(num_waypoints)
        waypoints = rng.normal(size=(num_waypoints, 3))
        phases = np.linspace(0, 1, 17)
        out = _interpolate_waypoints(waypoints, phases, smoothness)
        # Linear interpolation between waypoints cannot leave their hull;
        # the bounding box is a cheap outer approximation of the hull.
        assert (out >= waypoints.min(axis=0) - 1e-9).all()
        assert (out <= waypoints.max(axis=0) + 1e-9).all()

    @settings(max_examples=25)
    @given(st.floats(0.0, 1.0))
    def test_total_path_length_preserved(self, smoothness):
        waypoints = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 2.0, 0]])
        phases = np.linspace(0, 1, 200)
        out = _interpolate_waypoints(waypoints, phases, smoothness)
        length = np.linalg.norm(np.diff(out, axis=0), axis=1).sum()
        assert length == pytest.approx(3.0, abs=0.01)


class TestPersonalization:
    def test_taller_user_reaches_further(self):
        users = sorted(generate_users(30, seed=0), key=lambda u: u.arm_length_m)
        short, tall = users[0], users[-1]
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        wp_short = _personalized_waypoints(ASL_GESTURES["ahead"], short, "right", rng_a, 0.0)
        wp_tall = _personalized_waypoints(ASL_GESTURES["ahead"], tall, "right", rng_b, 0.0)
        reach_short = np.linalg.norm(wp_short, axis=1).max()
        reach_tall = np.linalg.norm(wp_tall, axis=1).max()
        assert reach_tall > reach_short

    def test_same_user_same_seed_is_deterministic(self):
        user = generate_users(1, seed=2)[0]
        a = _personalized_waypoints(
            ASL_GESTURES["push"], user, "right", np.random.default_rng(3), 1.0
        )
        b = _personalized_waypoints(
            ASL_GESTURES["push"], user, "right", np.random.default_rng(3), 1.0
        )
        np.testing.assert_array_equal(a, b)

    def test_rep_jitter_changes_interior_waypoints(self):
        user = generate_users(1, seed=2)[0]
        a = _personalized_waypoints(
            ASL_GESTURES["push"], user, "right", np.random.default_rng(3), 1.0
        )
        b = _personalized_waypoints(
            ASL_GESTURES["push"], user, "right", np.random.default_rng(4), 1.0
        )
        assert not np.allclose(a[1:-1], b[1:-1])
        np.testing.assert_allclose(a[0], b[0])  # rest pose is stable

    def test_left_handed_user_mirrors_single_arm(self):
        users = generate_users(60, seed=5)
        lefty = next(u for u in users if u.handedness < 0)
        righty = next(u for u in users if u.handedness > 0)
        wp_left = _personalized_waypoints(
            ASL_GESTURES["away"], lefty, "right", np.random.default_rng(0), 0.0
        )
        wp_right = _personalized_waypoints(
            ASL_GESTURES["away"], righty, "right", np.random.default_rng(0), 0.0
        )
        # 'away' sweeps to the dominant side: opposite x signs at the apex.
        assert np.sign(wp_left[1:-1, 0].mean()) != np.sign(wp_right[1:-1, 0].mean())


class TestRecordingInvariants:
    @settings(max_examples=6)
    @given(st.sampled_from(["ahead", "push", "zigzag"]), st.integers(0, 2))
    def test_motion_span_inside_recording(self, gesture, user_idx):
        users = generate_users(3, seed=7)
        radar = FastRadar(IWR6843_CONFIG, seed=8)
        recording = perform_gesture(
            users[user_idx],
            ASL_GESTURES[gesture],
            radar,
            ENVIRONMENTS["office"],
            rng=np.random.default_rng(user_idx + 10),
        )
        assert 0 < recording.motion_start_frame < recording.motion_end_frame
        assert recording.motion_end_frame < recording.num_frames
        assert recording.duration_frames >= 4
