"""Tests for simulated participant generation."""

import numpy as np
import pytest

from repro.gestures import UserProfile, generate_users


class TestGenerateUsers:
    def test_count_and_ids(self):
        users = generate_users(5, seed=0)
        assert [u.user_id for u in users] == [0, 1, 2, 3, 4]

    def test_id_offset(self):
        users = generate_users(3, seed=0, id_offset=10)
        assert [u.user_id for u in users] == [10, 11, 12]

    def test_deterministic_given_seed(self):
        a = generate_users(4, seed=7)
        b = generate_users(4, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_users(4, seed=1)
        b = generate_users(4, seed=2)
        assert a != b

    def test_heights_match_paper_recruitment(self):
        users = generate_users(100, seed=3)
        heights = [u.height_m for u in users]
        assert min(heights) >= 1.55
        assert max(heights) <= 1.80

    def test_arm_length_correlates_with_height(self):
        users = generate_users(200, seed=4)
        heights = np.array([u.height_m for u in users])
        arms = np.array([u.arm_length_m for u in users])
        assert np.corrcoef(heights, arms)[0, 1] > 0.7

    def test_users_are_biometrically_distinct(self):
        users = generate_users(10, seed=5)
        speeds = {round(u.speed_factor, 6) for u in users}
        assert len(speeds) == 10

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            generate_users(0)


class TestUserProfileValidation:
    def test_rejects_nonpositive_dimensions(self):
        base = generate_users(1, seed=0)[0]
        with pytest.raises(ValueError):
            UserProfile(
                user_id=0,
                arm_length_m=-0.5,
                height_m=base.height_m,
                speed_factor=1.0,
                rom_scale=(1, 1, 1),
                habit_rotation_rad=0.0,
                habit_offset_m=(0, 0, 0),
                tremor_amplitude_m=0.001,
                tremor_frequency_hz=4.0,
                smoothness=0.8,
                handedness=1.0,
            )

    def test_shoulder_height_fraction(self):
        user = generate_users(1, seed=1)[0]
        assert user.shoulder_height_m == pytest.approx(0.82 * user.height_m)
