"""Tests for gesture templates (ASL set and procedural families)."""

import numpy as np
import pytest

from repro.gestures import (
    ASL_GESTURES,
    GestureTemplate,
    make_circle_gesture,
    make_pushpull_gesture,
    make_swipe_gesture,
    make_zigzag_gesture,
    self_defined_family,
)


class TestAslSet:
    def test_fifteen_gestures(self):
        assert len(ASL_GESTURES) == 15

    def test_paper_gesture_names_present(self):
        expected = {
            "ahead", "and", "another", "appoint", "away", "connect", "cross",
            "every Sunday", "face", "finish", "forget", "front", "push",
            "table", "zigzag",
        }
        assert set(ASL_GESTURES) == expected

    def test_six_bimanual(self):
        bimanual = [t for t in ASL_GESTURES.values() if t.bimanual]
        assert len(bimanual) == 6  # paper: 9 single-arm + 6 bimanual

    def test_waypoints_start_and_end_at_rest(self):
        for template in ASL_GESTURES.values():
            waypoints = template.waypoint_array("right")
            np.testing.assert_allclose(waypoints[0], waypoints[-1])

    def test_templates_are_spatially_distinct(self):
        # Pairwise mean waypoint-path distance must be clearly nonzero.
        names = list(ASL_GESTURES)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                wa = ASL_GESTURES[a].waypoint_array("right")
                wb = ASL_GESTURES[b].waypoint_array("right")
                # Compare via bounding boxes and midpoints.
                diff = np.abs(wa.mean(axis=0) - wb.mean(axis=0)).sum() + np.abs(
                    wa.max(axis=0) - wb.max(axis=0)
                ).sum()
                assert diff > 0.05, f"{a!r} and {b!r} are nearly identical"

    def test_left_waypoints_mirror_right(self):
        push = ASL_GESTURES["push"]
        right = push.waypoint_array("right")
        left = push.waypoint_array("left")
        np.testing.assert_allclose(left[:, 0], -right[:, 0])
        np.testing.assert_allclose(left[:, 1:], right[:, 1:])


class TestTemplateValidation:
    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            GestureTemplate("bad", ((0, 0, 0),))

    def test_positive_duration(self):
        with pytest.raises(ValueError):
            GestureTemplate("bad", ((0, 0, 0), (1, 1, 1)), base_duration_s=0.0)

    def test_left_hand_of_single_arm_raises(self):
        template = ASL_GESTURES["ahead"]
        with pytest.raises(ValueError):
            template.waypoint_array("left")

    def test_unknown_hand_raises(self):
        with pytest.raises(ValueError):
            ASL_GESTURES["ahead"].waypoint_array("middle")


class TestProceduralFamilies:
    def test_family_size(self):
        assert len(self_defined_family(21)) == 21
        assert len(self_defined_family(5)) == 5

    def test_names_unique(self):
        names = [t.name for t in self_defined_family(21)]
        assert len(set(names)) == 21

    def test_later_gestures_bimanual(self):
        family = self_defined_family(21)
        assert not any(t.bimanual for t in family[:9])
        assert all(t.bimanual for t in family[9:])

    def test_deterministic(self):
        a = self_defined_family(10, seed=3)
        b = self_defined_family(10, seed=3)
        assert [t.name for t in a] == [t.name for t in b]
        np.testing.assert_allclose(a[0].waypoint_array("right"), b[0].waypoint_array("right"))

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            self_defined_family(0)


class TestGestureBuilders:
    def test_swipe_sweeps_direction(self):
        swipe = make_swipe_gesture("s", (1.0, 0.0, 0.0))
        waypoints = swipe.waypoint_array("right")
        assert waypoints[2, 0] > waypoints[1, 0]

    def test_pushpull_repeats(self):
        once = make_pushpull_gesture("p1", repeats=1)
        twice = make_pushpull_gesture("p2", repeats=2)
        assert len(twice.right_waypoints) > len(once.right_waypoints)

    def test_circle_returns_to_start(self):
        circle = make_circle_gesture("c", radius=0.3)
        waypoints = circle.waypoint_array("right")
        np.testing.assert_allclose(waypoints[1], waypoints[-2], atol=1e-9)

    def test_circle_invalid_plane(self):
        with pytest.raises(ValueError):
            make_circle_gesture("c", plane="yz")

    def test_zigzag_alternates(self):
        zigzag = make_zigzag_gesture("z", amplitude=0.3, cycles=2)
        xs = zigzag.waypoint_array("right")[1:-1, 0]
        assert (np.diff(xs) != 0).all()
