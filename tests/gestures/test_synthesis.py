"""Tests for gesture performance rendering."""

import numpy as np
import pytest

from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
from repro.gestures.synthesis import _interpolate_waypoints
from repro.radar import FastRadar, IWR6843_CONFIG


@pytest.fixture(scope="module")
def setup():
    users = generate_users(3, seed=1)
    radar = FastRadar(IWR6843_CONFIG, seed=0)
    return users, radar, ENVIRONMENTS["office"]


class TestInterpolation:
    def test_endpoints(self):
        waypoints = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 1.0, 0]])
        out = _interpolate_waypoints(waypoints, np.array([0.0, 1.0]), smoothness=0.8)
        np.testing.assert_allclose(out[0], waypoints[0])
        np.testing.assert_allclose(out[-1], waypoints[-1])

    def test_monotone_arc_length(self):
        waypoints = np.array([[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]])
        phases = np.linspace(0, 1, 20)
        out = _interpolate_waypoints(waypoints, phases, smoothness=1.0)
        assert (np.diff(out[:, 0]) >= -1e-12).all()

    def test_no_mid_path_stalls(self):
        # Arc-length parametrisation: interior speed never drops to zero.
        waypoints = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 1.0, 0], [2.0, 1.0, 0.0]])
        phases = np.linspace(0.2, 0.8, 30)
        out = _interpolate_waypoints(waypoints, phases, smoothness=1.0)
        step = np.linalg.norm(np.diff(out, axis=0), axis=1)
        assert step.min() > 1e-3

    def test_degenerate_path(self):
        waypoints = np.zeros((3, 3))
        out = _interpolate_waypoints(waypoints, np.array([0.5]), smoothness=0.5)
        np.testing.assert_allclose(out, 0.0)


class TestPerformGesture:
    def test_recording_structure(self, setup):
        users, radar, env = setup
        rec = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env, rng=np.random.default_rng(0)
        )
        assert rec.motion_start_frame > 0
        assert rec.motion_end_frame <= rec.num_frames
        assert rec.gesture_name == "push"
        assert rec.user_id == users[0].user_id

    def test_motion_frames_have_more_points(self, setup):
        users, radar, env = setup
        rec = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env, rng=np.random.default_rng(1)
        )
        counts = np.array([f.num_points for f in rec.frames])
        motion = counts[rec.motion_start_frame : rec.motion_end_frame]
        idle = np.concatenate([counts[: rec.motion_start_frame], counts[rec.motion_end_frame :]])
        assert motion.mean() > 2.0 * max(idle.mean(), 0.5)

    def test_speed_override_shortens_motion(self, setup):
        users, radar, env = setup
        slow = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env,
            rng=np.random.default_rng(2), speed_override=0.7,
        )
        fast = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env,
            rng=np.random.default_rng(2), speed_override=1.4,
        )
        assert fast.duration_frames < slow.duration_frames

    def test_faster_users_produce_shorter_gestures(self, setup):
        users, radar, env = setup
        durations = {}
        for user in users:
            recs = [
                perform_gesture(
                    user, ASL_GESTURES["zigzag"], radar, env, rng=np.random.default_rng(s)
                )
                for s in range(3)
            ]
            durations[user.speed_factor] = np.mean([r.duration_frames for r in recs])
        speeds = sorted(durations)
        assert durations[speeds[0]] > durations[speeds[-1]]

    def test_distance_controls_cloud_position(self, setup):
        users, radar, env = setup
        rec = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env,
            distance_m=2.5, rng=np.random.default_rng(3),
        )
        points = np.vstack([f.points for f in rec.frames if f.num_points])
        assert np.median(points[:, 1]) == pytest.approx(2.5, abs=0.6)

    def test_bimanual_gesture_covers_both_sides(self, setup):
        users, radar, env = setup
        rec = perform_gesture(
            users[0], ASL_GESTURES["push"], radar, env, rng=np.random.default_rng(4)
        )
        motion_frames = rec.frames[rec.motion_start_frame : rec.motion_end_frame]
        xs = np.concatenate([f.xyz[:, 0] for f in motion_frames if f.num_points])
        assert xs.min() < -0.05 and xs.max() > 0.05

    def test_metadata_records_speed(self, setup):
        users, radar, env = setup
        rec = perform_gesture(
            users[0], ASL_GESTURES["ahead"], radar, env,
            rng=np.random.default_rng(5), speed_override=1.1,
        )
        assert rec.metadata["speed"] == 1.1
