"""Tests for environments and bystanders."""

import numpy as np
import pytest

from repro.gestures import Bystander, ENVIRONMENTS


class TestEnvironments:
    def test_four_scenarios_defined(self):
        assert set(ENVIRONMENTS) == {"office", "meeting_room", "home", "open"}

    def test_clutter_scatterers_static_by_default(self):
        env = ENVIRONMENTS["office"]
        rng = np.random.default_rng(0)
        # With many draws some flicker; but most stay static overall.
        static_fraction = []
        for _ in range(50):
            clutter = env.clutter_scatterers(rng)
            speeds = np.linalg.norm(clutter.velocities, axis=1)
            static_fraction.append((speeds < 1e-9).mean())
        assert np.mean(static_fraction) > 0.8

    def test_flicker_occurs(self):
        env = ENVIRONMENTS["office"]
        rng = np.random.default_rng(1)
        flickered = 0
        for _ in range(100):
            clutter = env.clutter_scatterers(rng)
            flickered += (np.linalg.norm(clutter.velocities, axis=1) > 0).any()
        assert flickered > 10

    def test_open_space_has_least_clutter(self):
        assert len(ENVIRONMENTS["open"].reflector_positions) < len(
            ENVIRONMENTS["office"].reflector_positions
        )


class TestBystander:
    def test_walker_moves_between_frames(self):
        walker = Bystander(mode="walking", walk_speed_ms=1.0)
        rng = np.random.default_rng(0)
        early = walker.scatterers_at(0.0, rng).positions.mean(axis=0)
        later = walker.scatterers_at(1.0, rng).positions.mean(axis=0)
        assert np.linalg.norm(later - early) > 0.5

    def test_walker_turns_around(self):
        walker = Bystander(
            mode="walking", walk_start=(-1.0, 2.0), walk_end=(1.0, 2.0), walk_speed_ms=1.0
        )
        rng = np.random.default_rng(0)
        # Path is 2 m; at t=3 s the walker is on the way back.
        onward = walker.scatterers_at(0.5, rng).velocities[0]
        backward = walker.scatterers_at(3.0, rng).velocities[0]
        assert np.sign(onward[0]) != np.sign(backward[0])

    def test_gesturer_stays_in_place(self):
        gesturer = Bystander(mode="gesturing", position=(1.5, 2.5, 0.0))
        rng = np.random.default_rng(0)
        a = gesturer.scatterers_at(0.0, rng).positions.mean(axis=0)
        b = gesturer.scatterers_at(2.0, rng).positions.mean(axis=0)
        assert np.linalg.norm(b - a) < 0.3

    def test_gesturer_hand_moves(self):
        gesturer = Bystander(mode="gesturing")
        rng = np.random.default_rng(0)
        scene = gesturer.scatterers_at(0.25, rng)
        speeds = np.linalg.norm(scene.velocities, axis=1)
        assert speeds.max() > 0.2

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            Bystander(mode="flying").scatterers_at(0.0, np.random.default_rng(0))
