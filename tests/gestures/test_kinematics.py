"""Tests for the two-link arm model and body scatterer assembly."""

import numpy as np
import pytest

from repro.gestures import ArmModel, body_scatterers
from repro.gestures.kinematics import torso_positions


class TestSolveElbow:
    def test_link_lengths_preserved_when_reachable(self):
        arm = ArmModel(arm_length_m=0.6)
        shoulder = np.array([0.0, 0.0, 0.0])
        hand = np.array([0.3, 0.2, -0.1])
        elbow = arm.solve_elbow(shoulder, hand)
        assert np.linalg.norm(elbow - shoulder) == pytest.approx(arm.upper_length_m, abs=1e-9)
        assert np.linalg.norm(hand - elbow) == pytest.approx(arm.forearm_length_m, abs=1e-9)

    def test_out_of_reach_extends_fully(self):
        arm = ArmModel(arm_length_m=0.6)
        shoulder = np.zeros(3)
        hand = np.array([2.0, 0.0, 0.0])
        elbow = arm.solve_elbow(shoulder, hand)
        np.testing.assert_allclose(elbow, [arm.upper_length_m, 0.0, 0.0])

    def test_elbow_hangs_down(self):
        arm = ArmModel(arm_length_m=0.6)
        elbow = arm.solve_elbow(np.zeros(3), np.array([0.5, 0.0, 0.0]))
        assert elbow[2] < 0  # natural "elbow down" resolution

    def test_swivel_moves_elbow(self):
        straight = ArmModel(arm_length_m=0.6, swivel_angle_rad=0.0)
        flared = ArmModel(arm_length_m=0.6, swivel_angle_rad=0.6)
        shoulder = np.zeros(3)
        hand = np.array([0.4, 0.2, 0.0])
        e0 = straight.solve_elbow(shoulder, hand)
        e1 = flared.solve_elbow(shoulder, hand)
        assert np.linalg.norm(e0 - e1) > 0.02
        # Link lengths still hold under swivel.
        assert np.linalg.norm(e1 - shoulder) == pytest.approx(straight.upper_length_m, abs=1e-9)

    def test_degenerate_hand_at_shoulder(self):
        arm = ArmModel(arm_length_m=0.6)
        elbow = arm.solve_elbow(np.zeros(3), np.zeros(3))
        assert np.isfinite(elbow).all()


class TestScattererPositions:
    def test_count(self):
        arm = ArmModel(arm_length_m=0.6)
        chain = arm.scatterer_positions(np.zeros(3), np.array([0.4, 0.2, 0.0]))
        expected = arm.num_upper_scatterers + arm.num_forearm_scatterers + arm.num_hand_scatterers
        assert chain.shape == (expected, 3)

    def test_rcs_matches_count(self):
        arm = ArmModel(arm_length_m=0.6)
        chain = arm.scatterer_positions(np.zeros(3), np.array([0.4, 0.2, 0.0]))
        assert arm.scatterer_rcs().shape[0] == chain.shape[0]

    def test_hand_cluster_near_hand(self):
        arm = ArmModel(arm_length_m=0.6)
        hand = np.array([0.4, 0.2, 0.0])
        chain = arm.scatterer_positions(np.zeros(3), hand)
        hand_pts = chain[-arm.num_hand_scatterers :]
        assert np.linalg.norm(hand_pts - hand, axis=1).max() < 0.1


class TestBodyScatterers:
    def test_assembles_torso_and_arms(self):
        arm = ArmModel(arm_length_m=0.6)
        scene = body_scatterers(
            np.array([0.0, 1.2, 0.0]),
            {"right": np.array([0.3, 0.8, 0.1])},
            arm,
        )
        assert len(scene) == 9 + 14  # 3x3 torso grid + arm chain

    def test_hand_velocity_ramps_along_chain(self):
        arm = ArmModel(arm_length_m=0.6)
        hand_vel = np.array([0.0, -1.5, 0.0])
        scene = body_scatterers(
            np.array([0.0, 1.2, 0.0]),
            {"right": np.array([0.2, 0.7, 0.0])},
            arm,
            hand_velocities={"right": hand_vel},
        )
        speeds = np.linalg.norm(scene.velocities[9:], axis=1)
        # Closest-to-shoulder scatterer moves slower than the hand blob.
        assert speeds[0] < speeds[-1]

    def test_torso_breathing_velocity(self):
        arm = ArmModel(arm_length_m=0.6)
        scene = body_scatterers(
            np.array([0.0, 1.2, 0.0]),
            {},
            arm,
            torso_velocity=np.array([0.0, 0.01, 0.0]),
        )
        np.testing.assert_allclose(scene.velocities[:, 1], 0.01)

    def test_torso_grid_spans_width(self):
        grid = torso_positions(np.zeros(3), width_m=0.4, height_m=1.7)
        assert grid[:, 0].max() - grid[:, 0].min() == pytest.approx(0.4)
