"""Tests for the GesIDNet architecture and attention fusion."""

import numpy as np
import pytest

from repro.core.gesidnet import AttentionFusion, GesIDNet, GesIDNetConfig
from repro.nn.losses import CrossEntropyLoss
from repro.nn.setabstraction import ScaleSpec


def _tiny_config():
    return GesIDNetConfig(
        num_points=16,
        in_feature_channels=8,
        sa1_centers=6,
        sa1_scales=(ScaleSpec(0.3, 4, (8,)),),
        sa2_centers=3,
        sa2_scales=(ScaleSpec(0.6, 3, (12,)),),
        level1_mlp=(10,),
        level2_mlp=(14,),
        head1_hidden=(8,),
        dropout=0.0,
        aux_weight=0.5,
    )


class TestAttentionFusion:
    def test_weights_sum_to_one(self):
        fusion = AttentionFusion(6, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        weights = fusion.weights_of(rng.normal(size=(4, 6)), rng.normal(size=(4, 6)))
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()

    def test_fusion_is_convex_combination(self):
        fusion = AttentionFusion(3, rng=np.random.default_rng(0))
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([[3.0, 3.0, 3.0]])
        fused = fusion(a, b)
        assert (fused >= 1.0 - 1e-9).all()
        assert (fused <= 3.0 + 1e-9).all()

    def test_shape_mismatch_raises(self):
        fusion = AttentionFusion(3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            fusion(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_gradient_matches_numeric(self):
        fusion = AttentionFusion(4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        grad_out = rng.normal(size=(3, 4))
        fusion(a, b)
        grad_a, grad_b = fusion.backward(grad_out)
        eps = 1e-6
        for target, grad in ((a, grad_a), (b, grad_b)):
            for i in range(target.size):
                flat = target.ravel()
                orig = flat[i]
                flat[i] = orig + eps
                up = (fusion(a, b) * grad_out).sum()
                flat[i] = orig - eps
                down = (fusion(a, b) * grad_out).sum()
                flat[i] = orig
                assert grad.ravel()[i] == pytest.approx((up - down) / (2 * eps), abs=1e-6)


class TestGesIDNet:
    def test_forward_shapes(self):
        model = GesIDNet(5, _tiny_config(), rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 16, 8))
        primary, auxiliary = model(x)
        assert primary.shape == (4, 5)
        assert auxiliary.shape == (4, 5)

    def test_rejects_thin_input(self):
        model = GesIDNet(3, _tiny_config(), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            model(np.zeros((2, 16, 4)))

    def test_rejects_too_few_classes(self):
        with pytest.raises(ValueError):
            GesIDNet(1, _tiny_config())

    def test_extracted_features_available_after_forward(self):
        model = GesIDNet(3, _tiny_config(), rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            model.extracted_features()
        model(np.random.default_rng(1).normal(size=(2, 16, 8)))
        features = model.extracted_features()
        assert set(features) == {"level1", "level2", "fused1", "fused2"}
        assert features["fused1"].shape == (2, 10)
        assert features["fused2"].shape == (2, 14)

    def test_full_gradient_check(self):
        model = GesIDNet(3, _tiny_config(), rng=np.random.default_rng(0))
        model.train()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 16, 8))
        y = np.array([0, 1, 2, 1])
        loss1 = CrossEntropyLoss()
        loss2 = CrossEntropyLoss()

        def compute_loss():
            p, a = model(x)
            return loss1(p, y) + 0.5 * loss2(a, y)

        model.zero_grad()
        p, a = model(x)
        loss1(p, y)
        loss2(a, y)
        model.backward(loss1.backward(), 0.5 * loss2.backward())
        named = model.named_parameters()
        analytic = {name: prm.grad.copy() for name, prm in named}
        eps = 1e-6
        checked = 0
        for name, prm in named[::4]:
            flat = prm.data.ravel()
            for idx in range(0, flat.size, max(flat.size // 2, 1)):
                orig = flat[idx]
                flat[idx] = orig + eps
                up = compute_loss()
                flat[idx] = orig - eps
                down = compute_loss()
                flat[idx] = orig
                numeric = (up - down) / (2 * eps)
                ana = analytic[name].ravel()[idx]
                assert abs(numeric - ana) <= 1e-4 * max(1.0, abs(numeric), abs(ana)), name
                checked += 1
        assert checked >= 10

    def test_eval_mode_deterministic(self):
        model = GesIDNet(3, _tiny_config(), rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, 16, 8))
        model(x)  # populate running stats
        model.eval()
        a, _ = model(x)
        b, _ = model(x)
        np.testing.assert_array_equal(a, b)

    def test_config_presets(self):
        assert GesIDNetConfig.small().num_points < GesIDNetConfig.paper().num_points
        assert GesIDNetConfig().aux_weight > 0
