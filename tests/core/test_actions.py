"""Per-user gesture-action routing (Fig. 1b personalization layer)."""

import pytest

from repro.core.actions import ActionMapper
from repro.core.openset import UNKNOWN_USER


@pytest.fixture()
def mapper():
    mapper = ActionMapper(guest_action="ignore")
    mapper.bind_default(0, "toggle lights")
    mapper.bind_default(1, "open curtain")
    mapper.bind_user(2, 1, "raise AC temperature")  # Fig. 1b personalization
    return mapper


class TestBinding:
    def test_rejects_negative_gesture(self, mapper):
        with pytest.raises(ValueError):
            mapper.bind_default(-1, "x")
        with pytest.raises(ValueError):
            mapper.bind_user(0, -2, "x")

    def test_rejects_negative_user(self, mapper):
        with pytest.raises(ValueError):
            mapper.bind_user(-3, 0, "x")

    def test_bind_returns_self_for_chaining(self):
        mapper = ActionMapper()
        assert mapper.bind_default(0, "a").bind_user(1, 0, "b") is mapper


class TestDispatch:
    def test_default_binding_applies_to_everyone(self, mapper):
        for user in (0, 1, 2):
            dispatch = mapper.dispatch(user, 0)
            assert dispatch.action == "toggle lights"
        assert mapper.dispatch(0, 0).source == "default"

    def test_personal_binding_overrides_default(self, mapper):
        assert mapper.dispatch(2, 1).action == "raise AC temperature"
        assert mapper.dispatch(2, 1).source == "user"
        # Other users keep the household default.
        assert mapper.dispatch(0, 1).action == "open curtain"

    def test_unknown_user_gets_guest_action(self, mapper):
        dispatch = mapper.dispatch(UNKNOWN_USER, 1)
        assert dispatch.action == "ignore"
        assert dispatch.handled

    def test_unknown_user_without_guest_action_is_unhandled(self):
        mapper = ActionMapper()
        mapper.bind_default(0, "x")
        dispatch = mapper.dispatch(UNKNOWN_USER, 0)
        assert dispatch.action is None
        assert not dispatch.handled
        assert dispatch.source == "unbound"

    def test_unbound_gesture_is_unhandled(self, mapper):
        dispatch = mapper.dispatch(0, 99)
        assert not dispatch.handled
        assert dispatch.source == "unbound"

    def test_unbind_restores_default(self, mapper):
        mapper.unbind_user(2, 1)
        assert mapper.dispatch(2, 1).action == "open curtain"

    def test_unbind_missing_binding_is_noop(self, mapper):
        mapper.unbind_user(0, 99)  # must not raise

    def test_dispatch_is_frozen(self, mapper):
        dispatch = mapper.dispatch(0, 0)
        with pytest.raises(AttributeError):
            dispatch.action = "hacked"


class TestEffectiveTable:
    def test_bindings_for_merges_default_and_personal(self, mapper):
        table = mapper.bindings_for(2)
        assert table == {0: "toggle lights", 1: "raise AC temperature"}

    def test_bindings_for_plain_user_is_defaults(self, mapper):
        assert mapper.bindings_for(0) == {0: "toggle lights", 1: "open curtain"}
