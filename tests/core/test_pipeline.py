"""Tests for the GesturePrint system (serialized and parallel modes)."""

import numpy as np
import pytest

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    IdentificationMode,
    TrainConfig,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec


def _tiny_network():
    return GesIDNetConfig(
        num_points=12,
        in_feature_channels=8,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )


def _config(mode=IdentificationMode.SERIALIZED):
    return GesturePrintConfig(
        network=_tiny_network(),
        training=TrainConfig(epochs=8, batch_size=8, learning_rate=3e-3),
        mode=mode,
        augment=False,
    )


def _toy_dataset(n_per_cell=6, num_gestures=2, num_users=2, seed=0):
    """Synthetic separable data: gesture shifts z, user shifts x-spread."""
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(num_gestures):
        for u in range(num_users):
            for _ in range(n_per_cell):
                x = rng.normal(size=(12, 8))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.5 * u
                x[:, 6] = 0.4 + 0.3 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


class TestFitPredict:
    def test_serialized_mode_trains_per_gesture_models(self):
        x, g, u = _toy_dataset()
        system = GesturePrint(_config()).fit(x, g, u)
        assert set(system.user_models) == {0, 1}
        assert system.parallel_user_model is None

    def test_parallel_mode_trains_one_model(self):
        x, g, u = _toy_dataset()
        system = GesturePrint(_config(IdentificationMode.PARALLEL)).fit(x, g, u)
        assert system.user_models == {}
        assert system.parallel_user_model is not None

    def test_predict_shapes(self):
        x, g, u = _toy_dataset()
        system = GesturePrint(_config()).fit(x, g, u)
        result = system.predict(x[:5])
        assert result.gesture_pred.shape == (5,)
        assert result.gesture_probs.shape == (5, 2)
        assert result.user_probs.shape == (5, 2)

    def test_learns_toy_problem(self):
        x, g, u = _toy_dataset(n_per_cell=12)
        config = GesturePrintConfig(
            network=_tiny_network(),
            training=TrainConfig(epochs=15, batch_size=8, learning_rate=3e-3),
            augment=False,
        )
        system = GesturePrint(config).fit(x, g, u)
        metrics = system.evaluate(x, g, u)
        assert metrics["GRA"] > 0.85
        assert metrics["UIA"] > 0.6

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GesturePrint(_config()).predict(np.zeros((1, 12, 8)))

    def test_misaligned_labels_raise(self):
        with pytest.raises(ValueError):
            GesturePrint(_config()).fit(np.zeros((4, 12, 8)), np.zeros(4), np.zeros(3))


class TestEvaluate:
    def test_metric_keys(self):
        x, g, u = _toy_dataset()
        system = GesturePrint(_config()).fit(x, g, u)
        metrics = system.evaluate(x, g, u)
        assert set(metrics) == {"GRA", "GRF1", "GRAUC", "UIA", "UIF1", "UIAUC", "EER"}

    def test_metrics_bounded(self):
        x, g, u = _toy_dataset()
        system = GesturePrint(_config()).fit(x, g, u)
        metrics = system.evaluate(x, g, u)
        for key, value in metrics.items():
            assert 0.0 <= value <= 1.0, key

    def test_serialized_uia_is_per_gesture_average(self):
        x, g, u = _toy_dataset(n_per_cell=8)
        system = GesturePrint(_config()).fit(x, g, u)
        result = system.predict(x)
        per_gesture = []
        for gesture in np.unique(g):
            mask = g == gesture
            per_gesture.append((result.user_pred[mask] == u[mask]).mean())
        metrics = system.evaluate(x, g, u)
        assert metrics["UIA"] == pytest.approx(np.mean(per_gesture))


class TestAugmentation:
    def test_augment_multiplies_training_data(self):
        x, g, u = _toy_dataset()
        config = GesturePrintConfig(
            network=_tiny_network(),
            training=TrainConfig(epochs=1, batch_size=8),
            augment=True,
            augment_copies=2,
        )
        system = GesturePrint(config)
        aug_x, aug_g, aug_u = system._augment(x, g, u, np.random.default_rng(0))
        assert aug_x.shape[0] == 3 * x.shape[0]
        assert aug_g.size == 3 * g.size

    def test_augment_disabled(self):
        x, g, u = _toy_dataset()
        config = GesturePrintConfig(
            network=_tiny_network(), training=TrainConfig(epochs=1, batch_size=8), augment=False
        )
        system = GesturePrint(config)
        aug_x, _, _ = system._augment(x, g, u, np.random.default_rng(0))
        assert aug_x.shape[0] == x.shape[0]

    def test_augment_perturbs_only_xyz(self):
        x, g, u = _toy_dataset()
        config = GesturePrintConfig(
            network=_tiny_network(), training=TrainConfig(epochs=1, batch_size=8),
            augment=True, augment_copies=1,
        )
        aug_x, _, _ = GesturePrint(config)._augment(x, g, u, np.random.default_rng(0))
        original, copy = aug_x[: x.shape[0]], aug_x[x.shape[0] :]
        assert not np.allclose(original[:, :, :3], copy[:, :, :3])
        np.testing.assert_array_equal(original[:, :, 3:], copy[:, :, 3:])
