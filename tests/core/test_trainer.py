"""Tests for the training loop, splits, and prediction helpers."""

import numpy as np
import pytest

from repro.core.gesidnet import GesIDNet, GesIDNetConfig
from repro.core.trainer import (
    TrainConfig,
    kfold_indices,
    predict_proba,
    train_classifier,
    train_test_split,
)
from repro.nn.setabstraction import ScaleSpec


def _tiny_model(num_classes=2, seed=0):
    config = GesIDNetConfig(
        num_points=12,
        in_feature_channels=8,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )
    return GesIDNet(num_classes, config, rng=np.random.default_rng(seed))


def _separable_data(n=40, seed=0):
    """Two point-cloud classes separated along z."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 12, 8))
    y = np.arange(n) % 2
    x[y == 1, :, 2] += 2.0
    return x, y


class TestTrainClassifier:
    def test_loss_decreases(self):
        x, y = _separable_data()
        model = _tiny_model()
        report = train_classifier(model, x, y, TrainConfig(epochs=10, batch_size=8, seed=1))
        assert report.losses[-1] < report.losses[0]

    def test_learns_separable_data(self):
        x, y = _separable_data(60)
        model = _tiny_model(seed=1)
        train_classifier(model, x, y, TrainConfig(epochs=15, batch_size=8, seed=2))
        probs = predict_proba(model, x)
        assert (probs.argmax(axis=1) == y).mean() > 0.9

    def test_report_lengths(self):
        x, y = _separable_data(20)
        report = train_classifier(
            _tiny_model(), x, y, TrainConfig(epochs=4, batch_size=8)
        )
        assert len(report.losses) == 4
        assert len(report.train_accuracies) == 4
        assert len(report.primary_losses) == 4

    def test_model_left_in_eval_mode(self):
        x, y = _separable_data(16)
        model = _tiny_model()
        train_classifier(model, x, y, TrainConfig(epochs=1, batch_size=8))
        assert not model.training

    def test_misaligned_labels_raise(self):
        with pytest.raises(ValueError):
            train_classifier(_tiny_model(), np.zeros((4, 12, 8)), np.zeros(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=-1.0)


class TestPredictProba:
    def test_rows_sum_to_one(self):
        x, y = _separable_data(10)
        model = _tiny_model()
        train_classifier(model, x, y, TrainConfig(epochs=1, batch_size=8))
        probs = predict_proba(model, x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_batched_equals_full(self):
        x, y = _separable_data(10)
        model = _tiny_model()
        train_classifier(model, x, y, TrainConfig(epochs=1, batch_size=8))
        np.testing.assert_allclose(
            predict_proba(model, x, batch_size=3), predict_proba(model, x, batch_size=64)
        )


class TestSplits:
    def test_kfold_partitions(self):
        splits = kfold_indices(23, 5, seed=0)
        assert len(splits) == 5
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_kfold_disjoint(self):
        for train, test in kfold_indices(20, 4, seed=1):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)

    def test_train_test_split_ratio(self):
        train, test = train_test_split(100, 0.2, seed=0)
        assert test.size == 20
        assert train.size == 80
        assert set(train) & set(test) == set()

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
