"""Failure injection: degenerate data and misuse of the pipeline API."""

import numpy as np
import pytest

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    IdentificationMode,
    TrainConfig,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec


def _tiny_config(mode=IdentificationMode.SERIALIZED, epochs=2):
    return GesturePrintConfig(
        network=GesIDNetConfig(
            num_points=10,
            in_feature_channels=8,
            sa1_centers=4,
            sa1_scales=(ScaleSpec(0.5, 3, (6,)),),
            sa2_centers=2,
            sa2_scales=(ScaleSpec(1.0, 2, (8,)),),
            level1_mlp=(6,),
            level2_mlp=(8,),
            head1_hidden=(6,),
            dropout=0.0,
        ),
        training=TrainConfig(epochs=epochs, batch_size=8, learning_rate=1e-3),
        mode=mode,
        augment=False,
    )


def _data(num_gestures=2, num_users=2, per_cell=5, seed=0):
    rng = np.random.default_rng(seed)
    n = num_gestures * num_users * per_cell
    x = rng.normal(size=(n, 10, 8))
    g = np.arange(n) % num_gestures
    u = (np.arange(n) // num_gestures) % num_users
    return x, g, u


class TestFitValidation:
    def test_misaligned_gesture_labels_rejected(self):
        x, g, u = _data()
        with pytest.raises(ValueError):
            GesturePrint(_tiny_config()).fit(x, g[:-1], u)

    def test_misaligned_user_labels_rejected(self):
        x, g, u = _data()
        with pytest.raises(ValueError):
            GesturePrint(_tiny_config()).fit(x, g, u[:-1])

    def test_predict_before_fit_raises(self):
        x, _, _ = _data()
        with pytest.raises(RuntimeError):
            GesturePrint(_tiny_config()).predict(x)

    def test_evaluate_before_fit_raises(self):
        x, g, u = _data()
        with pytest.raises(RuntimeError):
            GesturePrint(_tiny_config()).evaluate(x, g, u)


class TestDegenerateTrainingSets:
    def test_single_user_serialized_mode_survives(self):
        """With one user no ID model can be trained; prediction falls back
        to the uniform distribution instead of crashing."""
        x, g, _ = _data(num_users=1)
        u = np.zeros(x.shape[0], dtype=np.int64)
        system = GesturePrint(_tiny_config()).fit(x, g, u)
        assert system.user_models == {}
        result = system.predict(x[:4])
        assert result.user_pred.shape == (4,)
        np.testing.assert_allclose(result.user_probs, 1.0)

    def test_single_gesture_fit_rejected(self):
        """GesIDNet is a classifier; one gesture class is a config error."""
        x, _, u = _data(num_gestures=1)
        g = np.zeros(x.shape[0], dtype=np.int64)
        with pytest.raises(ValueError, match="two classes"):
            GesturePrint(_tiny_config()).fit(x, g, u)

    def test_gesture_with_single_user_skipped_in_serialized_mode(self):
        """A gesture whose samples all come from one user gets no ID model."""
        x, g, u = _data(num_gestures=2, num_users=2, per_cell=6)
        # Make gesture 1 exclusively user 0.
        u = u.copy()
        u[g == 1] = 0
        system = GesturePrint(_tiny_config()).fit(x, g, u)
        assert 1 not in system.user_models
        assert 0 in system.user_models
        # Prediction still returns a full result for every sample.
        result = system.predict(x[:6])
        assert np.isfinite(result.user_probs).all()

    def test_mode_enum_round_trip(self):
        assert IdentificationMode("serialized") is IdentificationMode.SERIALIZED
        assert IdentificationMode("parallel") is IdentificationMode.PARALLEL


class TestHostileInputs:
    @pytest.fixture(scope="class")
    def fitted(self):
        x, g, u = _data(per_cell=6, seed=3)
        return GesturePrint(_tiny_config(epochs=3)).fit(x, g, u), x

    def test_predict_handles_constant_sample(self, fitted):
        """An all-zero cloud (degenerate geometry) must not crash or NaN."""
        system, x = fitted
        sample = np.zeros((1, 10, 8))
        result = system.predict(sample)
        assert np.isfinite(result.gesture_probs).all()
        assert np.isfinite(result.user_probs).all()

    def test_predict_handles_extreme_magnitudes(self, fitted):
        system, x = fitted
        result = system.predict(1e3 * x[:2])
        assert np.isfinite(result.gesture_probs).all()

    def test_probabilities_are_distributions(self, fitted):
        system, x = fitted
        result = system.predict(x[:8])
        np.testing.assert_allclose(result.gesture_probs.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(result.user_probs.sum(axis=1), 1.0, atol=1e-9)
        assert (result.gesture_probs >= 0).all()
        assert (result.user_probs >= 0).all()

    def test_duplicate_samples_get_identical_predictions(self, fitted):
        system, x = fitted
        doubled = np.vstack([x[:1], x[:1]])
        result = system.predict(doubled)
        np.testing.assert_array_equal(result.gesture_probs[0], result.gesture_probs[1])
        np.testing.assert_array_equal(result.user_probs[0], result.user_probs[1])
