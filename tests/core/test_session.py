"""Session-level identification: fusion math and accumulation behaviour."""

import numpy as np
import pytest

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    SessionIdentifier,
    TrainConfig,
    identify_session,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec


def _tiny_network():
    return GesIDNetConfig(
        num_points=12,
        in_feature_channels=8,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )


def _toy_dataset(n_per_cell=10, num_gestures=2, num_users=3, seed=0):
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(num_gestures):
        for u in range(num_users):
            for _ in range(n_per_cell):
                x = rng.normal(size=(12, 8))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.2 * u
                x[:, 6] = 0.4 + 0.25 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


@pytest.fixture(scope="module")
def fitted():
    x, g, u = _toy_dataset()
    config = GesturePrintConfig(
        network=_tiny_network(),
        training=TrainConfig(epochs=12, batch_size=8, learning_rate=3e-3),
        augment=False,
    )
    return GesturePrint(config).fit(x, g, u), (x, g, u)


class TestValidation:
    def test_unfitted_system_rejected(self):
        with pytest.raises(ValueError):
            SessionIdentifier(GesturePrint())

    def test_bad_floor_rejected(self, fitted):
        system, _ = fitted
        with pytest.raises(ValueError):
            SessionIdentifier(system, floor=0.0)
        with pytest.raises(ValueError):
            SessionIdentifier(system, floor=1.0)

    def test_bad_prior_rejected(self, fitted):
        system, _ = fitted
        with pytest.raises(ValueError):
            SessionIdentifier(system, prior=np.ones(99))
        with pytest.raises(ValueError):
            SessionIdentifier(system, prior=np.array([-1.0, 1.0, 1.0]))

    def test_update_rejects_batch(self, fitted):
        system, (x, _, _) = fitted
        identifier = SessionIdentifier(system)
        with pytest.raises(ValueError):
            identifier.update(x[:2])

    def test_identify_session_rejects_single_sample(self, fitted):
        system, (x, _, _) = fitted
        with pytest.raises(ValueError):
            identify_session(system, x[0])


class TestFusion:
    def test_prior_only_before_updates(self, fitted):
        system, _ = fitted
        estimate = SessionIdentifier(system).estimate()
        assert estimate.num_gestures == 0
        np.testing.assert_allclose(
            estimate.posterior, np.full(system.num_users, 1 / system.num_users)
        )

    def test_posterior_normalised_after_updates(self, fitted):
        system, (x, _, _) = fitted
        identifier = SessionIdentifier(system)
        estimate = identifier.update(x[0])
        assert estimate.posterior.sum() == pytest.approx(1.0)
        assert 0.0 < estimate.confidence <= 1.0

    def test_count_tracks_updates(self, fitted):
        system, (x, _, _) = fitted
        identifier = SessionIdentifier(system)
        for i in range(3):
            identifier.update(x[i])
        assert identifier.num_gestures == 3

    def test_reset_restores_prior(self, fitted):
        system, (x, _, _) = fitted
        identifier = SessionIdentifier(system)
        identifier.update(x[0])
        identifier.reset()
        estimate = identifier.estimate()
        assert estimate.num_gestures == 0
        np.testing.assert_allclose(
            estimate.posterior, np.full(system.num_users, 1 / system.num_users)
        )

    def test_fusion_beats_or_matches_single_gesture(self, fitted):
        """Session accuracy with 3 gestures >= single-gesture accuracy."""
        system, (x, _, u) = fitted
        rng = np.random.default_rng(42)
        single_correct = session_correct = trials = 0
        for user in range(system.num_users):
            idx = np.flatnonzero(u == user)
            for _ in range(6):
                chosen = rng.choice(idx, size=3, replace=False)
                single = identify_session(system, x[chosen[:1]])
                fused = identify_session(system, x[chosen])
                single_correct += single.user == user
                session_correct += fused.user == user
                trials += 1
        assert session_correct >= single_correct - 1

    def test_strong_prior_dominates_weak_evidence(self, fitted):
        """A near-delta prior on one user wins against a single update."""
        system, (x, _, u) = fitted
        target = 2
        prior = np.full(system.num_users, 1e-6)
        prior[target] = 1.0
        sample = x[np.flatnonzero(u == 0)[0]]
        identifier = SessionIdentifier(system, prior=prior, floor=1e-2)
        estimate = identifier.update(sample)
        assert estimate.posterior[target] > 1e-3

    def test_identify_session_matches_manual_loop(self, fitted):
        system, (x, _, _) = fitted
        batch = x[:3]
        via_function = identify_session(system, batch)
        identifier = SessionIdentifier(system)
        for sample in batch:
            manual = identifier.update(sample)
        np.testing.assert_allclose(via_function.posterior, manual.posterior)

    def test_fusion_is_order_invariant(self, fitted):
        """Naive-Bayes log fusion is commutative: gesture order must not
        change the session posterior."""
        system, (x, _, _) = fitted
        batch = x[:4]
        forward = identify_session(system, batch)
        reversed_order = identify_session(system, batch[::-1])
        np.testing.assert_allclose(
            forward.posterior, reversed_order.posterior, atol=1e-12
        )

    def test_repeated_evidence_sharpens_posterior(self, fitted):
        """Seeing the same discriminative sample twice cannot reduce the
        winning user's posterior."""
        system, (x, _, _) = fitted
        sample = x[0]
        once = identify_session(system, sample[None])
        twice = identify_session(system, np.stack([sample, sample]))
        assert twice.posterior[once.user] >= once.posterior[once.user] - 1e-12


class TestUpdatePosterior:
    def test_matches_update_on_same_sample(self, fitted):
        system, (x, _, _) = fitted
        via_sample = SessionIdentifier(system)
        via_sample.update(x[0])
        probs = system.predict(x[:1]).user_probs[0]
        via_posterior = SessionIdentifier(system)
        via_posterior.update_posterior(probs)
        np.testing.assert_allclose(
            via_sample.estimate().posterior, via_posterior.estimate().posterior
        )

    def test_rejects_wrong_size(self, fitted):
        system, _ = fitted
        with pytest.raises(ValueError):
            SessionIdentifier(system).update_posterior(np.ones(99))


class TestSessionRuntime:
    def _frame(self, count, rng, spread=0.2):
        from repro.radar import Frame

        points = np.zeros((count, 5))
        points[:, :3] = rng.normal(scale=spread, size=(count, 3))
        points[:, 1] += 1.2
        return Frame(points=points)

    def _runtime(self, fitted, timeout=300):
        from repro.core import GesturePrintRuntime, SessionRuntime

        system, _ = fitted
        return SessionRuntime(
            GesturePrintRuntime(system, num_points=12),
            session_timeout_frames=timeout,
        )

    def test_rejects_bad_timeout(self, fitted):
        from repro.core import GesturePrintRuntime, SessionRuntime

        system, _ = fitted
        with pytest.raises(ValueError):
            SessionRuntime(
                GesturePrintRuntime(system, num_points=12), session_timeout_frames=0
            )

    def test_belief_updates_on_each_gesture(self, fitted):
        runtime = self._runtime(fitted)
        rng = np.random.default_rng(0)
        counts = [1] * 12 + [15] * 18 + [1] * 20 + [15] * 18 + [1] * 20
        estimates = []
        for count in counts:
            estimate = runtime.push_frame(self._frame(count, rng))
            if estimate is not None:
                estimates.append(estimate)
        tail = runtime.flush()
        if tail is not None:
            estimates.append(tail)
        assert len(estimates) == 2
        assert estimates[1].num_gestures == 2

    def test_timeout_starts_new_session(self, fitted):
        runtime = self._runtime(fitted, timeout=10)
        rng = np.random.default_rng(1)
        counts = [1] * 12 + [15] * 18 + [1] * 40 + [15] * 18 + [1] * 20
        estimates = []
        for count in counts:
            estimate = runtime.push_frame(self._frame(count, rng))
            if estimate is not None:
                estimates.append(estimate)
        tail = runtime.flush()
        if tail is not None:
            estimates.append(tail)
        # The 40-frame gap exceeds the 10-frame timeout: the second
        # gesture starts a fresh session with one gesture of evidence.
        assert estimates[-1].num_gestures == 1

    def test_reset_clears_belief_and_stream(self, fitted):
        runtime = self._runtime(fitted)
        rng = np.random.default_rng(2)
        for count in [1] * 12 + [15] * 18 + [1] * 20:
            runtime.push_frame(self._frame(count, rng))
        runtime.flush()
        runtime.reset()
        assert runtime.estimate.num_gestures == 0
        assert runtime.runtime.frames_seen == 0
