"""Tests for persistence, open-set verification, fine-tuning, and realtime."""

import numpy as np
import pytest

from repro.core import (
    FineTuneConfig,
    GesturePrint,
    GesturePrintConfig,
    GesturePrintRuntime,
    IdentificationMode,
    OpenSetVerifier,
    TrainConfig,
    UNKNOWN_GESTURE,
    UNKNOWN_USER,
    fine_tune_model,
    fine_tune_system,
    load_system,
    save_system,
)
from repro.core.finetune import head_parameters
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec
from repro.radar import Frame


def _tiny_network():
    return GesIDNetConfig(
        num_points=12,
        in_feature_channels=8,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )


def _toy_dataset(n_per_cell=8, num_gestures=2, num_users=2, seed=0):
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(num_gestures):
        for u in range(num_users):
            for _ in range(n_per_cell):
                x = rng.normal(size=(12, 8))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.5 * u
                x[:, 6] = 0.4 + 0.3 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


@pytest.fixture(scope="module")
def fitted():
    x, g, u = _toy_dataset(n_per_cell=10)
    config = GesturePrintConfig(
        network=_tiny_network(),
        training=TrainConfig(epochs=12, batch_size=8, learning_rate=3e-3),
        augment=False,
    )
    return GesturePrint(config).fit(x, g, u), (x, g, u)


class TestPersistence:
    def test_round_trip_predictions_identical(self, fitted, tmp_path):
        system, (x, _, _) = fitted
        save_system(system, tmp_path / "model")
        restored = load_system(tmp_path / "model")
        original = system.predict(x[:6])
        loaded = restored.predict(x[:6])
        np.testing.assert_allclose(loaded.gesture_probs, original.gesture_probs)
        np.testing.assert_allclose(loaded.user_probs, original.user_probs)

    def test_restored_config_matches(self, fitted, tmp_path):
        system, _ = fitted
        save_system(system, tmp_path / "model")
        restored = load_system(tmp_path / "model")
        assert restored.config.mode is system.config.mode
        assert restored.num_gestures == system.num_gestures
        assert restored.num_users == system.num_users

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_system(GesturePrint(), tmp_path / "nope")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_system(tmp_path)

    def test_parallel_mode_round_trip(self, tmp_path):
        x, g, u = _toy_dataset(n_per_cell=8, seed=3)
        config = GesturePrintConfig(
            network=_tiny_network(),
            training=TrainConfig(epochs=6, batch_size=8),
            mode=IdentificationMode.PARALLEL,
            augment=False,
        )
        system = GesturePrint(config).fit(x, g, u)
        save_system(system, tmp_path / "par")
        restored = load_system(tmp_path / "par")
        assert restored.parallel_user_model is not None
        np.testing.assert_allclose(
            restored.predict(x[:4]).user_probs, system.predict(x[:4]).user_probs
        )


class TestOpenSet:
    def test_calibrate_and_identify(self, fitted):
        system, (x, g, u) = fitted
        verifier = OpenSetVerifier(system)
        calibration = verifier.calibrate(x, g, u, target_far=0.1)
        assert 0.0 <= calibration.user_threshold <= 1.0
        gestures, users = verifier.identify(x)
        known = users != UNKNOWN_USER
        # Most enrolled samples should be accepted and correct.
        assert known.mean() > 0.5
        assert (users[known] == u[known]).mean() > 0.6

    def test_outsider_rejection(self, fitted):
        system, (x, g, u) = fitted
        verifier = OpenSetVerifier(system)
        verifier.calibrate(x, g, u, target_far=0.05)
        # Outsiders: random clouds unlike anything enrolled.
        rng = np.random.default_rng(9)
        outsiders = rng.normal(size=(30, 12, 8)) * 5.0 + 10.0
        far = verifier.false_accept_rate(outsiders)
        assert far < 0.6  # clearly below blanket acceptance

    def test_verify_claim(self, fitted):
        system, (x, g, u) = fitted
        verifier = OpenSetVerifier(system)
        verifier.calibrate(x, g, u, target_far=0.1)
        genuine_mask = u == 0
        accepts = verifier.verify(x[genuine_mask], claimed_user=0)
        rejects = verifier.verify(x[~genuine_mask], claimed_user=0)
        assert accepts.mean() > rejects.mean()

    def test_identify_before_calibrate_raises(self, fitted):
        system, (x, _, _) = fitted
        with pytest.raises(RuntimeError):
            OpenSetVerifier(system).identify(x[:2])

    def test_unknown_claim_raises(self, fitted):
        system, (x, g, u) = fitted
        verifier = OpenSetVerifier(system)
        verifier.calibrate(x, g, u)
        with pytest.raises(ValueError):
            verifier.verify(x[:2], claimed_user=99)

    def test_unknown_gesture_rejection(self, fitted):
        system, (x, g, u) = fitted
        verifier = OpenSetVerifier(system)
        verifier.calibrate(x, g, u, gesture_quantile=0.5)
        rng = np.random.default_rng(4)
        weird = rng.normal(size=(20, 12, 8)) * 8.0 - 6.0
        gestures, users = verifier.identify(weird)
        assert (gestures == UNKNOWN_GESTURE).any() or (users == UNKNOWN_USER).any()


class TestFineTune:
    def test_only_head_parameters_change(self, fitted):
        system, (x, g, u) = fitted
        model = system.gesture_model
        head_ids = {id(p) for p in head_parameters(model)}
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        fine_tune_model(model, x, g, FineTuneConfig(epochs=2, batch_size=8))
        for name, param in model.named_parameters():
            changed = not np.allclose(before[name], param.data)
            if id(param) in head_ids:
                continue  # heads may change
            assert not changed, f"backbone parameter {name} changed"

    def test_loss_history_length(self, fitted):
        system, (x, g, _) = fitted
        losses = fine_tune_model(
            system.gesture_model, x, g, FineTuneConfig(epochs=3, batch_size=8)
        )
        assert len(losses) == 3

    def test_fine_tune_system_covers_all_models(self, fitted):
        system, (x, g, u) = fitted
        histories = fine_tune_system(system, x, g, u, FineTuneConfig(epochs=1, batch_size=8))
        assert "gesture" in histories
        assert any(key.startswith("user_g") for key in histories)

    def test_adapts_to_shifted_domain(self):
        x, g, u = _toy_dataset(n_per_cell=10, seed=5)
        config = GesturePrintConfig(
            network=_tiny_network(),
            training=TrainConfig(epochs=12, batch_size=8, learning_rate=3e-3),
            augment=False,
        )
        system = GesturePrint(config).fit(x, g, u)
        # Target domain: a constant feature shift.
        shifted = x.copy()
        shifted[:, :, 1] += 1.5
        before = system.evaluate(shifted, g, u)["GRA"]
        fine_tune_system(
            system, shifted, g, u, FineTuneConfig(epochs=6, batch_size=8, learning_rate=2e-3)
        )
        after = system.evaluate(shifted, g, u)["GRA"]
        assert after >= before - 0.05

    def test_validation(self, fitted):
        system, (x, g, _) = fitted
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)
        with pytest.raises(ValueError):
            fine_tune_model(system.gesture_model, x[:1], g[:1])


class TestRealtimeRuntime:
    def _frame(self, count, rng, spread=0.2):
        points = np.zeros((count, 5))
        points[:, :3] = rng.normal(scale=spread, size=(count, 3))
        points[:, 1] += 1.2
        return Frame(points=points)

    def test_emits_event_for_burst(self, fitted):
        system, _ = fitted
        runtime = GesturePrintRuntime(system, num_points=12)
        rng = np.random.default_rng(0)
        events = []
        counts = [1] * 12 + [15] * 20 + [1] * 25
        for count in counts:
            event = runtime.push_frame(self._frame(count, rng))
            if event:
                events.append(event)
        tail = runtime.flush()
        if tail:
            events.append(tail)
        assert len(events) == 1
        event = events[0]
        assert event.start_frame < event.end_frame
        assert 0 <= event.gesture < system.num_gestures
        assert 0 <= event.user < system.num_users
        assert 0 < event.gesture_confidence <= 1.0

    def test_no_event_on_idle_stream(self, fitted):
        system, _ = fitted
        runtime = GesturePrintRuntime(system, num_points=12)
        rng = np.random.default_rng(1)
        for _ in range(40):
            assert runtime.push_frame(self._frame(1, rng)) is None
        assert runtime.flush() is None
        assert runtime.events == []

    def test_reset_clears_state(self, fitted):
        system, _ = fitted
        runtime = GesturePrintRuntime(system, num_points=12)
        rng = np.random.default_rng(2)
        for count in [1] * 12 + [15] * 20 + [1] * 25:
            runtime.push_frame(self._frame(count, rng))
        runtime.flush()
        runtime.reset()
        assert runtime.frames_seen == 0
        assert runtime.events == []

    def test_unfitted_system_rejected(self):
        with pytest.raises(ValueError):
            GesturePrintRuntime(GesturePrint())
