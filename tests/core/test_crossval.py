"""k-fold cross-validation: protocol mechanics and aggregation."""

import numpy as np
import pytest

from repro.core import GesturePrintConfig, TrainConfig, cross_validate
from repro.core.crossval import METRIC_NAMES, MetricSummary
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec


def _tiny_config():
    return GesturePrintConfig(
        network=GesIDNetConfig(
            num_points=10,
            in_feature_channels=8,
            sa1_centers=4,
            sa1_scales=(ScaleSpec(0.5, 3, (6,)),),
            sa2_centers=2,
            sa2_scales=(ScaleSpec(1.0, 2, (8,)),),
            level1_mlp=(6,),
            level2_mlp=(8,),
            head1_hidden=(6,),
            dropout=0.0,
        ),
        training=TrainConfig(epochs=3, batch_size=8, learning_rate=2e-3),
        augment=False,
    )


def _data(per_cell=8, seed=0):
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(2):
        for u in range(2):
            for _ in range(per_cell):
                x = rng.normal(size=(10, 8))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.5 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


class TestMetricSummary:
    def test_from_values(self):
        summary = MetricSummary.from_values([0.5, 0.7, 0.9])
        assert summary.mean == pytest.approx(0.7)
        assert summary.minimum == 0.5
        assert summary.maximum == 0.9
        assert summary.std == pytest.approx(np.std([0.5, 0.7, 0.9]))


class TestCrossValidate:
    def test_fold_count_and_metric_keys(self):
        x, g, u = _data()
        report = cross_validate(_tiny_config(), x, g, u, num_folds=3, seed=1)
        assert report.num_folds == 3
        for metrics in report.fold_metrics:
            assert set(metrics) == set(METRIC_NAMES)
        assert set(report.summaries) == set(METRIC_NAMES)

    def test_summary_consistent_with_folds(self):
        x, g, u = _data(seed=2)
        report = cross_validate(_tiny_config(), x, g, u, num_folds=3, seed=2)
        gras = [m["GRA"] for m in report.fold_metrics]
        assert report.summaries["GRA"].mean == pytest.approx(np.mean(gras))
        assert report.summaries["GRA"].minimum == min(gras)

    def test_misaligned_labels_rejected(self):
        x, g, u = _data()
        with pytest.raises(ValueError):
            cross_validate(_tiny_config(), x, g[:-1], u, num_folds=3)

    def test_format_table_lists_all_metrics(self):
        x, g, u = _data(seed=3)
        report = cross_validate(_tiny_config(), x, g, u, num_folds=2, seed=3)
        table = report.format_table()
        for name in METRIC_NAMES:
            assert name in table

    def test_deterministic_given_seed(self):
        x, g, u = _data(seed=4)
        first = cross_validate(_tiny_config(), x, g, u, num_folds=2, seed=5)
        second = cross_validate(_tiny_config(), x, g, u, num_folds=2, seed=5)
        assert first.fold_metrics == second.fold_metrics
