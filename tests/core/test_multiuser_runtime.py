"""Multi-user runtime: per-track segmentation and classification."""

import numpy as np
import pytest

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    MultiUserRuntime,
    TrainConfig,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec
from repro.preprocessing.multiuser import SeparatorParams
from repro.radar import Frame


def _tiny_network():
    return GesIDNetConfig(
        num_points=12,
        in_feature_channels=8,
        sa1_centers=4,
        sa1_scales=(ScaleSpec(0.5, 3, (8,)),),
        sa2_centers=2,
        sa2_scales=(ScaleSpec(1.0, 2, (10,)),),
        level1_mlp=(8,),
        level2_mlp=(10,),
        head1_hidden=(6,),
        dropout=0.0,
    )


def _toy_dataset(n_per_cell=8, num_gestures=2, num_users=2, seed=0):
    rng = np.random.default_rng(seed)
    rows, gestures, users = [], [], []
    for g in range(num_gestures):
        for u in range(num_users):
            for _ in range(n_per_cell):
                x = rng.normal(size=(12, 8))
                x[:, 2] += 2.0 * g
                x[:, 0] *= 1.0 + 1.5 * u
                x[:, 6] = 0.4 + 0.3 * u
                rows.append(x)
                gestures.append(g)
                users.append(u)
    return np.stack(rows), np.array(gestures), np.array(users)


@pytest.fixture(scope="module")
def fitted():
    x, g, u = _toy_dataset(n_per_cell=10)
    config = GesturePrintConfig(
        network=_tiny_network(),
        training=TrainConfig(epochs=10, batch_size=8, learning_rate=3e-3),
        augment=False,
    )
    return GesturePrint(config).fit(x, g, u)


def _person_frame(rng, center_x, count, spread=0.15):
    """A dense blob of points around one person's position."""
    points = np.zeros((count, 5))
    points[:, 0] = rng.normal(center_x, spread, count)
    points[:, 1] = rng.normal(1.5, spread, count)
    points[:, 2] = rng.normal(0.2, spread, count)
    points[:, 3] = rng.normal(0.8, 0.3, count)
    points[:, 4] = rng.uniform(0.5, 2.0, count)
    return points


def _scene_frame(rng, actors):
    """Combine several (center_x, count) actors into one radar frame."""
    chunks = [_person_frame(rng, cx, n) for cx, n in actors if n > 0]
    if not chunks:
        return Frame.empty()
    return Frame(points=np.vstack(chunks))


class TestMultiUserRuntime:
    def test_unfitted_system_rejected(self):
        with pytest.raises(ValueError):
            MultiUserRuntime(GesturePrint())

    def test_single_person_emits_one_event(self, fitted):
        runtime = MultiUserRuntime(fitted, num_points=12, seed=0)
        rng = np.random.default_rng(0)
        counts = [0] * 12 + [15] * 20 + [0] * 25
        events = []
        for count in counts:
            events.extend(runtime.push_frame(_scene_frame(rng, [(-1.0, count)])))
        events.extend(runtime.flush())
        assert len(events) == 1
        assert events[0].track_id == 0
        assert 0 <= events[0].gesture < fitted.num_gestures
        assert 0 <= events[0].user < fitted.num_users

    def test_two_simultaneous_gestures_get_separate_events(self, fitted):
        runtime = MultiUserRuntime(
            fitted,
            num_points=12,
            seed=0,
            separator_params=SeparatorParams(
                cluster_eps_m=0.5, gate_radius_m=0.7, max_missed_frames=45
            ),
        )
        rng = np.random.default_rng(1)
        # Two people 3 m apart, both present (sparse idle residue) before
        # gesturing at overlapping times.
        schedule = (
            [((-1.5, 2), (1.5, 2))] * 12
            + [((-1.5, 12), (1.5, 2))] * 6
            + [((-1.5, 12), (1.5, 12))] * 20
            + [((-1.5, 2), (1.5, 12))] * 6
            + [((-1.5, 2), (1.5, 2))] * 25
        )
        events = []
        for left, right in schedule:
            events.extend(runtime.push_frame(_scene_frame(rng, [left, right])))
        events.extend(runtime.flush())
        track_ids = {e.track_id for e in events}
        assert len(track_ids) == 2
        assert runtime.num_tracks >= 2

    def test_sequential_gestures_on_same_track(self, fitted):
        runtime = MultiUserRuntime(fitted, num_points=12, seed=0)
        rng = np.random.default_rng(2)
        counts = (
            [0] * 12 + [15] * 16 + [0] * 20 + [15] * 16 + [0] * 20
        )
        events = []
        for count in counts:
            events.extend(runtime.push_frame(_scene_frame(rng, [(0.0, count)])))
        events.extend(runtime.flush())
        assert len(events) == 2
        assert {e.track_id for e in events} == {0}

    def test_idle_scene_emits_nothing(self, fitted):
        runtime = MultiUserRuntime(fitted, num_points=12)
        for _ in range(40):
            assert runtime.push_frame(Frame.empty()) == []
        assert runtime.flush() == []
        assert runtime.events == []

    def test_reset_clears_state(self, fitted):
        runtime = MultiUserRuntime(fitted, num_points=12)
        rng = np.random.default_rng(3)
        for count in [0] * 12 + [15] * 20 + [0] * 25:
            runtime.push_frame(_scene_frame(rng, [(0.0, count)]))
        runtime.flush()
        runtime.reset()
        assert runtime.num_tracks == 0
        assert runtime.events == []

    def test_event_properties_mirror_inner_event(self, fitted):
        runtime = MultiUserRuntime(fitted, num_points=12, seed=0)
        rng = np.random.default_rng(4)
        events = []
        for count in [0] * 12 + [15] * 20 + [0] * 25:
            events.extend(runtime.push_frame(_scene_frame(rng, [(0.0, count)])))
        events.extend(runtime.flush())
        event = events[0]
        assert event.gesture == event.event.gesture
        assert event.user == event.event.user
