"""Work-zone geometry, advisories, and runtime integration."""

import numpy as np
import pytest

from repro.core.workzone import (
    DEFAULT_WORK_ZONE,
    WorkZone,
    WorkZoneMonitor,
    ZoneAdvisory,
)
from repro.radar.pointcloud import Frame, PointCloud


def _frame_at(x, y, count=5, intensity=1.0):
    points = np.zeros((count, 5))
    points[:, 0] = x
    points[:, 1] = y
    points[:, 4] = intensity
    return Frame(points=points)


class TestWorkZoneGeometry:
    def test_rejects_negative_min_range(self):
        with pytest.raises(ValueError):
            WorkZone(min_range_m=-0.1)

    def test_rejects_inverted_ranges(self):
        with pytest.raises(ValueError):
            WorkZone(min_range_m=2.0, max_range_m=1.0)

    def test_rejects_bad_azimuth(self):
        with pytest.raises(ValueError):
            WorkZone(max_azimuth_rad=0.0)
        with pytest.raises(ValueError):
            WorkZone(max_azimuth_rad=4.0)

    def test_contains_boresight_point(self):
        assert DEFAULT_WORK_ZONE.contains(0.0, 1.2)

    def test_excludes_far_point(self):
        assert not DEFAULT_WORK_ZONE.contains(0.0, 5.0)

    def test_excludes_too_close_point(self):
        assert not DEFAULT_WORK_ZONE.contains(0.0, 0.1)

    def test_excludes_wide_azimuth(self):
        # 80 degrees off boresight at a valid range.
        x = 2.0 * np.sin(np.deg2rad(80))
        y = 2.0 * np.cos(np.deg2rad(80))
        assert not DEFAULT_WORK_ZONE.contains(x, y)

    def test_boundary_is_inclusive(self):
        zone = WorkZone(min_range_m=1.0, max_range_m=2.0)
        assert zone.contains(0.0, 1.0)
        assert zone.contains(0.0, 2.0)


class TestAdvisories:
    def test_in_zone(self):
        assert DEFAULT_WORK_ZONE.advise_position(0.0, 1.5) is ZoneAdvisory.IN_ZONE

    def test_step_closer_when_far(self):
        assert DEFAULT_WORK_ZONE.advise_position(0.0, 4.5) is ZoneAdvisory.STEP_CLOSER

    def test_step_back_when_close(self):
        assert DEFAULT_WORK_ZONE.advise_position(0.0, 0.2) is ZoneAdvisory.STEP_BACK

    def test_move_to_center_when_off_axis(self):
        x = 2.0 * np.sin(np.deg2rad(75))
        y = 2.0 * np.cos(np.deg2rad(75))
        assert DEFAULT_WORK_ZONE.advise_position(x, y) is ZoneAdvisory.MOVE_TO_CENTER

    def test_in_zone_advisory_message_is_empty(self):
        assert ZoneAdvisory.IN_ZONE.value == ""
        assert "closer" in ZoneAdvisory.STEP_CLOSER.value


class TestWorkZoneMonitor:
    def test_rejects_bad_min_points(self):
        with pytest.raises(ValueError):
            WorkZoneMonitor(min_points=0)

    def test_empty_frame_reports_no_presence(self):
        assert WorkZoneMonitor().advise_frame(Frame.empty()) is ZoneAdvisory.NO_PRESENCE

    def test_too_few_points_reports_no_presence(self):
        monitor = WorkZoneMonitor(min_points=5)
        assert monitor.advise_frame(_frame_at(0.0, 1.5, count=2)) is ZoneAdvisory.NO_PRESENCE

    def test_frame_in_zone(self):
        assert WorkZoneMonitor().advise_frame(_frame_at(0.0, 1.5)) is ZoneAdvisory.IN_ZONE

    def test_frame_too_far(self):
        assert (
            WorkZoneMonitor().advise_frame(_frame_at(0.0, 4.6)) is ZoneAdvisory.STEP_CLOSER
        )

    def test_centroid_is_intensity_weighted(self):
        """A few bright points at 4.5 m dominate dim points at 1 m."""
        dim = np.zeros((5, 5))
        dim[:, 1] = 1.0
        dim[:, 4] = 1e-6
        bright = np.zeros((3, 5))
        bright[:, 1] = 4.5
        bright[:, 4] = 10.0
        frame = Frame(points=np.vstack([dim, bright]))
        assert WorkZoneMonitor().advise_frame(frame) is ZoneAdvisory.STEP_CLOSER

    def test_advise_cloud(self):
        cloud = PointCloud.from_frames([_frame_at(0.0, 2.0), _frame_at(0.1, 2.1)])
        assert WorkZoneMonitor().advise_cloud(cloud) is ZoneAdvisory.IN_ZONE


class TestRuntimeIntegration:
    @pytest.fixture()
    def runtime(self):
        # Reuse the toy fitted system from the multiuser tests.
        from tests.core.test_multiuser_runtime import (
            _tiny_network,
            _toy_dataset,
        )
        from repro.core import (
            GesturePrint,
            GesturePrintConfig,
            GesturePrintRuntime,
            TrainConfig,
        )

        x, g, u = _toy_dataset(n_per_cell=6)
        config = GesturePrintConfig(
            network=_tiny_network(),
            training=TrainConfig(epochs=4, batch_size=8, learning_rate=3e-3),
            augment=False,
        )
        system = GesturePrint(config).fit(x, g, u)
        return GesturePrintRuntime(system, num_points=12, work_zone=WorkZone())

    def test_advisory_tracks_user_position(self, runtime):
        runtime.push_frame(_frame_at(0.0, 1.5, count=8))
        assert runtime.zone_advisory is ZoneAdvisory.IN_ZONE
        runtime.push_frame(_frame_at(0.0, 4.5, count=8))
        assert runtime.zone_advisory is ZoneAdvisory.STEP_CLOSER

    def test_advisory_without_zone_is_in_zone(self, runtime):
        runtime.zone_monitor = None
        assert runtime.zone_advisory is ZoneAdvisory.IN_ZONE

    def test_reset_clears_advisory(self, runtime):
        runtime.push_frame(_frame_at(0.0, 1.5, count=8))
        runtime.reset()
        assert runtime.zone_advisory is ZoneAdvisory.NO_PRESENCE
