"""CORAL alignment: moment matching, invariants, and recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import CoralAligner, CoralConfig, coral_distance


def _domain(rng, n=40, points=16, shift=0.0, scale=1.0):
    x = rng.normal(size=(n, points, 8))
    x[:, :, :5] = x[:, :, :5] * scale + shift
    x[:, :, 5] = rng.random((n, points))
    return x


class TestConfig:
    def test_rejects_empty_channels(self):
        with pytest.raises(ValueError):
            CoralConfig(channels=())

    def test_rejects_duplicate_channels(self):
        with pytest.raises(ValueError):
            CoralConfig(channels=(0, 0, 1))

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            CoralConfig(epsilon=0.0)


class TestFitValidation:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CoralAligner().transform(np.zeros((2, 4, 8)))

    def test_rejects_wrong_rank(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CoralAligner().fit(rng.normal(size=(8, 8)), rng.normal(size=(8, 8)))

    def test_rejects_out_of_range_channel(self):
        rng = np.random.default_rng(0)
        aligner = CoralAligner(CoralConfig(channels=(0, 9)))
        with pytest.raises(ValueError):
            aligner.fit(rng.normal(size=(4, 4, 8)), rng.normal(size=(4, 4, 8)))


class TestAlignment:
    def test_identical_domains_give_near_identity(self):
        rng = np.random.default_rng(1)
        x = _domain(rng, n=60)
        aligned = CoralAligner().fit_transform(x, x)
        np.testing.assert_allclose(aligned, x, atol=0.05)

    def test_mean_shift_removed(self):
        rng = np.random.default_rng(2)
        source = _domain(rng, shift=0.0)
        target = _domain(rng, shift=2.0)
        aligned = CoralAligner().fit_transform(source, target)
        np.testing.assert_allclose(
            aligned[:, :, :5].mean(), source[:, :, :5].mean(), atol=0.05
        )

    def test_scale_mismatch_removed(self):
        rng = np.random.default_rng(3)
        source = _domain(rng, scale=1.0)
        target = _domain(rng, scale=3.0)
        aligned = CoralAligner().fit_transform(source, target)
        assert np.std(aligned[:, :, :5]) == pytest.approx(
            np.std(source[:, :, :5]), rel=0.1
        )

    def test_covariance_matches_source_after_alignment(self):
        rng = np.random.default_rng(4)
        source = _domain(rng, n=80)
        # Correlated distortion: mix channels.
        target = _domain(rng, n=80)
        mix = np.eye(8)
        mix[0, 1] = 0.8
        target = target @ mix.T
        aligned = CoralAligner().fit_transform(source, target)
        assert coral_distance(source, aligned) < coral_distance(source, target)

    def test_non_aligned_channels_untouched(self):
        rng = np.random.default_rng(5)
        source = _domain(rng)
        target = _domain(rng, shift=1.0)
        aligned = CoralAligner().fit_transform(source, target)
        np.testing.assert_array_equal(aligned[:, :, 5:], target[:, :, 5:])

    def test_transform_is_affine(self):
        """Midpoints map to midpoints: the map must be affine per point."""
        rng = np.random.default_rng(6)
        source = _domain(rng)
        target = _domain(rng, shift=1.0, scale=2.0)
        aligner = CoralAligner().fit(source, target)
        a, b = target[:1], target[1:2]
        mid = 0.5 * (a + b)
        np.testing.assert_allclose(
            aligner.transform(mid),
            0.5 * (aligner.transform(a) + aligner.transform(b)),
            atol=1e-10,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        shift=st.floats(-3.0, 3.0, allow_nan=False),
        scale=st.floats(0.3, 3.0, allow_nan=False),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_alignment_reduces_domain_distance(self, shift, scale, seed):
        rng = np.random.default_rng(seed)
        source = _domain(rng, n=50)
        target = _domain(rng, n=50, shift=shift, scale=scale)
        before = coral_distance(source, target)
        aligned = CoralAligner().fit_transform(source, target)
        after = coral_distance(source, aligned)
        assert after <= before + 1e-6


class TestCoralDistance:
    def test_zero_for_identical_data(self):
        rng = np.random.default_rng(7)
        x = _domain(rng)
        assert coral_distance(x, x) == pytest.approx(0.0)

    def test_positive_for_scaled_data(self):
        rng = np.random.default_rng(8)
        x = _domain(rng)
        assert coral_distance(x, 2.0 * x) > 0.0
