"""Incremental enrolment: ID models extend, recognition stays frozen."""

import numpy as np
import pytest

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    IdentificationMode,
    TrainConfig,
    enroll_user,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.nn.setabstraction import ScaleSpec


def _tiny_config(mode=IdentificationMode.SERIALIZED):
    return GesturePrintConfig(
        network=GesIDNetConfig(
            num_points=10,
            in_feature_channels=8,
            sa1_centers=4,
            sa1_scales=(ScaleSpec(0.5, 3, (6,)),),
            sa2_centers=2,
            sa2_scales=(ScaleSpec(1.0, 2, (8,)),),
            level1_mlp=(6,),
            level2_mlp=(8,),
            head1_hidden=(6,),
            dropout=0.0,
        ),
        training=TrainConfig(epochs=12, batch_size=8, learning_rate=3e-3),
        mode=mode,
        augment=False,
    )


def _user_samples(user, num_gestures=2, per_gesture=8, seed=0):
    rng = np.random.default_rng(seed + 17 * user)
    rows, gestures = [], []
    for g in range(num_gestures):
        for _ in range(per_gesture):
            x = rng.normal(size=(10, 8))
            x[:, 2] += 2.0 * g
            x[:, 0] *= 1.0 + 1.5 * user
            x[:, 6] = 0.3 + 0.35 * user
            x[:, 7] = 0.2 + 0.3 * user
            rows.append(x)
            gestures.append(g)
    return np.stack(rows), np.array(gestures)


def _corpus(num_users=2):
    inputs, gestures, users = [], [], []
    for user in range(num_users):
        x, g = _user_samples(user)
        inputs.append(x)
        gestures.append(g)
        users.append(np.full(g.size, user))
    return np.vstack(inputs), np.concatenate(gestures), np.concatenate(users)


@pytest.fixture()
def fitted_with_corpus():
    x, g, u = _corpus()
    system = GesturePrint(_tiny_config()).fit(x, g, u)
    return system, (x, g, u)


class TestValidation:
    def test_unfitted_system_rejected(self):
        x, g, u = _corpus()
        new_x, new_g = _user_samples(2)
        with pytest.raises(RuntimeError):
            enroll_user(GesturePrint(_tiny_config()), x, g, u, new_x, new_g)

    def test_empty_new_samples_rejected(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        with pytest.raises(ValueError):
            enroll_user(system, x, g, u, np.zeros((0, 10, 8)), np.zeros(0, dtype=int))

    def test_misaligned_new_labels_rejected(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2)
        with pytest.raises(ValueError):
            enroll_user(system, x, g, u, new_x, new_g[:-1])

    def test_wrong_feature_layout_rejected(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        with pytest.raises(ValueError):
            enroll_user(system, x, g, u, np.zeros((4, 10, 7)), np.zeros(4, dtype=int))

    def test_out_of_vocabulary_gesture_rejected(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2)
        with pytest.raises(ValueError):
            enroll_user(system, x, g, u, new_x, new_g + 5)


class TestEnrollment:
    def test_new_user_gets_next_id(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2)
        result = enroll_user(system, x, g, u, new_x, new_g)
        assert result.new_user_id == 2
        assert result.num_users == 3
        assert result.samples_added == new_x.shape[0]
        assert system.num_users == 3

    def test_gesture_model_untouched(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        before = [p.data.copy() for p in system.gesture_model.parameters()]
        new_x, new_g = _user_samples(2)
        enroll_user(system, x, g, u, new_x, new_g)
        after = [p.data for p in system.gesture_model.parameters()]
        for old, new in zip(before, after):
            np.testing.assert_array_equal(old, new)

    def test_new_user_is_identifiable(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2, per_gesture=10)
        result = enroll_user(system, x, g, u, new_x, new_g)
        predictions = system.predict(new_x)
        hit_rate = float(np.mean(predictions.user_pred == result.new_user_id))
        assert hit_rate > 0.5

    def test_existing_users_still_identified(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2)
        enroll_user(system, x, g, u, new_x, new_g)
        predictions = system.predict(x)
        accuracy = float(np.mean(predictions.user_pred == u))
        assert accuracy > 0.6

    def test_user_probs_cover_new_population(self, fitted_with_corpus):
        system, (x, g, u) = fitted_with_corpus
        new_x, new_g = _user_samples(2)
        enroll_user(system, x, g, u, new_x, new_g)
        result = system.predict(x[:3])
        assert result.user_probs.shape == (3, 3)

    def test_parallel_mode_enrollment(self):
        x, g, u = _corpus()
        system = GesturePrint(_tiny_config(IdentificationMode.PARALLEL)).fit(x, g, u)
        new_x, new_g = _user_samples(2)
        result = enroll_user(system, x, g, u, new_x, new_g)
        assert result.num_users == 3
        assert system.parallel_user_model is not None
        assert system.predict(new_x).user_probs.shape[1] == 3
