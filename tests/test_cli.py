"""Tests for the command-line interface (render -> train -> evaluate -> demo)."""

import json

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCliWorkflow:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GesturePrint" in out
        assert "60 GHz" in out

    def test_render_train_evaluate_demo(self, tmp_path, capsys):
        data_path = str(tmp_path / "data.npz")
        model_dir = str(tmp_path / "model")

        assert main([
            "render", "--out", data_path, "--users", "2", "--gestures", "2",
            "--reps", "6", "--points", "32", "--seed", "3",
        ]) == 0
        assert "rendered" in capsys.readouterr().out

        assert main([
            "train", "--data", data_path, "--model-dir", model_dir,
            "--epochs", "6", "--batch-size", "16",
        ]) == 0
        out = capsys.readouterr().out
        metrics = json.loads(out[: out.rindex("}") + 1])
        assert set(metrics) == {"GRA", "GRF1", "GRAUC", "UIA", "UIF1", "UIAUC", "EER"}

        assert main(["evaluate", "--data", data_path, "--model-dir", model_dir]) == 0
        json.loads(capsys.readouterr().out)

        code = main([
            "demo", "--model-dir", model_dir, "--gesture", "ahead",
            "--environment", "office", "--seed", "5",
        ])
        out = capsys.readouterr().out
        # Either a detection is printed or the stream had no usable gesture.
        assert code in (0, 1)
        if code == 0:
            assert "gesture #" in out

        # Work-zone advisories: a user far outside the zone triggers the
        # step-closer reminder of SVI-B2.
        code = main([
            "demo", "--model-dir", model_dir, "--gesture", "ahead",
            "--environment", "office", "--seed", "5",
            "--distance", "4.5", "--work-zone",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "advisory: step closer" in out

        # Session identification: fuse several gestures of user 0.
        code = main([
            "session", "--data", data_path, "--model-dir", model_dir,
            "--user", "0", "--gestures", "3",
        ])
        result = json.loads(capsys.readouterr().out)
        assert result["gestures_fused"] == 3
        assert code in (0, 1)

        # Multi-stream serving: events micro-batched across streams.
        code = main([
            "serve", "--model-dir", model_dir, "--streams", "4", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        stats = json.loads(out[: out.index("}") + 1])
        assert stats["streams"] == 4
        assert stats["model_version"] == 0  # no swap happened
        if code == 0:
            assert stats["events"] >= 1
            assert stats["engine_batches"] <= stats["events"]

        # Network gateway: serve the model over localhost TCP with a
        # tenant config, classify through the blocking client.
        import socket
        import threading
        import time

        from repro.datasets import load_dataset
        from repro.serving import GatewayClient

        tenants_path = tmp_path / "tenants.json"
        tenants_path.write_text(json.dumps({
            "tenants": {"cli-vip": "premium"},
            "default_class": "batch",
        }))
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        gateway = threading.Thread(
            target=main,
            args=([
                "serve", "--model-dir", model_dir,
                "--listen", f"127.0.0.1:{port}",
                "--tenants", str(tenants_path),
                "--serve-seconds", "6",
            ],),
            daemon=True,
        )
        gateway.start()
        sample = load_dataset(data_path).inputs[0]
        deadline = time.monotonic() + 10.0
        while True:
            try:
                client = GatewayClient("127.0.0.1", port, tenant="cli-vip")
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        with client:
            assert client.slo_class == "premium"  # cfg.json applied
            wire = client.classify(sample, deadline_ms=0.0)
            assert wire.gesture >= 0
            assert wire.model_version == 0
            with GatewayClient("127.0.0.1", port, tenant="stranger") as other:
                assert other.slo_class == "batch"  # default_class applied
            stats = client.stats()
            assert stats["engine"]["requests"] == 1
            assert stats["tenants"]["cli-vip"]["delivered"] == 1
        gateway.join(timeout=30)  # drain its prints before the next section
        assert not gateway.is_alive()
        capsys.readouterr()

        # Deadline-aware serving: SLO scheduler + checkpoint watching.
        code = main([
            "serve", "--model-dir", model_dir, "--streams", "4", "--seed", "2",
            "--slo-ms", "50", "--adaptive-batch",
            "--watch-model", "--watch-every", "20",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        stats = json.loads(out[: out.index("}") + 1])
        assert stats["classification_errors"] == 0
        assert stats["model_swaps"] == 0  # checkpoint never overwritten
        assert stats["slo_ms"] == 50.0
        assert 1 <= stats["batch_limit"] <= 32
        if code == 0:
            # Any delivery under a scheduler records its queue latency.
            assert stats["queue_p95_ms"] is not None

    def test_session_rejects_too_few_samples(self, tmp_path, capsys):
        data_path = str(tmp_path / "data.npz")
        model_dir = str(tmp_path / "model")
        assert main([
            "render", "--out", data_path, "--users", "2", "--gestures", "2",
            "--reps", "4", "--points", "32", "--seed", "3",
        ]) == 0
        assert main([
            "train", "--data", data_path, "--model-dir", model_dir,
            "--epochs", "2", "--batch-size", "16",
        ]) == 0
        capsys.readouterr()
        assert main([
            "session", "--data", data_path, "--model-dir", model_dir,
            "--user", "0", "--gestures", "99",
        ]) == 1
        assert "need 99" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
