"""Command-line interface for the GesturePrint reproduction.

Subcommands::

    python -m repro.cli info                         # radar + library info
    python -m repro.cli render  --out data.npz ...   # render a dataset
    python -m repro.cli train   --data data.npz --model-dir model/
    python -m repro.cli evaluate --data data.npz --model-dir model/
    python -m repro.cli demo    --model-dir model/   # stream a live gesture
    python -m repro.cli session --data data.npz --model-dir model/
                                                     # multi-gesture identification
    python -m repro.cli serve   --model-dir model/ --streams 8
                                                     # micro-batched multi-stream serving
    python -m repro.cli serve   --model-dir model/ --listen 0.0.0.0:7433 \
                                --tenants tenants.json
                                                     # network gateway (TCP, SLO classes)
    python -m repro.cli serve   --model-dir model/ --listen 0.0.0.0:7433 \
                                --backend process --workers 4
                                                     # multi-process worker pool behind
                                                     # the gateway (mmap-shared weights)

Datasets are exchanged as ``.npz`` archives with the arrays of
:class:`repro.datasets.GestureDataset`.  Model checkpoints are loaded
through a process-wide :class:`repro.serving.ModelRegistry`, so repeated
in-process invocations (tests, notebooks) share fitted systems instead
of re-reading weights from disk.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core import (
    GesturePrint,
    GesturePrintConfig,
    GesturePrintRuntime,
    IdentificationMode,
    TrainConfig,
    WorkZone,
    ZoneAdvisory,
    identify_session,
)
from repro.core.gesidnet import GesIDNetConfig
from repro.core.trainer import train_test_split
from repro.datasets import load_dataset, save_dataset
from repro.radar.config import IWR6843_CONFIG
from repro.serving import ModelRegistry, StreamHub

#: Process-wide checkpoint cache shared by every subcommand.
REGISTRY = ModelRegistry(capacity=4)

DATASET_BUILDERS = {
    "selfcollected": "build_selfcollected",
    "pantomime": "build_pantomime",
    "mhomeges": "build_mhomeges",
    "mtranssee": "build_mtranssee",
}


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    config = IWR6843_CONFIG
    print(f"repro {repro.__version__} — GesturePrint reproduction (ICDCS 2024)")
    print(f"radar: {config.start_frequency_hz/1e9:.0f} GHz band, "
          f"{config.num_tx}x{config.num_rx} antennas, {config.frame_rate_hz:.0f} fps")
    print(f"range: {config.range_resolution_m:.3f} m resolution, "
          f"{config.max_range_m:.1f} m max")
    print(f"velocity: +/-{config.max_velocity_ms:.2f} m/s, "
          f"{config.velocity_resolution_ms:.2f} m/s resolution")
    print(f"datasets: {', '.join(DATASET_BUILDERS)}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    import repro.datasets as datasets_module

    builder = getattr(datasets_module, DATASET_BUILDERS[args.dataset])
    dataset = builder(
        num_users=args.users,
        num_gestures=args.gestures,
        reps=args.reps,
        num_points=args.points,
        seed=args.seed,
    )
    save_dataset(dataset, args.out)
    print(f"rendered {dataset.num_samples} samples "
          f"({args.users} users x {args.gestures} gestures) -> {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    train_idx, test_idx = train_test_split(dataset.num_samples, args.test_fraction,
                                           seed=args.seed)
    config = GesturePrintConfig(
        network=GesIDNetConfig.small() if args.small else GesIDNetConfig(),
        training=TrainConfig(epochs=args.epochs, batch_size=args.batch_size,
                             learning_rate=args.learning_rate, seed=args.seed),
        mode=IdentificationMode(args.mode),
        augment_copies=args.augment_copies,
    )
    system = GesturePrint(config).fit(
        dataset.inputs[train_idx],
        dataset.gesture_labels[train_idx],
        dataset.user_labels[train_idx],
    )
    REGISTRY.save(system, args.model_dir)
    metrics = system.evaluate(
        dataset.inputs[test_idx],
        dataset.gesture_labels[test_idx],
        dataset.user_labels[test_idx],
    )
    print(json.dumps({k: round(v, 4) for k, v in metrics.items()}, indent=2))
    print(f"saved model to {args.model_dir}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    system = REGISTRY.load(args.model_dir)
    metrics = system.evaluate(
        dataset.inputs, dataset.gesture_labels, dataset.user_labels
    )
    print(json.dumps({k: round(v, 4) for k, v in metrics.items()}, indent=2))
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    system = REGISTRY.load(args.model_dir)
    rng = np.random.default_rng(args.seed)
    user = args.user
    idx = np.flatnonzero(dataset.user_labels == user)
    if idx.size < args.gestures:
        print(f"user {user} has only {idx.size} samples; need {args.gestures}")
        return 1
    chosen = rng.choice(idx, size=args.gestures, replace=False)
    estimate = identify_session(system, dataset.inputs[chosen])
    print(json.dumps(
        {
            "true_user": int(user),
            "identified_user": estimate.user,
            "confidence": round(estimate.confidence, 4),
            "gestures_fused": estimate.num_gestures,
        },
        indent=2,
    ))
    return 0 if estimate.user == user else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
    from repro.radar import FastRadar

    system = REGISTRY.load(args.model_dir)
    zone = WorkZone() if args.work_zone else None
    runtime = GesturePrintRuntime(system, seed=args.seed, work_zone=zone)
    users = generate_users(max(args.user + 1, 1), seed=args.user_seed)
    radar = FastRadar(IWR6843_CONFIG, seed=args.seed)
    template = ASL_GESTURES[args.gesture]
    recording = perform_gesture(
        users[args.user], template, radar, ENVIRONMENTS[args.environment],
        distance_m=args.distance,
        rng=np.random.default_rng(args.seed),
    )
    events = []
    for frame in recording.frames:
        event = runtime.push_frame(frame)
        if event:
            events.append(event)
        if args.work_zone and runtime.zone_advisory is not ZoneAdvisory.IN_ZONE:
            advisory = runtime.zone_advisory
            if advisory is not ZoneAdvisory.NO_PRESENCE:
                print(f"advisory: {advisory.value}")
    tail = runtime.flush()
    if tail:
        events.append(tail)
    if not events:
        print("no gesture detected in the stream")
        return 1
    for event in events:
        print(
            f"frames [{event.start_frame}, {event.end_frame}): "
            f"gesture #{event.gesture} (p={event.gesture_confidence:.2f}), "
            f"user #{event.user} (p={event.user_confidence:.2f}), "
            f"{event.num_points} points"
        )
    return 0


def _build_backend(args: argparse.Namespace):
    """The execution backend named by ``--backend``/``--workers``.

    A process backend sources its weight arenas from the process-wide
    registry, so workers attach the same mmap bundle the registry
    exported for the checkpoint — at the ``--precision`` storage dtype —
    and a hot reload (new system object under the same key) re-exports
    automatically, while the backend's refcounts (airborne batches +
    worker attachments) let the registry garbage-collect the superseded
    bundle as soon as it drains.  The pool is supervised:
    ``--heartbeat-ms`` paces the worker health checks, ``--max-respawns``
    budgets crash recovery, and ``--pin-cores`` pins workers round-robin
    across the process's allowed CPUs.
    """
    import pathlib

    from repro.serving import create_backend

    if args.backend == "process":
        key = str(pathlib.Path(args.model_dir).resolve())
        precision = args.precision
        return create_backend(
            "process",
            workers=args.workers,
            arena_provider=lambda system: REGISTRY.arena_for(
                key, system, precision=precision
            ),
            arena_refs=REGISTRY,
            heartbeat_ms=args.heartbeat_ms,
            max_respawns=args.max_respawns,
            precision=precision,
            pin_cores=args.pin_cores,
        )
    return create_backend(args.backend, workers=args.workers)


def _hedge_arg(text: str | None) -> float | str | None:
    """``--hedge-ms`` spelling -> engine ``hedge_ms`` value."""
    if text is None:
        return None
    if str(text).strip().lower() == "auto":
        return "auto"
    try:
        return float(text)
    except ValueError:
        raise SystemExit(
            "error: --hedge-ms needs a number of milliseconds or 'auto', "
            f"got {text!r}"
        ) from None


def _apply_serve_precision(args: argparse.Namespace, system):
    """Fidelity-gate (and, for in-process backends, convert) the system.

    ``--precision float32/int8`` must not silently serve a degraded
    model: the converted candidate is compared against the float64
    reference on a random probe batch and refused (FidelityError) if the
    posterior drift exceeds the per-precision bound.  In-process
    backends then serve the converted copy; a process backend keeps the
    float64 master — its workers attach the reduced-precision arena the
    registry exports, which the gate's candidate round-trips exactly.
    """
    if args.precision == "float64":
        return system
    from repro.serving.precision import (
        apply_precision,
        assert_fidelity,
        fidelity_report,
    )

    candidate = apply_precision(system, args.precision)
    channels = max(3, system.config.network.in_feature_channels)
    rng = np.random.default_rng(args.seed)
    probe = rng.standard_normal((16, 32, channels))
    report = assert_fidelity(fidelity_report(system, candidate, probe))
    print(json.dumps({"precision_gate": report.to_dict()}), flush=True)
    return system if args.backend == "process" else candidate


def _build_observability(args: argparse.Namespace):
    """``(metrics_server, tracer, trace_log)`` per the serve flags.

    ``--metrics-port`` opens the Prometheus ``/metrics`` side port over
    the process-global registry (which every serving component reports
    to by default); ``--trace-log`` tees each ticket's terminal
    :class:`TraceRecord` to a JSONL file.  The tracer itself is always
    on for the gateway (its ring is cheap and the TRACE frame drains it
    remotely).
    """
    from repro.serving.observability import MetricsServer, TraceLog, Tracer

    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(args.metrics_port)
        print(json.dumps({"metrics": metrics_server.url}), flush=True)
    trace_log = TraceLog(args.trace_log) if args.trace_log else None
    tracer = Tracer(capacity=2048, sink=trace_log)
    return metrics_server, tracer, trace_log


def _graceful_sigterm() -> None:
    """Arm SIGTERM to cancel the running serve task.

    Process managers stop children with SIGTERM, whose default action
    skips every ``finally`` — the quota ledger would lose its unsynced
    charges and no exit snapshot would print.  Cancelling the task
    instead routes shutdown through the same drain path as Ctrl-C.
    Best-effort: unavailable loops (non-main thread, Windows Proactor)
    keep the default behaviour.
    """
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    task = asyncio.current_task()
    if task is None:
        return
    try:
        loop.add_signal_handler(signal.SIGTERM, task.cancel)
    except (NotImplementedError, RuntimeError):
        pass


def _listener_ssl(args: argparse.Namespace, *, client_ca: str | None = None):
    """Server-side TLS context per the ``--tls-*`` flags (None = plaintext).

    ``--tls-cert``/``--tls-key`` are this listener's identity.  When
    ``client_ca`` is given, the listener additionally demands client
    certificates signed by it (mutual TLS) — ``serve`` passes its
    ``--tls-ca`` here (a shard accepts only its router), while ``route``
    does not: the router's ``--tls-ca`` pins the *shards'* certificates
    for the upstream hop, and its public edge authenticates clients
    with bearer tokens, not certificates.
    """
    if not args.tls_cert and not args.tls_key:
        return None
    if not (args.tls_cert and args.tls_key):
        raise SystemExit("error: --tls-cert and --tls-key must be given together")
    from repro.serving.gateway.security import server_ssl_context

    return server_ssl_context(args.tls_cert, args.tls_key, cafile=client_ca)


def _read_token_file(path: str | None) -> str | None:
    """The bearer token stored (stripped) in ``path``, if given.

    Tokens travel in files, never argv: a command line is visible to
    every user on the host via ``ps``.
    """
    if not path:
        return None
    with open(path, encoding="utf-8") as handle:
        token = handle.read().strip()
    if not token:
        raise SystemExit(f"error: token file {path!r} is empty")
    return token


def _cmd_serve_gateway(args: argparse.Namespace) -> int:
    """Expose the engine over TCP: the async gateway with SLO classes."""
    import asyncio

    from repro.serving import BatchScheduler, GatewayServer
    from repro.serving.gateway import TenantDirectory

    host, colon, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        colon = ""
    if not colon:
        print(f"error: --listen needs HOST:PORT, got {args.listen!r}",
              file=sys.stderr)
        return 2
    host = host or "0.0.0.0"
    tenants = TenantDirectory()
    if args.tenants:
        with open(args.tenants, encoding="utf-8") as handle:
            tenants = TenantDirectory.from_config(json.load(handle))
    ssl_context = _listener_ssl(args, client_ca=args.tls_ca)
    quota = None
    if args.quota_state or tenants.quotas or tenants.default_quota is not None:
        from repro.serving.gateway.quota import QuotaLedger

        # Policies are read through the directory at check time, so a
        # tenants-config reload rebudgets without touching the ledger.
        quota = QuotaLedger(tenants.quota_policy, state_path=args.quota_state)
    system = _apply_serve_precision(args, REGISTRY.load(args.model_dir))
    slo_ms = args.slo_ms if args.slo_ms is not None else 50.0
    scheduler = BatchScheduler(
        slo_ms=slo_ms, max_batch=args.max_batch, adapt_margin=True
    )
    backend = _build_backend(args)
    metrics_server, tracer, trace_log = _build_observability(args)
    tenant_registry = None
    if args.tenant_cache:
        from repro.serving import ModelRegistry

        tenant_registry = ModelRegistry(capacity=args.tenant_cache)
    server = GatewayServer(
        system,
        scheduler=scheduler,
        backend=backend,
        hedge_ms=_hedge_arg(args.hedge_ms),
        tenants=tenants,
        max_batch_size=args.max_batch,
        tracer=tracer,
        node_id=args.node_id,
        tenant_registry=tenant_registry,
        ssl_context=ssl_context,
        quota=quota,
    )

    def reload_hook() -> int:
        # Registry-backed hot reload: a RELOAD frame (or the periodic
        # watcher) re-checks the checkpoint; an overwritten manifest is
        # swapped in without dropping pending requests.  The tenants
        # config re-reads on the same trigger, so new SLO classes, auth
        # tokens, and quota budgets apply without a restart.
        REGISTRY.load(args.model_dir, on_change=server.engine.swap_system)
        if args.tenants:
            with open(args.tenants, encoding="utf-8") as handle:
                server.reload_tenants(json.load(handle))
        return server.engine.model_version

    server.reload_hook = reload_hook

    async def _serve() -> None:
        _graceful_sigterm()
        bound_host, bound_port = await server.start(host, port)
        print(json.dumps({
            "listening": f"{bound_host}:{bound_port}",
            "slo_ms": slo_ms,
            "classes": sorted(server.tenants.classes),
            "default_class": server.tenants.default_class,
        }), flush=True)
        watcher = None
        if args.watch_model:
            async def _watch() -> None:
                while True:
                    await asyncio.sleep(max(float(args.watch_every), 0.1))
                    try:
                        reload_hook()
                    # A checkpoint caught mid-write fails to parse; the
                    # next tick re-reads it whole.  Deliberate swallow.
                    # repro-check: ignore[RC006]
                    except Exception:
                        pass

            watcher = asyncio.create_task(_watch())
        try:
            if args.serve_seconds is None:
                await server.serve_forever()
            else:
                await asyncio.sleep(args.serve_seconds)
        except asyncio.CancelledError:
            pass
        finally:
            if watcher is not None:
                watcher.cancel()
            await server.aclose()
            print(json.dumps(server.snapshot(), indent=2))

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        backend.close()
        if metrics_server is not None:
            metrics_server.close()
        if trace_log is not None:
            trace_log.close()
    return 0


def _parse_shard_specs(specs: list[str]) -> dict[str, tuple[str, int]]:
    """``ID=HOST:PORT`` pairs -> ``{node_id: (host, port)}``."""
    shards: dict[str, tuple[str, int]] = {}
    for spec in specs:
        node_id, eq, address = spec.partition("=")
        host, colon, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            colon = ""
        if not eq or not colon or not node_id or not host:
            raise SystemExit(
                f"error: --shard needs ID=HOST:PORT, got {spec!r}"
            )
        if node_id in shards:
            raise SystemExit(f"error: duplicate shard id {node_id!r}")
        shards[node_id] = (host, port)
    return shards


def _cmd_route(args: argparse.Namespace) -> int:
    """Front N gateway shards with the consistent-hash cluster router."""
    import asyncio

    from repro.serving.cluster import ClusterRouter

    host, colon, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        colon = ""
    if not colon:
        print(f"error: --listen needs HOST:PORT, got {args.listen!r}",
              file=sys.stderr)
        return 2
    host = host or "0.0.0.0"
    shards = _parse_shard_specs(args.shard)
    metrics_server, tracer, trace_log = _build_observability(args)
    ssl_context = _listener_ssl(args)
    upstream_ssl = None
    if args.tls_ca:
        from repro.serving.gateway.security import client_ssl_context

        # --tls-ca pins the shards' certificate; the router's own cert
        # doubles as its client identity for mutual-TLS shards.
        upstream_ssl = client_ssl_context(
            args.tls_ca, certfile=args.tls_cert, keyfile=args.tls_key
        )
    auth = None
    if args.tenants:
        from repro.serving.gateway.security import TenantAuthenticator

        with open(args.tenants, encoding="utf-8") as handle:
            auth = TenantAuthenticator.from_config(json.load(handle))
    router = ClusterRouter(
        shards,
        vnodes=args.vnodes,
        heartbeat_s=args.heartbeat_ms / 1000.0,
        miss_limit=args.miss_limit,
        affinity=not args.spread,
        probe_tenant=args.probe_tenant,
        tracer=tracer,
        ssl_context=ssl_context,
        upstream_ssl=upstream_ssl,
        shard_token=_read_token_file(args.shard_token_file),
        auth=auth,
    )

    async def _serve() -> None:
        _graceful_sigterm()
        bound_host, bound_port = await router.start(host, port)
        print(json.dumps({
            "listening": f"{bound_host}:{bound_port}",
            "role": "router",
            "shards": sorted(shards),
            "policy": "spread" if args.spread else "affinity",
        }), flush=True)
        try:
            if args.serve_seconds is None:
                await router.serve_forever()
            else:
                await asyncio.sleep(args.serve_seconds)
        except asyncio.CancelledError:
            pass
        finally:
            await router.aclose()
            print(json.dumps(router.snapshot(), indent=2))

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if trace_log is not None:
            trace_log.close()
    return 0


def _cmd_quota(args: argparse.Namespace) -> int:
    """Inspect or reset the quota ledger a gateway persists.

    ``repro quota --state quota.json [--tenants tenants.json]`` prints
    every tenant's window usage against its policy (policies come from
    the tenants config when given, so ``exhausted`` is meaningful);
    ``--reset [--tenant ID]`` zeroes one tenant's counters, or all of
    them.  Run it against a stopped gateway — or accept that a live
    one's file trails its memory by up to ``sync_every`` charges.
    """
    from repro.serving.gateway.quota import QuotaLedger
    from repro.serving.gateway.tenants import TenantDirectory

    lookup = lambda _tenant_id: None  # noqa: E731 - no config, no policy
    if args.tenants:
        with open(args.tenants, encoding="utf-8") as handle:
            lookup = TenantDirectory.from_config(json.load(handle)).quota_policy
    ledger = QuotaLedger(lookup, state_path=args.state)
    if args.reset:
        ledger.reset(args.tenant)
        scope = f"tenant {args.tenant!r}" if args.tenant else "all tenants"
        print(json.dumps({"reset": scope, "state": args.state}))
        return 0
    report = ledger.snapshot()
    if args.tenant is not None:
        if args.tenant not in report:
            print(f"error: no usage recorded for tenant {args.tenant!r}",
                  file=sys.stderr)
            return 1
        report = {args.tenant: report[args.tenant]}
    print(json.dumps(report, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve N simulated concurrent streams through the shared engine."""
    import time

    if args.listen:
        return _cmd_serve_gateway(args)

    from repro.gestures import ASL_GESTURES, ENVIRONMENTS, generate_users, perform_gesture
    from repro.radar import FastRadar
    from repro.serving import BatchScheduler, InferenceEngine

    if args.streams < 1:
        print("error: --streams must be >= 1", file=sys.stderr)
        return 2
    system = _apply_serve_precision(args, REGISTRY.load(args.model_dir))
    users = generate_users(args.streams, seed=args.user_seed)
    radar = FastRadar(IWR6843_CONFIG, seed=args.seed)
    gesture_names = sorted(ASL_GESTURES)

    # One recorded gesture stream per simulated device/user.
    streams: dict[str, list] = {}
    for i in range(args.streams):
        template = ASL_GESTURES[gesture_names[i % len(gesture_names)]]
        recording = perform_gesture(
            users[i % len(users)], template, radar, ENVIRONMENTS[args.environment],
            distance_m=args.distance,
            rng=np.random.default_rng(args.seed + i),
        )
        streams[f"device-{i}"] = list(recording.frames)
    num_rounds = max(len(frames) for frames in streams.values())

    # --adaptive-batch without an explicit target gets the default 50 ms
    # SLO: adaptation and deadline flushes are meaningless without a
    # budget, and a budget-less scheduler would defer events unboundedly.
    # --hedge-ms auto pulls in the same default: its threshold is fitted
    # from the scheduler's latency model, so hedging needs one attached.
    slo_ms = args.slo_ms
    hedge_ms = _hedge_arg(args.hedge_ms)
    if slo_ms is None and (args.adaptive_batch or hedge_ms == "auto"):
        slo_ms = 50.0
    scheduler = None
    if slo_ms is not None:
        scheduler = BatchScheduler(slo_ms=slo_ms, max_batch=args.max_batch)
    backend = _build_backend(args)
    metrics_server, tracer, trace_log = _build_observability(args)
    engine = InferenceEngine(
        system,
        max_batch_size=args.max_batch,
        scheduler=scheduler,
        backend=backend,
        hedge_ms=hedge_ms,
        tracer=tracer,
    )
    hub = StreamHub(
        engine=engine,
        slo_ms=slo_ms,
        base_seed=args.seed,
    )
    for stream_id in streams:
        hub.open_stream(stream_id)

    start = time.perf_counter()
    events = []
    try:
        for round_idx in range(num_rounds):
            frames = {
                stream_id: frames[round_idx]
                for stream_id, frames in streams.items()
                if round_idx < len(frames)
            }
            events.extend(hub.push_round(frames))
            if args.watch_model and (round_idx + 1) % args.watch_every == 0:
                # Registry-backed hot reload: an overwritten checkpoint is
                # picked up between rounds; pending spans finish on the old
                # weights, later results carry the bumped model_version.
                REGISTRY.load(args.model_dir, on_change=hub.engine.swap_system)
        events.extend(hub.flush_streams())
    finally:
        backend.close()
        if metrics_server is not None:
            metrics_server.close()
        if trace_log is not None:
            trace_log.close()
    elapsed = time.perf_counter() - start

    stats = hub.engine.stats
    summary = {
        "streams": args.streams,
        "rounds": num_rounds,
        "backend": backend.name,
        "backend_slots": backend.slots,
        "events": len(events),
        "events_per_sec": round(len(events) / elapsed, 2) if elapsed > 0 else None,
        "engine_batches": stats.batches,
        "mean_batch": round(stats.mean_batch, 2),
        "classification_errors": len(hub.pop_errors()),
        "model_version": hub.engine.model_version,
        "model_swaps": stats.swaps,
    }
    if scheduler is not None:
        snap = scheduler.snapshot()
        summary["slo_ms"] = slo_ms
        summary["batch_limit"] = snap["batch_limit"]
        summary["deadline_flushes"] = snap["deadline_flushes"]
        summary["depth_flushes"] = snap["depth_flushes"]
        p95 = snap["queue_p95_ms"]
        summary["queue_p95_ms"] = round(p95, 3) if p95 is not None else None
    print(json.dumps(summary, indent=2))
    for stream_event in events:
        event = stream_event.event
        inner = event.event if hasattr(event, "event") else event
        print(
            f"{stream_event.stream_id}: frames [{inner.start_frame}, {inner.end_frame}): "
            f"gesture #{inner.gesture} (p={inner.gesture_confidence:.2f}), "
            f"user #{inner.user} (p={inner.user_confidence:.2f})"
        )
    return 0 if events else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print radar/library configuration")

    render = sub.add_parser("render", help="render a synthetic dataset to .npz")
    render.add_argument("--dataset", choices=sorted(DATASET_BUILDERS), default="selfcollected")
    render.add_argument("--out", required=True)
    render.add_argument("--users", type=int, default=4)
    render.add_argument("--gestures", type=int, default=4)
    render.add_argument("--reps", type=int, default=10)
    render.add_argument("--points", type=int, default=64)
    render.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train GesturePrint on a rendered dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--model-dir", required=True)
    train.add_argument("--mode", choices=["serialized", "parallel"], default="serialized")
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--learning-rate", type=float, default=3e-3)
    train.add_argument("--augment-copies", type=int, default=2)
    train.add_argument("--test-fraction", type=float, default=0.2)
    train.add_argument("--small", action="store_true", default=True,
                       help="use the laptop-scale network (default)")
    train.add_argument("--seed", type=int, default=0)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved model on a dataset")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--model-dir", required=True)

    demo = sub.add_parser("demo", help="stream one simulated gesture through a saved model")
    demo.add_argument("--model-dir", required=True)
    demo.add_argument("--gesture", default="push")
    demo.add_argument("--environment", default="office")
    demo.add_argument("--user", type=int, default=0)
    demo.add_argument("--user-seed", type=int, default=11)
    demo.add_argument("--distance", type=float, default=1.2)
    demo.add_argument("--work-zone", action="store_true",
                      help="print step-closer advisories (SVI-B2)")
    demo.add_argument("--seed", type=int, default=0)

    session = sub.add_parser(
        "session", help="identify one user from several fused gestures"
    )
    session.add_argument("--data", required=True)
    session.add_argument("--model-dir", required=True)
    session.add_argument("--user", type=int, default=0)
    session.add_argument("--gestures", type=int, default=3)
    session.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="micro-batch N simulated concurrent streams over one engine, "
                      "or expose it over TCP with --listen"
    )
    serve.add_argument("--model-dir", required=True)
    serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="start the network gateway instead of the "
                            "simulated-stream loop (port 0 picks a free port)")
    serve.add_argument("--tenants", metavar="CFG_JSON", default=None,
                       help="tenant/SLO-class config for the gateway "
                            "(classes, assignments, default_class)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="expose a Prometheus /metrics endpoint on this "
                            "side port (text exposition 0.0.4; scrape with "
                            "curl or a Prometheus job)")
    serve.add_argument("--trace-log", metavar="PATH", default=None,
                       help="append one JSON line per finished request "
                            "trace (submit->terminal lifecycle with "
                            "per-stage latencies) to PATH")
    serve.add_argument("--serve-seconds", type=float, default=None,
                       help="gateway mode: stop after this many seconds "
                            "(default: serve until interrupted)")
    serve.add_argument("--streams", type=int, default=8)
    serve.add_argument("--environment", default="office")
    serve.add_argument("--distance", type=float, default=1.2)
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--backend", choices=["inline", "thread", "process"],
                       default="inline",
                       help="where batches execute: inline (default, in "
                            "the serving thread), a thread pool, or a "
                            "process pool whose workers attach the model "
                            "as a read-only mmap'd weight arena")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker count for --backend thread/process "
                            "(defaults: 2 threads / 4 processes)")
    serve.add_argument("--heartbeat-ms", type=float, default=100.0,
                       help="process-pool supervision: idle workers "
                            "heartbeat at this interval; a silent or "
                            "SIGKILLed worker is detected, its batch "
                            "redispatched once, and a replacement spawned")
    serve.add_argument("--max-respawns", type=int, default=8,
                       help="lifetime worker-respawn budget for "
                            "--backend process; past it the pool serves "
                            "on survivors and fails cleanly when none "
                            "remain")
    serve.add_argument("--precision", choices=["float64", "float32", "int8"],
                       default="float64",
                       help="serving weight precision: float32/int8 run the "
                            "low-precision fast path (wire inputs are float32 "
                            "anyway) behind a fidelity gate that refuses to "
                            "serve a model whose posterior drift or EER delta "
                            "exceeds the per-precision bound")
    serve.add_argument("--hedge-ms", default=None, metavar="MS|auto",
                       help="duplicate a batch to a second backend slot once "
                            "it has been airborne this many ms; first result "
                            "wins, the loser is cancelled; 'auto' derives the "
                            "threshold from the scheduler's observed p95")
    serve.add_argument("--pin-cores", action="store_true",
                       help="--backend process: pin workers round-robin to "
                            "the allowed CPUs (os.sched_setaffinity; no-op "
                            "where unsupported)")
    serve.add_argument("--slo-ms", type=float, default=None,
                       help="p95 span-close -> event-delivery latency target; "
                            "enables the deadline-aware scheduler")
    serve.add_argument("--adaptive-batch", action="store_true",
                       help="adapt the batch limit online from observed "
                            "per-batch latency (EWMA) under the --slo-ms "
                            "budget (defaults to 50 ms if not given)")
    serve.add_argument("--watch-model", action="store_true",
                       help="re-check the checkpoint between rounds and "
                            "hot-swap an overwritten model without dropping "
                            "pending spans")
    serve.add_argument("--watch-every", type=int, default=10,
                       help="rounds between checkpoint staleness checks "
                            "(with --watch-model); in gateway mode, seconds")
    serve.add_argument("--user-seed", type=int, default=11)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--node-id", default=None,
                       help="cluster identity this shard reports in "
                            "handshakes, results, and STATS snapshots "
                            "(set by the router's spawner)")
    serve.add_argument("--tenant-cache", type=int, default=None, metavar="N",
                       help="track per-tenant model residency in an "
                            "N-slot LRU; STATS then reports the hit "
                            "rate the router's tenant affinity buys")
    serve.add_argument("--tls-cert", metavar="PEM", default=None,
                       help="serve TLS with this certificate (needs "
                            "--tls-key; wire protocol unchanged on top)")
    serve.add_argument("--tls-key", metavar="PEM", default=None,
                       help="private key for --tls-cert")
    serve.add_argument("--tls-ca", metavar="PEM", default=None,
                       help="require client certificates signed by this "
                            "CA (mutual TLS — e.g. only the cluster "
                            "router may connect to this shard)")
    serve.add_argument("--quota-state", metavar="PATH", default=None,
                       help="persist per-tenant quota counters to this "
                            "JSON file so calendar budgets survive "
                            "restarts; budgets come from the quotas "
                            "section of --tenants (inspect/reset with "
                            "`repro quota`)")

    route = sub.add_parser(
        "route", help="front N gateway shards with one consistent-hash "
                      "router endpoint"
    )
    route.add_argument("--listen", metavar="HOST:PORT", required=True,
                       help="router bind address (port 0 picks a free port)")
    route.add_argument("--shard", metavar="ID=HOST:PORT", action="append",
                       required=True,
                       help="a shard gateway to route to (repeatable)")
    route.add_argument("--vnodes", type=int, default=64,
                       help="virtual nodes per shard on the hash ring")
    route.add_argument("--heartbeat-ms", type=float, default=500.0,
                       help="per-shard STATS heartbeat interval; a shard "
                            "missing --miss-limit consecutive beats is "
                            "declared dead and leaves the ring")
    route.add_argument("--miss-limit", type=int, default=3,
                       help="consecutive missed heartbeats before a shard "
                            "is declared dead")
    route.add_argument("--spread", action="store_true",
                       help="round-robin instead of tenant-affine "
                            "consistent hashing (control/debug mode)")
    route.add_argument("--probe-tenant", default="cluster-probe",
                       help="tenant id the router's heartbeat connections "
                            "authenticate as")
    route.add_argument("--metrics-port", type=int, default=None,
                       help="expose a Prometheus /metrics endpoint on "
                            "this side port")
    route.add_argument("--trace-log", metavar="PATH", default=None,
                       help="append one JSON line per finished request "
                            "trace to PATH")
    route.add_argument("--serve-seconds", type=float, default=None,
                       help="stop after this many seconds (default: "
                            "serve until interrupted)")
    route.add_argument("--tls-cert", metavar="PEM", default=None,
                       help="serve TLS to clients with this certificate "
                            "(needs --tls-key); with --tls-ca it also "
                            "becomes the router's client certificate "
                            "for mutual-TLS shards")
    route.add_argument("--tls-key", metavar="PEM", default=None,
                       help="private key for --tls-cert")
    route.add_argument("--tls-ca", metavar="PEM", default=None,
                       help="trust pin for the shards' certificates; "
                            "giving it turns on TLS for every "
                            "router->shard hop")
    route.add_argument("--shard-token-file", metavar="PATH", default=None,
                       help="file holding the bearer token the router "
                            "presents upstream; provision it as a "
                            "service token in the shards' --tenants "
                            "config (a file, not argv: command lines "
                            "are world-readable)")
    route.add_argument("--tenants", metavar="CFG_JSON", default=None,
                       help="tenant config whose auth section the "
                            "router enforces at its own edge (client "
                            "tokens checked before any shard is "
                            "contacted)")

    quota = sub.add_parser(
        "quota", help="inspect or reset a gateway's persisted quota ledger"
    )
    quota.add_argument("--state", metavar="PATH", required=True,
                       help="the quota state file a gateway was started "
                            "with (--quota-state)")
    quota.add_argument("--tenants", metavar="CFG_JSON", default=None,
                       help="tenant config supplying the quota policies, "
                            "so the report can mark exhausted budgets")
    quota.add_argument("--tenant", metavar="ID", default=None,
                       help="restrict the report (or the reset) to one "
                            "tenant")
    quota.add_argument("--reset", action="store_true",
                       help="zero the counters instead of reporting "
                            "(all tenants, or --tenant's)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "render": _cmd_render,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "demo": _cmd_demo,
        "session": _cmd_session,
        "serve": _cmd_serve,
        "route": _cmd_route,
        "quota": _cmd_quota,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
