"""Environments and bystanders.

An :class:`Environment` contributes clutter scatterers: fixed reflectors
(walls, furniture, screens) whose returns are mostly suppressed by static
clutter removal, plus "flickering" reflectors (fans, swaying objects,
multipath) whose subtle movement occasionally survives it — the residual
noise the paper's noise-canceling module targets (SIV-B).

A :class:`Bystander` is a second person either walking through the scene
or performing gestures nearby (the two multi-person cases of Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gestures.kinematics import ArmModel, body_scatterers
from repro.radar.scatterer import ScattererSet


@dataclass(frozen=True)
class Environment:
    """Static scene description.

    ``reflector_positions`` hold fixed clutter; ``flicker_rate`` is the
    per-frame probability that a given reflector jitters fast enough to
    survive static clutter removal; ``multipath_rate`` adds ghost points
    near the user (handled by the radar's false-alarm machinery).
    """

    name: str
    reflector_positions: tuple[tuple[float, float, float], ...]
    flicker_rate: float = 0.06
    flicker_speed_ms: float = 0.45
    false_alarms_per_frame: float = 0.8

    def clutter_scatterers(self, rng: np.random.Generator) -> ScattererSet:
        """Instantaneous clutter: every reflector, some currently flickering."""
        if not self.reflector_positions:
            return ScattererSet(np.zeros((0, 3)))
        positions = np.asarray(self.reflector_positions, dtype=np.float64)
        velocities = np.zeros_like(positions)
        flicker = rng.random(positions.shape[0]) < self.flicker_rate
        if flicker.any():
            direction = rng.normal(size=(int(flicker.sum()), 3))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            velocities[flicker] = direction * self.flicker_speed_ms
        rcs = np.full(positions.shape[0], 0.6)
        return ScattererSet(positions=positions, velocities=velocities, rcs=rcs)


def _grid(xs, ys, zs) -> tuple[tuple[float, float, float], ...]:
    return tuple((float(x), float(y), float(z)) for x in xs for y in ys for z in zs)


#: The four evaluation scenarios (Tab. I): office, meeting room, home, open.
ENVIRONMENTS: dict[str, Environment] = {
    "office": Environment(
        name="office",
        reflector_positions=_grid([-1.2, 1.2], [1.8, 3.2], [-0.6, 0.4])
        + ((0.0, 3.9, 0.0), (-1.15, 2.5, 0.1)),
        flicker_rate=0.08,
        false_alarms_per_frame=1.0,
    ),
    "meeting_room": Environment(
        name="meeting_room",
        reflector_positions=_grid([-2.5, 2.5], [3.0, 6.5], [-0.5, 0.3]) + ((0.0, 7.2, 0.0),),
        flicker_rate=0.05,
        false_alarms_per_frame=0.7,
    ),
    "home": Environment(
        name="home",
        reflector_positions=_grid([-1.8, 1.8], [2.2, 4.5], [-0.6, 0.3]),
        flicker_rate=0.07,
        false_alarms_per_frame=0.9,
    ),
    "open": Environment(
        name="open",
        reflector_positions=((0.0, 7.9, 0.2),),
        flicker_rate=0.03,
        false_alarms_per_frame=0.4,
    ),
}


@dataclass
class Bystander:
    """A second person in the scene.

    ``mode`` is "walking" (crosses the scene on a straight path) or
    "gesturing" (stands at ``position`` waving an arm).
    """

    mode: str
    position: tuple[float, float, float] = (1.5, 2.5, 0.0)
    walk_start: tuple[float, float] = (-2.5, 2.5)
    walk_end: tuple[float, float] = (2.5, 2.5)
    walk_speed_ms: float = 1.0
    height_m: float = 1.7
    arm: ArmModel = field(default_factory=lambda: ArmModel(arm_length_m=0.62))

    def scatterers_at(self, time_s: float, rng: np.random.Generator) -> ScattererSet:
        """Scatterers contributed by the bystander at ``time_s``."""
        if self.mode == "walking":
            start = np.array([self.walk_start[0], self.walk_start[1], 0.0])
            end = np.array([self.walk_end[0], self.walk_end[1], 0.0])
            span = np.linalg.norm(end - start)
            direction = (end - start) / max(span, 1e-9)
            travel = (time_s * self.walk_speed_ms) % (2.0 * span)
            if travel > span:  # walk back
                travel = 2.0 * span - travel
                direction = -direction
            center = start + (end - start) * (travel / max(span, 1e-9))
            velocity = direction * self.walk_speed_ms
            hands = {
                "right": center + np.array([0.25, 0.0, -0.45]),
                "left": center + np.array([-0.25, 0.0, -0.45]),
            }
            return body_scatterers(
                center,
                hands,
                self.arm,
                torso_velocity=velocity,
                hand_velocities={"right": velocity, "left": velocity},
                height_m=self.height_m,
            )
        if self.mode == "gesturing":
            center = np.asarray(self.position, dtype=np.float64)
            phase = 2.0 * np.pi * 0.5 * time_s
            hand = center + np.array(
                [0.25 + 0.25 * np.sin(phase), -0.35, 0.1 + 0.2 * np.cos(phase)]
            )
            hand_vel = np.array(
                [0.25 * 2.0 * np.pi * 0.5 * np.cos(phase), 0.0, -0.2 * 2.0 * np.pi * 0.5 * np.sin(phase)]
            )
            return body_scatterers(
                center,
                {"right": hand},
                self.arm,
                hand_velocities={"right": hand_vel},
                height_m=self.height_m,
            )
        raise ValueError(f"unknown bystander mode {self.mode!r}")
