"""Arm and torso kinematics: joint trajectories -> body scatterers.

The body is modelled as point scatterers: a torso grid (large, slow —
mostly suppressed by static clutter removal), and per active arm an
upper-arm / forearm / hand chain whose elbow position is solved with a
two-link inverse-kinematics model.  Hands carry most of the radar
cross-section variation seen in real gesture clouds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.radar.scatterer import ScattererSet


@dataclass(frozen=True)
class ArmModel:
    """Two-link arm with scatterers along each segment."""

    arm_length_m: float
    upper_fraction: float = 0.52
    num_upper_scatterers: int = 3
    num_forearm_scatterers: int = 5
    num_hand_scatterers: int = 6
    #: Habitual elbow flare (rotation of the elbow-circle solution around
    #: the shoulder-hand axis); a per-user shape trait.
    swivel_angle_rad: float = 0.0

    @property
    def upper_length_m(self) -> float:
        return self.arm_length_m * self.upper_fraction

    @property
    def forearm_length_m(self) -> float:
        return self.arm_length_m * (1.0 - self.upper_fraction)

    def solve_elbow(self, shoulder: np.ndarray, hand: np.ndarray) -> np.ndarray:
        """Elbow position from shoulder and hand via 2-link IK.

        The elbow swivel is resolved with a natural "elbow down and out"
        convention.  When the hand is out of reach the arm is fully
        extended toward it.
        """
        shoulder = np.asarray(shoulder, dtype=np.float64)
        hand = np.asarray(hand, dtype=np.float64)
        l1, l2 = self.upper_length_m, self.forearm_length_m
        axis = hand - shoulder
        dist = np.linalg.norm(axis)
        if dist < 1e-9:
            return shoulder + np.array([0.0, 0.0, -l1])
        direction = axis / dist
        if dist >= l1 + l2:
            return shoulder + direction * l1
        # Distance from shoulder to the elbow-circle centre along the axis.
        a = (l1 * l1 - l2 * l2 + dist * dist) / (2.0 * dist)
        a = np.clip(a, -l1, l1)
        radius = np.sqrt(max(l1 * l1 - a * a, 0.0))
        center = shoulder + direction * a
        # Swivel: prefer downward, fall back to lateral when axis is vertical.
        down = np.array([0.0, 0.0, -1.0])
        swivel = down - direction * np.dot(down, direction)
        norm = np.linalg.norm(swivel)
        if norm < 1e-6:
            swivel = np.array([1.0, 0.0, 0.0]) - direction * direction[0]
            norm = np.linalg.norm(swivel)
        swivel /= norm
        if self.swivel_angle_rad != 0.0:
            # Rodrigues rotation of the swivel vector around the
            # shoulder-hand axis: the user's habitual elbow flare.
            angle = self.swivel_angle_rad
            swivel = (
                swivel * np.cos(angle)
                + np.cross(direction, swivel) * np.sin(angle)
                + direction * np.dot(direction, swivel) * (1.0 - np.cos(angle))
            )
        return center + swivel * radius

    def scatterer_positions(self, shoulder: np.ndarray, hand: np.ndarray) -> np.ndarray:
        """Scatterer positions along the arm chain, shape ``(n, 3)``."""
        elbow = self.solve_elbow(shoulder, hand)
        rows = []
        for i in range(1, self.num_upper_scatterers + 1):
            t = i / (self.num_upper_scatterers + 1)
            rows.append(shoulder + t * (elbow - shoulder))
        for i in range(self.num_forearm_scatterers):
            t = (i + 1) / self.num_forearm_scatterers
            rows.append(elbow + t * (hand - elbow))
        # Hand cluster: a small blob around the hand point.
        hand_offsets = np.array(
            [
                [0.0, 0.0, 0.0],
                [0.04, 0.02, 0.0],
                [-0.03, 0.0, 0.03],
                [0.0, 0.04, -0.03],
                [0.03, -0.02, 0.04],
                [-0.04, 0.03, -0.02],
                [0.02, -0.03, -0.04],
                [-0.02, 0.02, 0.05],
            ]
        )[: self.num_hand_scatterers]
        for offset in hand_offsets:
            rows.append(hand + offset)
        return np.array(rows)

    def scatterer_rcs(self) -> np.ndarray:
        """RCS per scatterer: arms are weaker reflectors than hands-with-palm."""
        return np.concatenate(
            [
                np.full(self.num_upper_scatterers, 0.35),
                np.full(self.num_forearm_scatterers, 0.3),
                np.full(self.num_hand_scatterers, 0.22),
            ]
        )


def torso_positions(
    center: np.ndarray, width_m: float, height_m: float, num_rows: int = 3, num_cols: int = 3
) -> np.ndarray:
    """A torso scatterer grid centred at ``center`` facing the radar."""
    xs = np.linspace(-width_m / 2, width_m / 2, num_cols)
    zs = np.linspace(-height_m * 0.18, height_m * 0.12, num_rows)
    grid = np.array([[x, 0.0, z] for z in zs for x in xs])
    return center[None, :] + grid


def body_scatterers(
    torso_center: np.ndarray,
    hands: dict[str, np.ndarray],
    arm: ArmModel,
    *,
    torso_width_m: float = 0.38,
    height_m: float = 1.7,
    torso_velocity: np.ndarray | None = None,
    hand_velocities: dict[str, np.ndarray] | None = None,
    rng: np.random.Generator | None = None,
    velocity_jitter_ms: float = 0.12,
) -> ScattererSet:
    """Assemble the full-body scatterer set for one instant.

    ``hands`` maps hand name ('right'/'left') to its world position; the
    matching shoulders are placed at the torso edges.  Velocities, when
    given, are assigned to the arm chain proportionally to the distance
    from the shoulder (the hand moves fastest, the shoulder barely);
    ``velocity_jitter_ms`` adds per-scatterer micro-Doppler spread (limb
    rotation, skin/clothing flutter) when an ``rng`` is supplied.
    """
    torso_center = np.asarray(torso_center, dtype=np.float64)
    positions = [torso_positions(torso_center, torso_width_m, height_m)]
    velocities = [np.zeros((positions[0].shape[0], 3))]
    if torso_velocity is not None:
        velocities[0] = np.broadcast_to(torso_velocity, velocities[0].shape).copy()
    rcs = [np.full(positions[0].shape[0], 1.2)]

    shoulder_dx = {"right": torso_width_m / 2, "left": -torso_width_m / 2}
    for hand_name, hand_pos in hands.items():
        shoulder = torso_center + np.array([shoulder_dx[hand_name], 0.0, 0.08])
        chain = arm.scatterer_positions(shoulder, np.asarray(hand_pos, dtype=np.float64))
        positions.append(chain)
        chain_rcs = arm.scatterer_rcs()
        rcs.append(chain_rcs)
        chain_vel = np.zeros_like(chain)
        if hand_velocities is not None and hand_name in hand_velocities:
            hand_vel = np.asarray(hand_velocities[hand_name], dtype=np.float64)
            # Velocity ramps from ~0 at the shoulder to full at the hand.
            dists = np.linalg.norm(chain - shoulder, axis=1)
            span = max(np.linalg.norm(hand_pos - shoulder), 1e-6)
            chain_vel = np.clip(dists / span, 0.0, 1.2)[:, None] * hand_vel[None, :]
            if rng is not None and velocity_jitter_ms > 0:
                moving = np.linalg.norm(chain_vel, axis=1) > 1e-3
                jitter = rng.normal(scale=velocity_jitter_ms, size=chain_vel.shape)
                chain_vel[moving] += jitter[moving]
        velocities.append(chain_vel)

    return ScattererSet(
        positions=np.vstack(positions),
        velocities=np.vstack(velocities),
        rcs=np.concatenate(rcs),
    )
