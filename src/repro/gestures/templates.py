"""Gesture templates: canonical hand trajectories.

A template specifies, for each hand, a sequence of waypoints in a
body-centric frame (x lateral toward the dominant side, y forward toward
the radar, z up), in units of the performer's arm length.  Waypoints are
interpolated with a smooth minimum-jerk-like profile at render time.

Two template collections are provided:

* :data:`ASL_GESTURES` — the 15 ASL signs of the paper's self-collected
  dataset (Fig. 9): 9 single-arm and 6 bimanual motions.
* :func:`self_defined_family` — procedurally generated families of
  self-defined gestures (swipes, circles, pushes, zigzags, raises) used
  to clone the Pantomime / mHomeGes / mTransSee datasets, which contain
  only self-defined gestures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GestureTemplate:
    """Canonical description of one gesture.

    ``right_waypoints`` (and ``left_waypoints`` for bimanual gestures)
    are ``(k, 3)`` arrays of hand positions relative to the shoulder, in
    arm lengths.  ``base_duration_s`` is the nominal duration for a
    speed-factor-1.0 performer.
    """

    name: str
    right_waypoints: tuple[tuple[float, float, float], ...]
    left_waypoints: tuple[tuple[float, float, float], ...] | None = None
    base_duration_s: float = 2.4

    def __post_init__(self) -> None:
        if len(self.right_waypoints) < 2:
            raise ValueError("a gesture needs at least two waypoints")
        if self.base_duration_s <= 0:
            raise ValueError("duration must be positive")

    @property
    def bimanual(self) -> bool:
        return self.left_waypoints is not None

    def waypoint_array(self, hand: str) -> np.ndarray:
        if hand == "right":
            return np.asarray(self.right_waypoints, dtype=np.float64)
        if hand == "left":
            if self.left_waypoints is None:
                raise ValueError(f"gesture {self.name!r} is single-handed")
            return np.asarray(self.left_waypoints, dtype=np.float64)
        raise ValueError("hand must be 'right' or 'left'")


def _mirror(waypoints: tuple[tuple[float, float, float], ...]) -> tuple:
    return tuple((-x, y, z) for x, y, z in waypoints)


# Rest position: hand slightly below shoulder, near the body.
_REST = (0.1, 0.25, -0.55)

#: The 15 ASL signs of the self-collected dataset (Fig. 9).  Waypoints are
#: stylised but strongly distinct paths capturing each sign's gross arm
#: motion: the signs differ in quadrant, depth, plane, path shape, and
#: duration so that — as in the paper's Fig. 3 — cross-gesture cloud
#: differences dominate cross-user differences of the same gesture.
ASL_GESTURES: dict[str, GestureTemplate] = {
    # Deep forward thrust at chest height, straight line.
    "ahead": GestureTemplate(
        "ahead", (_REST, (0.1, 0.5, 0.0), (0.1, 1.1, 0.05), _REST), base_duration_s=1.8
    ),
    # Wide horizontal sweep right-to-left at chest height with a pinch.
    "and": GestureTemplate(
        "and", (_REST, (0.7, 0.55, 0.0), (-0.3, 0.6, -0.05), _REST), base_duration_s=2.2
    ),
    # Rising arc to the far right, ends high and wide.
    "another": GestureTemplate(
        "another",
        (_REST, (0.2, 0.55, -0.35), (0.6, 0.6, 0.1), (0.85, 0.55, 0.45), _REST),
        base_duration_s=2.4,
    ),
    # Sharp downward chop in front of the torso, from head height to waist.
    "appoint": GestureTemplate(
        "appoint", (_REST, (0.15, 0.6, 0.5), (0.15, 0.65, -0.45), _REST), base_duration_s=1.9
    ),
    # Flick far to the right and slightly up, shallow depth.
    "away": GestureTemplate(
        "away", (_REST, (0.25, 0.45, 0.0), (0.95, 0.5, 0.25), _REST), base_duration_s=1.7
    ),
    # Both hands meet at the centre, hold, and part slightly (shallow).
    "connect": GestureTemplate(
        "connect",
        (_REST, (0.45, 0.55, 0.0), (0.08, 0.6, 0.05), (0.2, 0.55, 0.0), _REST),
        left_waypoints=_mirror(
            (_REST, (0.45, 0.55, 0.0), (0.08, 0.6, 0.05), (0.2, 0.55, 0.0), _REST)
        ),
        base_duration_s=2.6,
    ),
    # Forearms cross: each hand sweeps to the opposite side at chest height.
    "cross": GestureTemplate(
        "cross",
        (_REST, (0.5, 0.6, 0.1), (-0.45, 0.65, 0.15), _REST),
        left_waypoints=_mirror((_REST, (0.5, 0.6, 0.1), (-0.45, 0.65, 0.15), _REST)),
        base_duration_s=2.3,
    ),
    # Both hands trace a wide high box: out, across, and down (long).
    "every Sunday": GestureTemplate(
        "every Sunday",
        (_REST, (0.2, 0.55, 0.5), (0.75, 0.6, 0.5), (0.75, 0.6, -0.2), _REST),
        left_waypoints=_mirror(
            (_REST, (0.2, 0.55, 0.5), (0.75, 0.6, 0.5), (0.75, 0.6, -0.2), _REST)
        ),
        base_duration_s=3.4,
    ),
    # Small circle drawn right in front of the face (high, shallow).
    "face": GestureTemplate(
        "face",
        (
            _REST,
            (0.1, 0.5, 0.55),
            (0.3, 0.5, 0.7),
            (0.1, 0.5, 0.85),
            (-0.1, 0.5, 0.7),
            (0.1, 0.5, 0.55),
            _REST,
        ),
        base_duration_s=2.8,
    ),
    # Both hands flip outward and down at waist height (low, quick).
    "finish": GestureTemplate(
        "finish",
        (_REST, (0.25, 0.55, -0.3), (0.65, 0.5, -0.5), _REST),
        left_waypoints=_mirror((_REST, (0.25, 0.55, -0.3), (0.65, 0.5, -0.5), _REST)),
        base_duration_s=1.8,
    ),
    # Drag across the forehead left-to-right, very high plane.
    "forget": GestureTemplate(
        "forget",
        (_REST, (-0.25, 0.45, 0.75), (0.55, 0.45, 0.7), _REST),
        base_duration_s=2.1,
    ),
    # Vertical drop close to the body: head height straight down to waist,
    # held near (shallow y) unlike 'appoint' (which is at arm's reach).
    "front": GestureTemplate(
        "front", (_REST, (0.12, 0.35, 0.6), (0.12, 0.3, -0.5), _REST), base_duration_s=2.0
    ),
    # Both palms push deep toward the radar and return (bimanual 'ahead').
    "push": GestureTemplate(
        "push",
        (_REST, (0.2, 0.45, 0.1), (0.2, 1.05, 0.15), (0.2, 0.5, 0.1), _REST),
        left_waypoints=_mirror(
            (_REST, (0.2, 0.45, 0.1), (0.2, 1.05, 0.15), (0.2, 0.5, 0.1), _REST)
        ),
        base_duration_s=2.4,
    ),
    # Both forearms tap a flat surface twice at waist height (low, repeated).
    "table": GestureTemplate(
        "table",
        (
            _REST,
            (0.35, 0.55, -0.35),
            (0.35, 0.55, -0.6),
            (0.35, 0.55, -0.35),
            (0.35, 0.55, -0.6),
            _REST,
        ),
        left_waypoints=_mirror(
            (
                _REST,
                (0.35, 0.55, -0.35),
                (0.35, 0.55, -0.6),
                (0.35, 0.55, -0.35),
                (0.35, 0.55, -0.6),
                _REST,
            )
        ),
        base_duration_s=2.9,
    ),
    # Large lateral zigzag descending across the whole torso (long).
    "zigzag": GestureTemplate(
        "zigzag",
        (
            _REST,
            (0.6, 0.6, 0.55),
            (-0.2, 0.6, 0.3),
            (0.6, 0.6, 0.05),
            (-0.2, 0.6, -0.2),
            (0.6, 0.6, -0.45),
            _REST,
        ),
        base_duration_s=3.2,
    ),
}


def make_swipe_gesture(name: str, direction: tuple[float, float, float]) -> GestureTemplate:
    """A swipe: reach out, sweep along ``direction``, retract."""
    dx, dy, dz = direction
    mid = (0.15, 0.6, 0.0)
    end = (mid[0] + 0.5 * dx, mid[1] + 0.5 * dy, mid[2] + 0.5 * dz)
    start = (mid[0] - 0.35 * dx, mid[1] - 0.35 * dy, mid[2] - 0.35 * dz)
    return GestureTemplate(name, (_REST, start, end, _REST))


def make_pushpull_gesture(name: str, depth: float = 0.5, repeats: int = 1) -> GestureTemplate:
    """Push toward the radar and pull back, ``repeats`` times."""
    near = (0.18, 0.45, 0.0)
    far = (0.18, 0.45 + depth, 0.03)
    path: list[tuple[float, float, float]] = [_REST]
    for _ in range(repeats):
        path.extend([near, far])
    path.extend([near, _REST])
    return GestureTemplate(name, tuple(path), base_duration_s=1.8 + 0.8 * repeats)


def make_circle_gesture(
    name: str, radius: float = 0.3, clockwise: bool = True, plane: str = "xz"
) -> GestureTemplate:
    """Draw a circle with the hand in the given body plane."""
    center = np.array([0.2, 0.6, 0.0])
    angles = np.linspace(0.0, 2.0 * np.pi, 9)
    if clockwise:
        angles = -angles
    path: list[tuple[float, float, float]] = [_REST]
    for theta in angles:
        offset = np.zeros(3)
        if plane == "xz":
            offset[0] = radius * np.cos(theta)
            offset[2] = radius * np.sin(theta)
        elif plane == "xy":
            offset[0] = radius * np.cos(theta)
            offset[1] = radius * np.sin(theta)
        else:
            raise ValueError("plane must be 'xz' or 'xy'")
        path.append(tuple(center + offset))
    path.append(_REST)
    return GestureTemplate(name, tuple(path), base_duration_s=2.8)


def make_zigzag_gesture(name: str, amplitude: float = 0.3, cycles: int = 2) -> GestureTemplate:
    """Lateral zigzag descending from head height."""
    path: list[tuple[float, float, float]] = [_REST]
    z_levels = np.linspace(0.35, -0.2, 2 * cycles + 1)
    for i, z in enumerate(z_levels):
        x = 0.4 if i % 2 == 0 else 0.4 - amplitude
        path.append((x, 0.6, float(z)))
    path.append(_REST)
    return GestureTemplate(name, tuple(path), base_duration_s=2.6)


def make_raise_gesture(name: str, height: float = 0.5, lateral: float = 0.15) -> GestureTemplate:
    """Raise the arm from rest to ``height`` and lower it."""
    return GestureTemplate(
        name,
        (_REST, (lateral, 0.5, -0.2), (lateral, 0.55, height), (lateral, 0.5, -0.2), _REST),
    )


def _bimanualize(template: GestureTemplate) -> GestureTemplate:
    return GestureTemplate(
        name=template.name,
        right_waypoints=template.right_waypoints,
        left_waypoints=_mirror(template.right_waypoints),
        base_duration_s=template.base_duration_s,
    )


def self_defined_family(num_gestures: int, *, seed: int = 7) -> list[GestureTemplate]:
    """Procedurally build ``num_gestures`` distinct self-defined gestures.

    Used to clone the public datasets (Pantomime: 21, mHomeGes: 10,
    mTransSee: 5), whose gestures are "self-defined" arm motions.  The
    family cycles through swipes in 8 directions, push/pull variants,
    circles, zigzags, and raises, randomising parameters so every
    template is geometrically distinct; gestures beyond the 9th are made
    bimanual, mirroring Pantomime's 12 "bimanual complex gestures".
    """
    if num_gestures <= 0:
        raise ValueError("num_gestures must be positive")
    rng = np.random.default_rng(seed)
    directions = [
        (1.0, 0.0, 0.0),
        (-1.0, 0.0, 0.0),
        (0.0, 0.0, 1.0),
        (0.0, 0.0, -1.0),
        (0.7, 0.0, 0.7),
        (-0.7, 0.0, 0.7),
        (0.7, 0.0, -0.7),
        (-0.7, 0.0, -0.7),
    ]
    builders = []
    for idx in range(num_gestures):
        kind = idx % 5
        if kind == 0:
            direction = directions[(idx // 5) % len(directions)]
            builders.append(make_swipe_gesture(f"swipe_{idx}", direction))
        elif kind == 1:
            builders.append(
                make_pushpull_gesture(
                    f"push_{idx}", depth=float(rng.uniform(0.35, 0.6)), repeats=1 + idx % 2
                )
            )
        elif kind == 2:
            builders.append(
                make_circle_gesture(
                    f"circle_{idx}",
                    radius=float(rng.uniform(0.22, 0.38)),
                    clockwise=bool(idx % 2),
                    plane="xz" if idx % 4 < 2 else "xy",
                )
            )
        elif kind == 3:
            builders.append(
                make_zigzag_gesture(
                    f"zigzag_{idx}", amplitude=float(rng.uniform(0.25, 0.4)), cycles=2 + idx % 2
                )
            )
        else:
            builders.append(
                make_raise_gesture(
                    f"raise_{idx}",
                    height=float(rng.uniform(0.4, 0.6)),
                    lateral=float(rng.uniform(0.05, 0.3)),
                )
            )
    templates = []
    for idx, template in enumerate(builders):
        if idx >= 9:
            template = _bimanualize(template)
        templates.append(template)
    return templates
