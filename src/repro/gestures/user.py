"""Simulated participants with per-user biometric motion signatures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UserProfile:
    """Biometric and behavioural parameters of one simulated participant.

    Every parameter influences the rendered gesture point cloud the way
    the paper describes real users differing:

    * ``arm_length_m`` and ``height_m`` set spatial extent and scatterer
      placement (coverage on x/z axes, Fig. 2);
    * ``speed_factor`` scales gesture duration (Fig. 13);
    * ``rom_scale`` shrinks or widens the range of motion per body axis;
    * ``habit_rotation_rad`` tilts the whole motion plane — an "implicit
      motion habit";
    * ``habit_offset_m`` shifts where the user holds their hands;
    * ``tremor_amplitude_m`` / ``tremor_frequency_hz`` add personal
      micro-motion texture;
    * ``smoothness`` shapes the velocity profile (jerky vs fluid motion).
    """

    user_id: int
    arm_length_m: float
    height_m: float
    speed_factor: float
    rom_scale: tuple[float, float, float]
    habit_rotation_rad: float
    habit_offset_m: tuple[float, float, float]
    tremor_amplitude_m: float
    tremor_frequency_hz: float
    smoothness: float
    handedness: float  # +1 right, -1 left
    torso_width_m: float = 0.38
    #: How this user habitually holds the elbow: 0 rad = straight down,
    #: positive = flared outward.  A strong shape biometric — it moves
    #: every forearm/upper-arm scatterer.
    elbow_swivel_rad: float = 0.0
    #: Overall radar cross-section scale of this user's body (build,
    #: clothing): shifts detection probability and hence point density —
    #: the point-number/coverage/density differences the paper observes
    #: between users (SIII).
    rcs_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.arm_length_m <= 0 or self.height_m <= 0:
            raise ValueError("body dimensions must be positive")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")

    @property
    def shoulder_height_m(self) -> float:
        return 0.82 * self.height_m


def generate_users(
    num_users: int, *, seed: int = 0, id_offset: int = 0
) -> list[UserProfile]:
    """Draw ``num_users`` distinct participant profiles.

    The parameter ranges follow the paper's recruitment: ages 20-27,
    height 1.55-1.80 m (SVI-A1); behavioural parameters are drawn wide
    enough that users differ but narrow enough that the identification
    task stays non-trivial (cross-user gaps comparable to the
    within-user repetition noise injected at render time).
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    rng = np.random.default_rng(seed)
    users = []
    for idx in range(num_users):
        height = rng.uniform(1.55, 1.80)
        users.append(
            UserProfile(
                user_id=id_offset + idx,
                arm_length_m=float(0.36 * height + rng.normal(0.0, 0.015)),
                height_m=float(height),
                speed_factor=float(rng.uniform(0.75, 1.3)),
                rom_scale=(
                    float(rng.uniform(0.78, 1.18)),
                    float(rng.uniform(0.78, 1.18)),
                    float(rng.uniform(0.78, 1.18)),
                ),
                habit_rotation_rad=float(rng.normal(0.0, 0.12)),
                habit_offset_m=(
                    float(rng.normal(0.0, 0.06)),
                    float(rng.normal(0.0, 0.04)),
                    float(rng.normal(0.0, 0.06)),
                ),
                tremor_amplitude_m=float(rng.uniform(0.001, 0.004)),
                tremor_frequency_hz=float(rng.uniform(3.0, 5.0)),
                smoothness=float(rng.uniform(0.35, 1.0)),
                handedness=float(1.0 if rng.random() < 0.85 else -1.0),
                torso_width_m=float(rng.uniform(0.34, 0.46)),
                elbow_swivel_rad=float(rng.uniform(-0.7, 0.7)),
                rcs_scale=float(rng.uniform(0.65, 1.5)),
            )
        )
    return users
