"""Render a (user, gesture) pair into radar frames.

:func:`perform_gesture` builds the per-frame scatterer scene — idle
lead-in, personalised gesture motion, idle tail — and runs it through a
radar device, producing the frame stream the preprocessing stage
consumes.  All the per-user effects live here:

* waypoints are scaled by arm length and per-axis range of motion;
* the whole motion plane is tilted by the user's habit rotation and
  shifted by their habit offset;
* duration is scaled by the user's speed factor (plus per-repetition
  jitter — the Fig. 13 effect);
* a minimum-jerk-like velocity profile is blended with a linear one
  according to the user's smoothness;
* physiological tremor adds personal micro-texture.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.gestures.kinematics import ArmModel, torso_positions
from repro.gestures.scene import Bystander, Environment
from repro.gestures.templates import GestureTemplate
from repro.gestures.user import UserProfile
from repro.radar.pointcloud import Frame
from repro.radar.scatterer import ScattererSet  # noqa: F401  (used in render loop)


@dataclass
class GestureRecording:
    """Frames of one recorded gesture performance plus ground truth."""

    frames: list[Frame]
    user_id: int
    gesture_name: str
    distance_m: float
    environment: str
    motion_start_frame: int
    motion_end_frame: int  # exclusive
    metadata: dict = field(default_factory=dict)

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def duration_frames(self) -> int:
        return self.motion_end_frame - self.motion_start_frame


def _smoothstep(t: np.ndarray) -> np.ndarray:
    return t * t * (3.0 - 2.0 * t)


def _interpolate_waypoints(
    waypoints: np.ndarray, phases: np.ndarray, smoothness: float
) -> np.ndarray:
    """Arc-length interpolation along the waypoint path with global easing.

    ``phases`` in [0, 1] maps to distance travelled along the path, with
    a single ease-in/ease-out warp over the whole gesture — so the hand
    accelerates once at the start and decelerates once at the end rather
    than stopping at every waypoint.  ``smoothness`` in [0, 1] blends a
    linear (abrupt) and a smoothstep (fluid) velocity profile.
    """
    phases = np.clip(phases, 0.0, 1.0)
    warped = (1.0 - smoothness) * phases + smoothness * _smoothstep(phases)
    seg_lengths = np.linalg.norm(np.diff(waypoints, axis=0), axis=1)
    total = seg_lengths.sum()
    if total < 1e-9:
        return np.repeat(waypoints[:1], phases.size, axis=0)
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    targets = warped * total
    seg = np.clip(np.searchsorted(cumulative, targets, side="right") - 1, 0, len(seg_lengths) - 1)
    local = (targets - cumulative[seg]) / np.maximum(seg_lengths[seg], 1e-12)
    start = waypoints[seg]
    end = waypoints[seg + 1]
    return start + local[:, None] * (end - start)


def _gesture_habit_rng(user: UserProfile, template: GestureTemplate) -> np.random.Generator:
    """Deterministic RNG keyed on (user, gesture).

    People execute *specific* gestures in personal ways — a habit that is
    stable across repetitions but different across gestures.  This is the
    signal the paper's serialized mode (one ID model per gesture)
    specialises on.
    """
    key = (user.user_id * 1_000_003 + zlib.crc32(template.name.encode())) & 0xFFFFFFFF
    return np.random.default_rng(key)


def _personalized_waypoints(
    template: GestureTemplate,
    user: UserProfile,
    hand: str,
    rng: np.random.Generator,
    rep_jitter_scale: float,
) -> np.ndarray:
    """Apply the user's biometric transform (plus per-rep jitter) to waypoints."""
    waypoints = template.waypoint_array(hand).copy()
    # Stable per-(user, gesture) habit: how THIS user performs THIS
    # gesture.  Larger than the per-repetition jitter so it is learnable.
    habit_rng = _gesture_habit_rng(user, template)
    if waypoints.shape[0] > 2:
        waypoints[1:-1] += habit_rng.normal(scale=0.07, size=(waypoints.shape[0] - 2, 3))
    # Mirror single-arm gestures for left-handed users.
    if not template.bimanual and user.handedness < 0:
        waypoints[:, 0] *= -1.0
    # Scale: arm length (units are arm lengths) and per-axis range of motion.
    scale = user.arm_length_m * np.asarray(user.rom_scale)
    waypoints *= scale[None, :]
    # Habit rotation: tilt the motion in the lateral-vertical plane.
    angle = user.habit_rotation_rad
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    x = waypoints[:, 0] * cos_a - waypoints[:, 2] * sin_a
    z = waypoints[:, 0] * sin_a + waypoints[:, 2] * cos_a
    waypoints[:, 0] = x
    waypoints[:, 2] = z
    # Habit offset: where this user tends to hold their hands.
    waypoints += np.asarray(user.habit_offset_m)[None, :]
    # Per-repetition execution noise on interior waypoints.
    if waypoints.shape[0] > 2:
        jitter = rng.normal(scale=0.015 * rep_jitter_scale, size=(waypoints.shape[0] - 2, 3))
        waypoints[1:-1] += jitter
    return waypoints


def _body_to_radar(offsets: np.ndarray, shoulder_radar: np.ndarray) -> np.ndarray:
    """Map body-frame offsets (x lateral, y forward, z up) to radar frame.

    The user faces the radar: body-forward is radar ``-y``; body-lateral
    (their right) is radar ``-x``; up is up.
    """
    radar = np.empty_like(offsets)
    radar[:, 0] = -offsets[:, 0]
    radar[:, 1] = -offsets[:, 1]
    radar[:, 2] = offsets[:, 2]
    return shoulder_radar[None, :] + radar


def perform_gesture(
    user: UserProfile,
    template: GestureTemplate,
    radar,
    environment: Environment,
    *,
    distance_m: float = 1.2,
    rng: np.random.Generator | None = None,
    bystanders: list[Bystander] | None = None,
    idle_before_frames: tuple[int, int] = (5, 9),
    idle_after_frames: tuple[int, int] = (8, 12),
    speed_override: float | None = None,
    rep_jitter_scale: float = 1.0,
) -> GestureRecording:
    """Record one gesture performance through the given radar device.

    ``speed_override`` replaces the user's speed factor (used by the
    motion-speed experiments); ``rep_jitter_scale`` scales within-user
    execution noise.
    """
    rng = rng or np.random.default_rng()
    bystanders = bystanders or []
    frame_rate = radar.config.frame_rate_hz
    radar_height = radar.config.mounting_height_m

    # --- timeline ------------------------------------------------------
    nominal_speed = speed_override if speed_override is not None else user.speed_factor
    # Per-(user, gesture) pacing habit (stable across repetitions).
    speed = nominal_speed * float(_gesture_habit_rng(user, template).uniform(0.9, 1.1))
    duration_s = template.base_duration_s / speed
    duration_s *= float(rng.uniform(0.95, 1.05))  # per-repetition variation
    num_motion = max(int(round(duration_s * frame_rate)), 4)
    num_before = int(rng.integers(idle_before_frames[0], idle_before_frames[1] + 1))
    num_after = int(rng.integers(idle_after_frames[0], idle_after_frames[1] + 1))
    total = num_before + num_motion + num_after

    # --- geometry ------------------------------------------------------
    torso_z = user.shoulder_height_m - 0.10 - radar_height
    lateral = float(rng.normal(0.0, 0.04))
    torso_center = np.array([lateral, distance_m, torso_z])
    arm = ArmModel(arm_length_m=user.arm_length_m, swivel_angle_rad=user.elbow_swivel_rad)
    shoulder_dx = user.torso_width_m / 2

    hands = ["right"] if not template.bimanual else ["right", "left"]
    waypoints = {
        hand: _personalized_waypoints(template, user, hand, rng, rep_jitter_scale)
        for hand in hands
    }
    # For left-handed single-arm users the physical arm is the left one.
    physical_hand = {h: h for h in hands}
    if not template.bimanual and user.handedness < 0:
        physical_hand = {"right": "left"}

    rest_offset = np.asarray(template.waypoint_array("right")[0]) * user.arm_length_m
    tremor_phase = rng.uniform(0.0, 2.0 * np.pi, size=3)

    # Precompute per-frame hand positions in radar coordinates.
    frame_hand_positions: list[dict[str, np.ndarray]] = []
    for frame_idx in range(total):
        time_s = frame_idx / frame_rate
        sway = 0.004 * np.sin(2.0 * np.pi * 0.25 * time_s + tremor_phase[0])
        positions: dict[str, np.ndarray] = {}
        for hand in hands:
            side = 1.0 if physical_hand[hand] == "right" else -1.0
            shoulder_radar = torso_center + np.array([-side * shoulder_dx, 0.0, 0.08])
            if num_before <= frame_idx < num_before + num_motion:
                phase = (frame_idx - num_before) / max(num_motion - 1, 1)
                offsets = _interpolate_waypoints(
                    waypoints[hand], np.array([phase]), user.smoothness
                )
            else:
                base = rest_offset.copy()
                base[0] *= side
                offsets = base[None, :]
            tremor = user.tremor_amplitude_m * np.sin(
                2.0 * np.pi * user.tremor_frequency_hz * time_s + tremor_phase
            )
            pos = _body_to_radar(offsets, shoulder_radar)[0] + tremor
            pos[2] += sway
            positions[physical_hand[hand]] = pos
        frame_hand_positions.append(positions)

    # --- render frames ---------------------------------------------------
    # Per-frame arm chains; per-scatterer velocities come from central
    # finite differences of the chains, so elbow rotation and forearm
    # swing contribute realistic micro-Doppler even for lateral motion.
    physical_names = sorted({name for positions in frame_hand_positions for name in positions})
    shoulders = {
        name: torso_center
        + np.array([(1.0 if name == "right" else -1.0) * -shoulder_dx, 0.0, 0.08])
        for name in physical_names
    }
    chain_rcs = arm.scatterer_rcs() * user.rcs_scale
    frame_chains: list[dict[str, np.ndarray]] = [
        {
            name: arm.scatterer_positions(shoulders[name], positions[name])
            for name in positions
        }
        for positions in frame_hand_positions
    ]
    torso_pts = torso_positions(torso_center, user.torso_width_m, user.height_m)
    torso_rcs = np.full(torso_pts.shape[0], 1.2 * user.rcs_scale)

    frames: list[Frame] = []
    dt = 1.0 / frame_rate
    velocity_jitter = 0.12
    for frame_idx in range(total):
        time_s = frame_idx / frame_rate
        current = frame_chains[frame_idx]
        nxt = frame_chains[min(frame_idx + 1, total - 1)]
        prev = frame_chains[max(frame_idx - 1, 0)]
        denom = 2.0 * dt if 0 < frame_idx < total - 1 else dt
        breathing = np.array([0.0, 0.006 * np.sin(2.0 * np.pi * 0.25 * time_s), 0.0])
        positions = [torso_pts]
        velocities = [np.broadcast_to(breathing, torso_pts.shape).copy()]
        rcs = [torso_rcs]
        for name in current:
            chain = current[name]
            chain_vel = (nxt[name] - prev[name]) / denom
            moving = np.linalg.norm(chain_vel, axis=1) > 0.05
            if moving.any():
                jitter = rng.normal(scale=velocity_jitter, size=chain_vel.shape)
                chain_vel[moving] += jitter[moving]
            positions.append(chain)
            velocities.append(chain_vel)
            rcs.append(chain_rcs)
        scene = ScattererSet(
            positions=np.vstack(positions),
            velocities=np.vstack(velocities),
            rcs=np.concatenate(rcs),
        )
        scene = scene.merged_with(environment.clutter_scatterers(rng))
        for bystander in bystanders:
            scene = scene.merged_with(bystander.scatterers_at(time_s, rng))
        frames.append(radar.capture_frame(scene))

    return GestureRecording(
        frames=frames,
        user_id=user.user_id,
        gesture_name=template.name,
        distance_m=distance_m,
        environment=environment.name,
        motion_start_frame=num_before,
        motion_end_frame=num_before + num_motion,
        metadata={
            "speed": nominal_speed,
            "effective_speed": speed,
            "duration_s": duration_s,
        },
    )
