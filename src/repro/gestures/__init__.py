"""Parametric human gesture synthesizer.

Replaces the paper's 17 recruited participants: each simulated
:class:`UserProfile` carries biometric parameters (arm length, motion
speed, range of motion, handedness, tremor, idiosyncratic habit offsets)
that shape how that user performs any gesture — exactly the cues the
paper attributes user-identifiability to (SIII: "individual variations in
arm length, motion speed, range of motion, and even implicit motion
habits").

A :class:`GestureTemplate` describes the canonical hand trajectory of a
gesture; :func:`perform_gesture` renders a (user, template) pair into
per-frame scatterer sets, and a radar device turns those into point
clouds.
"""

from repro.gestures.user import UserProfile, generate_users
from repro.gestures.templates import (
    ASL_GESTURES,
    GestureTemplate,
    make_circle_gesture,
    make_pushpull_gesture,
    make_swipe_gesture,
    make_zigzag_gesture,
    self_defined_family,
)
from repro.gestures.kinematics import ArmModel, body_scatterers
from repro.gestures.scene import Bystander, Environment, ENVIRONMENTS
from repro.gestures.synthesis import GestureRecording, perform_gesture

__all__ = [
    "UserProfile",
    "generate_users",
    "ASL_GESTURES",
    "GestureTemplate",
    "make_circle_gesture",
    "make_pushpull_gesture",
    "make_swipe_gesture",
    "make_zigzag_gesture",
    "self_defined_family",
    "ArmModel",
    "body_scatterers",
    "Bystander",
    "Environment",
    "ENVIRONMENTS",
    "GestureRecording",
    "perform_gesture",
]
