"""A compact numpy t-SNE (van der Maaten & Hinton, 2008).

Used to reproduce Fig. 6: visualising the low-level, high-level, and
fusion features extracted by GesIDNet.  This implementation covers the
standard algorithm — perplexity-calibrated Gaussian affinities, early
exaggeration, and gradient descent with momentum on the Student-t
low-dimensional similarities.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    norms = (x * x).sum(axis=1)
    d = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _calibrate_affinities(dists: np.ndarray, perplexity: float, tol: float = 1e-4) -> np.ndarray:
    """Binary-search per-point bandwidths to hit the target perplexity."""
    n = dists.shape[0]
    target_entropy = np.log(perplexity)
    probs = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 1e-20, 1e20
        beta = 1.0
        row = np.delete(dists[i], i)
        for _ in range(60):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = weights / total
            entropy = -(p * np.log(np.clip(p, 1e-30, None))).sum()
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                beta_lo = beta
                beta = beta * 2.0 if beta_hi >= 1e20 else 0.5 * (beta + beta_hi)
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo <= 1e-20 else 0.5 * (beta + beta_lo)
        full = np.insert(p, i, 0.0)
        probs[i] = full
    return probs


def tsne(
    features: np.ndarray,
    *,
    num_components: int = 2,
    perplexity: float = 20.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Embed ``features`` (n, d) into ``(n, num_components)``."""
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 samples")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = np.random.default_rng(seed)

    cond = _calibrate_affinities(_pairwise_sq_dists(features), perplexity)
    joint = (cond + cond.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(scale=1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    exaggeration = 4.0
    for it in range(iterations):
        p = joint * exaggeration if it < iterations // 4 else joint
        dist = _pairwise_sq_dists(embedding)
        inv = 1.0 / (1.0 + dist)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), 1e-12)
        coeff = (p - q) * inv
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ embedding)
        momentum = 0.5 if it < 50 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        embedding = embedding + velocity
        embedding -= embedding.mean(axis=0)
    return embedding


def cluster_quality(embedding: np.ndarray, labels: np.ndarray) -> float:
    """Silhouette-style score: mean (nearest-other - own) / max distance.

    Used by tests and benches to check that fusion features form clearer
    clusters than single-level features (the paper's Fig. 6 claim),
    without needing visual inspection.  Higher is better; range [-1, 1].
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels).ravel()
    dists = np.sqrt(_pairwise_sq_dists(embedding))
    scores = []
    for i in range(embedding.shape[0]):
        same = labels == labels[i]
        same[i] = False
        if not same.any() or same.all():
            continue
        a = dists[i][same].mean()
        b = min(
            dists[i][labels == other].mean() for other in np.unique(labels) if other != labels[i]
        )
        scores.append((b - a) / max(a, b, 1e-12))
    return float(np.mean(scores))
