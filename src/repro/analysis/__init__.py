"""Analysis utilities.

Two families live here:

* paper-facing analysis — t-SNE embedding (Fig. 6) and stage timing
  (SVI-B5);
* repo-facing analysis — the ``repro-check`` concurrency-invariant
  static analyzer (:mod:`repro.analysis.checks`,
  :mod:`repro.analysis.rules`) and the dynamic lock-order witness
  (:mod:`repro.analysis.lockwitness`) used by the fault/chaos tests.
  Run the analyzer with ``python -m repro.analysis`` or the
  ``repro-check`` console script.
"""

from repro.analysis.checks import (
    Finding,
    load_baseline,
    run_checks,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.lockwitness import (
    LockGraph,
    LockOrderViolation,
    WitnessHandle,
    install_if_enabled,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID
from repro.analysis.timing import StageTimer, TimingReport, profile_pipeline
from repro.analysis.tsne import tsne

__all__ = [
    "tsne",
    "StageTimer",
    "TimingReport",
    "profile_pipeline",
    "Finding",
    "run_checks",
    "load_baseline",
    "write_baseline",
    "split_by_baseline",
    "ALL_RULES",
    "RULES_BY_ID",
    "LockGraph",
    "LockOrderViolation",
    "WitnessHandle",
    "install_if_enabled",
]
