"""Analysis utilities: t-SNE embedding (Fig. 6) and stage timing (SVI-B5)."""

from repro.analysis.tsne import tsne
from repro.analysis.timing import StageTimer, TimingReport, profile_pipeline

__all__ = ["tsne", "StageTimer", "TimingReport", "profile_pipeline"]
