"""repro-check: repo-specific concurrency-invariant static analysis.

The serving stack (engine, supervised process pool, asyncio gateway,
refcounted arena registry) is ~5.6k lines of genuinely concurrent code,
and three PRs in a row shipped review-stage fixes for the *same* defect
classes: work done while holding a pool/arena lock, user callbacks fired
under locks, blocking calls on the event loop, and wall-clock /
monotonic-clock confusion.  Review does not scale; tooling does.  This
module is the shared walking/reporting core; the rule visitors
themselves (RC001–RC006) live in :mod:`repro.analysis.rules`, and each
encodes one invariant those incidents taught us
(``docs/concurrency-invariants.md`` maps rules to incidents).

Usage::

    repro-check [paths ...] [--baseline repro_check_baseline.json]
                [--json repro_check.json] [--write-baseline]

* exit 0: no findings beyond the committed baseline;
* exit 1: new findings (printed, and written to ``--json`` if given);
* ``# repro-check: ignore[RC002]`` on the offending line — or on a
  comment line directly above it — suppresses a finding at the source
  (preferred for deliberate, commented sites; say *why* next to it);
* the baseline JSON absorbs findings that are real but not yet fixed —
  matched by (rule, path, source line text), so unrelated line-number
  churn does not invalidate it.

Everything here is stdlib-only so the CI lint job can run it without
the numeric stack.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from collections import Counter
from dataclasses import dataclass, field

#: Suppression spelling: ``# repro-check: ignore[RC001]`` or
#: ``ignore[RC001,RC003]`` or ``ignore[*]`` anywhere on the line.
_SUPPRESS_RE = re.compile(r"#\s*repro-check:\s*ignore\[([A-Za-z0-9*,\s]+)\]")

BASELINE_NAME = "repro_check_baseline.json"
DEFAULT_PATHS = ("src/repro",)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str  # root-relative, posix separators
    line: int
    message: str
    snippet: str  # the offending source line, stripped

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: line *text*, not line
        number, so edits elsewhere in the file don't invalidate it."""
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class ModuleSource:
    """One parsed file handed to every applicable rule."""

    rel: str  # root-relative posix path
    tree: ast.AST
    lines: list[str]
    #: line number -> set of suppressed rule ids ("*" suppresses all).
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        # A suppression lives on the offending line itself, or on the
        # (comment) line directly above — room for a rationale sentence.
        for marks in (self.suppressions.get(lineno), self.suppressions.get(lineno - 1)):
            if marks and ("*" in marks or rule_id in marks):
                return True
        return False

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 0)
        return Finding(
            rule=rule_id,
            path=self.rel,
            line=lineno,
            message=message,
            snippet=self.line_text(lineno),
        )


def parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    suppressed: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            suppressed[number] = rules
    return suppressed


def load_module(path: str, rel: str) -> ModuleSource | None:
    """Parse one file; None (not a crash) on an unreadable/unparsable one
    — syntax errors are ruff's job, not this analyzer's."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError):
        return None
    lines = source.splitlines()
    return ModuleSource(
        rel=rel, tree=tree, lines=lines, suppressions=parse_suppressions(lines)
    )


def iter_py_files(paths: list[str], root: str) -> list[tuple[str, str]]:
    """(absolute, root-relative) pairs for every .py under ``paths``."""
    found: list[tuple[str, str]] = []
    for entry in paths:
        absolute = entry if os.path.isabs(entry) else os.path.join(root, entry)
        if os.path.isfile(absolute):
            found.append((absolute, _relpath(absolute, root)))
            continue
        for directory, subdirs, files in os.walk(absolute):
            subdirs[:] = sorted(
                d for d in subdirs if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    full = os.path.join(directory, name)
                    found.append((full, _relpath(full, root)))
    return found


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive (Windows)
        rel = path
    return rel.replace(os.sep, "/")


def run_checks(
    paths: list[str], *, root: str, rules=None
) -> tuple[list[Finding], int]:
    """All unsuppressed findings plus the number of files scanned."""
    from repro.analysis.rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    findings: list[Finding] = []
    scanned = 0
    for absolute, rel in iter_py_files(paths, root):
        module = load_module(absolute, rel)
        if module is None:
            continue
        scanned += 1
        for rule in active:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(module):
                if not module.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, scanned


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Counter:
    """Baseline as a multiset of finding keys; empty when absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return Counter()
    keys: Counter = Counter()
    for entry in payload.get("findings", []):
        keys[(entry["rule"], entry["path"], entry["snippet"])] += 1
    return keys


def write_baseline(findings: list[Finding], path: str) -> None:
    payload = {
        "version": 1,
        "comment": (
            "Accepted repro-check findings. Every entry must cite a reason "
            "here or at the site; prefer fixing, or an inline "
            "'# repro-check: ignore[RULE]' with rationale, over baselining."
        ),
        "findings": [
            {"rule": f.rule, "path": f.path, "snippet": f.snippet}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def split_by_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding], Counter]:
    """(new, accepted, stale) — stale entries name vanished findings (the
    code was fixed; shrink the baseline)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        if remaining.get(finding.baseline_key, 0) > 0:
            remaining[finding.baseline_key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    stale = Counter({key: count for key, count in remaining.items() if count > 0})
    return new, accepted, stale


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    from repro.analysis.rules import ALL_RULES

    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Concurrency-invariant static analysis for the serving stack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=os.getcwd(),
        help="repository root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON (default: <root>/{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument("--json", default=None, help="write the full report here")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    root = os.path.abspath(args.root)
    baseline_path = args.baseline or os.path.join(root, BASELINE_NAME)
    findings, scanned = run_checks(list(args.paths), root=root)

    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"repro-check: baselined {len(findings)} finding(s) from "
            f"{scanned} file(s) into {baseline_path}"
        )
        return 0

    baseline = Counter() if args.no_baseline else load_baseline(baseline_path)
    new, accepted, stale = split_by_baseline(findings, baseline)

    if args.json:
        report = {
            "scanned_files": scanned,
            "new": [f.as_dict() for f in new],
            "baselined": [f.as_dict() for f in accepted],
            "stale_baseline": [
                {"rule": rule, "path": path, "snippet": snippet, "count": count}
                for (rule, path, snippet), count in sorted(stale.items())
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    for finding in new:
        print(finding.render())
    for (rule, path, snippet), count in sorted(stale.items()):
        print(
            f"warning: stale baseline entry {rule} {path!r} ({snippet!r} x{count}) "
            "— the finding is gone; remove it from the baseline",
            file=sys.stderr,
        )
    summary = (
        f"repro-check: {scanned} file(s), {len(new)} new finding(s), "
        f"{len(accepted)} baselined, {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}"
    )
    print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
