"""RC001–RC008: the serving stack's static invariants as AST rules.

RC001–RC007 encode concurrency incidents; RC008 keeps the public
serving surface documented (the operator handbook links into it).

Each rule is a small class with ``rule_id``, ``title``, ``applies_to``
(path scoping, so e.g. the async-blocking rule only runs on the
gateway), and ``check(module) -> list[Finding]``.  The rules share a
vocabulary tuned to this repo's conventions:

* a *lock-held context* is the body of ``with <something named
  ...lock/...mutex>:`` — **or** the body of any function whose name
  ends in ``_locked``, the pool's convention for "caller holds
  ``self._lock``";
* *blocking* means pipe/socket receives, ``submit``/``submit_urgent``
  dispatch, thread/process joins (unless ``timeout=0``), ``subprocess``,
  ``time.sleep``, disk IO (``open``/``rmtree``/``export_flat``), and
  bare ``.acquire()``/``.result()``;
* RC002/RC003 additionally propagate through same-module helpers: a
  ``with self._lock:`` body that calls ``self._delete_bundle(...)`` is
  flagged if ``_delete_bundle`` itself hits the disk, with the chain in
  the message.  Suppressing the root site (the actual blocking line)
  clears the whole chain — one ``ignore`` comment, not one per caller.

See ``docs/concurrency-invariants.md`` for the incident behind each
rule, and ``tests/analysis/test_rules.py`` for a must-flag / near-miss
fixture pair per rule.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.checks import Finding, ModuleSource

_LOCK_NAME_RE = re.compile(r"(?:^|_)(?:lock|mutex)s?$", re.IGNORECASE)


# ----------------------------------------------------------------------
# Shared AST vocabulary
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """'time.sleep' for ``time.sleep(...)``, 'self._lock.acquire' for
    ``self._lock.acquire()``; '' for anything not a plain name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("<expr>")
    return ".".join(reversed(parts))


def final_attr(name: str) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def is_lockish_expr(node: ast.AST) -> bool:
    """Does this ``with``-item expression look like a lock?  Matches
    ``self._lock``, ``self._arena_lock``, ``lock``, ``threading.Lock()``."""
    if isinstance(node, ast.Call):
        called = final_attr(dotted_name(node.func))
        return called in {"Lock", "RLock"}
    name = dotted_name(node)
    return bool(name) and bool(_LOCK_NAME_RE.search(final_attr(name)))


def lock_with_items(node: ast.With) -> list[str]:
    """Names of the lock-ish items of a ``with``, empty if none."""
    names = []
    for item in node.items:
        if is_lockish_expr(item.context_expr):
            names.append(dotted_name(item.context_expr) or "<lock>")
    return names


def iter_calls(body: list[ast.stmt]):
    """Every Call in ``body``, skipping nested function/class bodies
    (they define code, they don't run it here) but yielding their
    decorators and defaults.  Yields (call, awaited) pairs."""
    awaited: set[int] = set()

    def walk(node: ast.AST):
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Call):
                awaited.add(id(value))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for deco in getattr(node, "decorator_list", []):
                yield from _walk_expr(deco)
            return
        if isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            yield from walk(child)

    def _walk_expr(node: ast.AST):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub

    for stmt in body:
        for call in walk(stmt):
            yield call, id(call) in awaited


def _const_zero(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


def _kwarg(call: ast.Call, name: str) -> ast.AST | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


#: Receivers whose ``.join()`` means "wait for a thread/process", as
#: opposed to ``", ".join(...)`` which is string formatting.
_JOINABLE_RE = re.compile(
    r"(thread|proc|process|worker|supervisor|pool|task)", re.IGNORECASE
)

#: Dotted prefixes that always mean "leaves the process / hits a device".
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "shutil.")
_BLOCKING_EXACT = {
    "time.sleep",
    "os.system",
    "os.popen",
    "open",
    "rmtree",
    "export_flat",
    "connection_wait",  # multiprocessing.connection.wait alias
}
#: Final attributes that block regardless of receiver.
_BLOCKING_ATTRS = {
    "recv",
    "recv_bytes",
    "submit",
    "submit_urgent",
    "rmtree",
    "export_flat",
}


def blocking_reason(call: ast.Call) -> str | None:
    """Why this call blocks (human-readable), or None if it doesn't."""
    name = dotted_name(call.func)
    attr = final_attr(name)
    if name in _BLOCKING_EXACT or attr in _BLOCKING_EXACT:
        return f"`{name or attr}` blocks"
    if any(name.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
        return f"`{name}` blocks"
    if attr in _BLOCKING_ATTRS:
        return f"`{name}` blocks (pipe/dispatch boundary)"
    if attr == "join":
        receiver = name[: -len(".join")] if name.endswith(".join") else ""
        if not _JOINABLE_RE.search(final_attr(receiver) or receiver):
            return None  # str.join and friends
        timeout = _kwarg(call, "timeout")
        if timeout is None and call.args:
            timeout = call.args[0]
        if timeout is not None and _const_zero(timeout):
            return None  # join(timeout=0) is a non-blocking poll
        return f"`{name}` waits on a thread/process"
    if attr == "acquire":
        blocking = _kwarg(call, "blocking")
        if blocking is not None and isinstance(blocking, ast.Constant):
            if blocking.value is False:
                return None
        if call.args and isinstance(call.args[0], ast.Constant):
            if call.args[0].value is False:
                return None
        return f"`{name}` can block on another lock"
    if attr == "result" and _kwarg(call, "timeout") is None and not call.args:
        return f"`{name}` waits on a future"
    return None


def _functions(tree: ast.AST) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module + method functions keyed by bare name (last wins on
    collision — good enough for intra-module propagation)."""
    table: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
    return table


def _callee_local_name(call: ast.Call) -> str | None:
    """'_delete_bundle' for ``self._delete_bundle(...)`` or
    ``_delete_bundle(...)`` — a callee that may resolve in-module."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in {"self", "cls"}:
            return func.attr
    return None


class _Propagation:
    """Fixpoint 'this function (transitively) does X' map for one module.

    ``roots(fn)`` yields (call, reason) for direct hits; suppressed root
    lines (checked via ``module.is_suppressed``) don't count, so one
    inline ``ignore`` at the true site silences every caller.
    """

    def __init__(self, module: ModuleSource, rule_id: str, direct):
        self.module = module
        self.rule_id = rule_id
        self.direct = direct  # Call -> reason | None
        self.table = _functions(module.tree)
        self.reasons: dict[str, str] = {}
        self._solve()

    def _direct_reason(self, fn) -> str | None:
        for call, _awaited in iter_calls(fn.body):
            reason = self.direct(call)
            if reason and not self.module.is_suppressed(
                self.rule_id, getattr(call, "lineno", 0)
            ):
                return reason
        return None

    def _solve(self) -> None:
        for name, fn in self.table.items():
            reason = self._direct_reason(fn)
            if reason:
                self.reasons[name] = reason
        changed = True
        while changed:
            changed = False
            for name, fn in self.table.items():
                if name in self.reasons:
                    continue
                for call, _awaited in iter_calls(fn.body):
                    callee = _callee_local_name(call)
                    if callee and callee in self.reasons and callee != name:
                        self.reasons[name] = (
                            f"calls `{callee}`, which {self.reasons[callee]}"
                        )
                        changed = True
                        break

    def call_reason(self, call: ast.Call) -> str | None:
        """Reason for this call site: direct, or via an in-module callee."""
        reason = self.direct(call)
        if reason:
            return reason
        callee = _callee_local_name(call)
        if callee and callee in self.reasons:
            return f"`{callee}` {self.reasons[callee]}"
        return None


def _locked_contexts(module: ModuleSource):
    """Every lock-held region in the module: (label, body, header_node).

    Yields ``with <lock>:`` bodies and whole ``*_locked`` function bodies
    (the pool's caller-holds-the-lock convention).
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.With):
            locks = lock_with_items(node)
            if locks:
                yield f"with {locks[0]}:", node.body, node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_locked"):
                yield (
                    f"`{node.name}` (runs with the pool lock held "
                    "by naming convention)",
                    node.body,
                    node,
                )


# ----------------------------------------------------------------------
# RC001 — blocking call inside async def (gateway event loop)
# ----------------------------------------------------------------------
class BlockingInAsyncRule:
    rule_id = "RC001"
    title = "blocking call inside `async def` (gateway event loop stall)"

    def applies_to(self, rel: str) -> bool:
        return (
            "serving/gateway" in rel
            or "/gateway/" in rel
            or "serving/cluster" in rel
            or "/cluster/" in rel
        )

    def check(self, module: ModuleSource) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call, awaited in iter_calls(node.body):
                if awaited:
                    continue
                reason = blocking_reason(call)
                if reason is None:
                    continue
                findings.append(
                    module.finding(
                        self.rule_id,
                        call,
                        f"{reason} inside `async def {node.name}` — it stalls "
                        "the event loop for every connected client; use the "
                        "asyncio equivalent or run_in_executor",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RC002 — lock held across a blocking / dispatch boundary
# ----------------------------------------------------------------------
class LockAcrossBlockingRule:
    rule_id = "RC002"
    title = "lock held across a blocking/dispatch boundary"

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, module: ModuleSource) -> list[Finding]:
        propagation = _Propagation(module, self.rule_id, blocking_reason)
        findings = []
        seen: set[int] = set()  # a with-block nested in a _locked fn: flag once
        for label, body, _header in _locked_contexts(module):
            for call, _awaited in iter_calls(body):
                reason = propagation.call_reason(call)
                if reason is None or id(call) in seen:
                    continue
                seen.add(id(call))
                findings.append(
                    module.finding(
                        self.rule_id,
                        call,
                        f"{reason} while a lock is held ({label}) — every "
                        "other thread contending on that lock stalls behind "
                        "this IO; collect work under the lock, perform it "
                        "after release",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RC003 — user-supplied callback invoked under a lock
# ----------------------------------------------------------------------
_CALLBACK_NAMES = {
    "callback",
    "_callback",
    "on_error",
    "on_change",
    "on_event",
    "on_done",
    "on_complete",
    "on_batch_complete",
    "error_callback",
}


def _callback_reason(call: ast.Call) -> str | None:
    attr = final_attr(dotted_name(call.func))
    if attr in _CALLBACK_NAMES:
        return f"invokes user callback `{dotted_name(call.func)}`"
    return None


class CallbackUnderLockRule:
    rule_id = "RC003"
    title = "user-supplied callback invoked while holding a lock"

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, module: ModuleSource) -> list[Finding]:
        propagation = _Propagation(module, self.rule_id, _callback_reason)
        findings = []
        seen: set[int] = set()
        for label, body, _header in _locked_contexts(module):
            for call, _awaited in iter_calls(body):
                reason = propagation.call_reason(call)
                if reason is None or id(call) in seen:
                    continue
                seen.add(id(call))
                findings.append(
                    module.finding(
                        self.rule_id,
                        call,
                        f"{reason} while a lock is held ({label}) — user code "
                        "can run arbitrarily long or re-enter the API and "
                        "deadlock; snapshot under the lock, call after release",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RC004 — wall clock in latency paths
# ----------------------------------------------------------------------
_WALL_CLOCKS = {
    "time.time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


class WallClockRule:
    rule_id = "RC004"
    title = "wall clock (`time.time`/`datetime.now`) in a latency path"

    def applies_to(self, rel: str) -> bool:
        return "serving/" in rel

    def check(self, module: ModuleSource) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCKS:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"`{name}` is wall clock — NTP steps and DST make "
                        "latency math go negative or jump; use "
                        "`time.monotonic()` / `time.perf_counter()` for "
                        "durations (PR 6's wall_window incident)",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RC005 — pickling / mutating arena-backed models in backend code
# ----------------------------------------------------------------------
_ARENA_LOADERS = {"load_system_flat", "load_flat_mmap", "attach_arena"}


class ArenaAbuseRule:
    rule_id = "RC005"
    title = "pickling or mutating an mmap-arena-backed model in backend code"

    def applies_to(self, rel: str) -> bool:
        return "serving/backends" in rel or "worker" in rel.rsplit("/", 1)[-1]

    def check(self, module: ModuleSource) -> list[Finding]:
        findings = []
        for fn in _functions(module.tree).values():
            arena_vars = self._arena_bindings(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_call(module, node, arena_vars))
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    findings.extend(self._check_store(module, node, arena_vars))
        return findings

    @staticmethod
    def _arena_bindings(fn: ast.AST) -> set[str]:
        """Local names bound from an arena loader: ``system =
        load_system_flat(...)``."""
        bound: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if final_attr(dotted_name(node.value.func)) not in _ARENA_LOADERS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        return bound

    def _check_call(self, module, call: ast.Call, arena_vars: set[str]):
        name = dotted_name(call.func)
        attr = final_attr(name)
        uses_arena = any(
            isinstance(arg, ast.Name) and arg.id in arena_vars
            for arg in list(call.args) + [kw.value for kw in call.keywords]
        )
        if name.startswith(("pickle.", "cPickle.", "marshal.")) and attr in {
            "dumps",
            "dump",
        }:
            if uses_arena or not arena_vars:
                # pickling anything in backend code is suspect; pickling a
                # known arena binding is the smoking gun.
                yield module.finding(
                    self.rule_id,
                    call,
                    f"`{name}` serializes full weight tensors — arena-backed "
                    "models must travel as (bundle path, key), never by "
                    "value; the mmap is the transport",
                )
        elif attr in {"send", "put"} and uses_arena:
            yield module.finding(
                self.rule_id,
                call,
                f"`{name}` ships an arena-backed model across a "
                "pipe/queue, which pickles every weight tensor by value — "
                "send the (bundle path, key) and re-attach via mmap",
            )

    def _check_store(self, module, node, arena_vars: set[str]):
        target = node.targets[0] if isinstance(node, ast.Assign) else node.target
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in arena_vars and base is not target:
            yield module.finding(
                self.rule_id,
                node,
                f"writes through arena binding `{base.id}` — arena pages are "
                "mapped copy-on-write-shared across workers; in-place "
                "mutation silently forks pages (memory blowup) or corrupts "
                "shared state",
            )


# ----------------------------------------------------------------------
# RC006 — thread hygiene: implicit daemon, swallowed supervisor errors
# ----------------------------------------------------------------------
class ThreadHygieneRule:
    rule_id = "RC006"
    title = "Thread without explicit daemon=, bare/swallowed except in loops"

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, module: ModuleSource) -> list[Finding]:
        findings = []
        loop_handlers = self._handlers_in_loops(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if final_attr(name) == "Thread" and name in {
                    "Thread",
                    "threading.Thread",
                }:
                    if _kwarg(node, "daemon") is None:
                        findings.append(
                            module.finding(
                                self.rule_id,
                                node,
                                "`Thread(...)` without explicit `daemon=` — "
                                "an implicit non-daemon thread turns every "
                                "unjoined exit path into a hang; state the "
                                "lifetime intent",
                            )
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            "bare `except:` — catches SystemExit/"
                            "KeyboardInterrupt and masks worker death; catch "
                            "`Exception` (at most) and record what happened",
                        )
                    )
                elif id(node) in loop_handlers and self._swallows(node):
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            "exception swallowed (`except ...: pass`) inside "
                            "a loop — a supervisor that eats its own errors "
                            "spins dead; log, count, or re-raise",
                        )
                    )
        return findings

    @staticmethod
    def _handlers_in_loops(tree: ast.AST) -> set[int]:
        """ids of ExceptHandlers lexically inside a while/for loop."""
        inside: set[int] = set()

        def walk(node: ast.AST, in_loop: bool):
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                in_loop = True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                in_loop = False  # nested def: new execution context
            if isinstance(node, ast.ExceptHandler) and in_loop:
                inside.add(id(node))
            for child in ast.iter_child_nodes(node):
                walk(child, in_loop)

        walk(tree, False)
        return inside

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        caught = dotted_name(handler.type) if handler.type is not None else ""
        if final_attr(caught) not in {"Exception", "BaseException"}:
            return False
        body = handler.body
        return len(body) == 1 and isinstance(body[0], (ast.Pass, ast.Continue))


# ----------------------------------------------------------------------
# RC007 — ad-hoc telemetry: bare print(), unbounded list-append stats
# ----------------------------------------------------------------------
_DRAIN_ATTRS = {"clear", "pop", "popleft", "remove"}


class TelemetryRule:
    """Serving code must not improvise its own telemetry.

    Two shapes get flagged:

    * a bare ``print(...)`` — invisible to scrapers, unbounded on a hot
      path, and interleaved garbage under concurrency; use a metric or a
      trace record;
    * an append-only stats list: ``self.xs = []`` in ``__init__`` plus
      ``self.xs.append(...)`` with **no** drain anywhere in the class
      (no ``clear``/``pop``/``remove``, no ``del``, no reassignment, no
      slicing) — a long-lived server grows it forever.  Bounded
      structures (``deque(maxlen=...)``) and lists the class actually
      drains are fine.
    """

    rule_id = "RC007"
    title = "ad-hoc telemetry: bare print() / unbounded list-append stats"

    def applies_to(self, rel: str) -> bool:
        return "serving/" in rel

    def check(self, module: ModuleSource) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and dotted_name(node.func) == "print":
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        "bare `print()` in serving code — stdout telemetry "
                        "is invisible to scrapers and interleaves under "
                        "concurrency; record a metric "
                        "(`repro.serving.observability.metrics`) or a trace "
                        "instead",
                    )
                )
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: ModuleSource, cls: ast.ClassDef):
        grown = self._init_list_attrs(cls)
        if not grown:
            return
        unbounded = grown - self._drained_attrs(cls)
        if not unbounded:
            return
        for fn in self._methods(cls):
            for call, _awaited in iter_calls(fn.body):
                attr = self._self_attr_method(call, {"append", "extend"})
                if attr in unbounded:
                    yield module.finding(
                        self.rule_id,
                        call,
                        f"`self.{attr}.append(...)` grows a list that is "
                        "never drained, cleared, or bounded anywhere in "
                        f"`{cls.name}` — a long-lived server leaks one entry "
                        "per event; use a bounded deque(maxlen=...), a "
                        "counter/histogram, or drain it",
                    )

    @staticmethod
    def _methods(cls: ast.ClassDef):
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt

    @staticmethod
    def _self_attr_name(node: ast.AST) -> str | None:
        """'xs' for a ``self.xs`` expression, else None."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _self_attr_method(self, call: ast.Call, methods: set[str]) -> str | None:
        """'xs' for ``self.xs.append(...)`` when append is in ``methods``."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in methods:
            return self._self_attr_name(func.value)
        return None

    def _init_list_attrs(self, cls: ast.ClassDef) -> set[str]:
        """Attrs assigned a list literal/``list()`` in ``__init__``."""
        attrs: set[str] = set()
        for fn in self._methods(cls):
            if fn.name != "__init__":
                continue
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                    isinstance(value, ast.Call)
                    and dotted_name(value.func) == "list"
                )
                if not is_list:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    name = self._self_attr_name(target)
                    if name is not None:
                        attrs.add(name)
        return attrs

    def _drained_attrs(self, cls: ast.ClassDef) -> set[str]:
        """Attrs the class bounds somewhere: drained, deleted, resliced,
        or reassigned outside ``__init__``."""
        drained: set[str] = set()
        for fn in self._methods(cls):
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    name = self._self_attr_method(node, _DRAIN_ATTRS)
                    if name is not None:
                        drained.add(name)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        base = target
                        if isinstance(base, ast.Subscript):
                            base = base.value
                        name = self._self_attr_name(base)
                        if name is not None:
                            drained.add(name)
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    if fn.name == "__init__" and not isinstance(node, ast.AugAssign):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        base = target
                        if isinstance(base, ast.Subscript):
                            base = base.value  # self.xs[...] = — a trim
                        name = self._self_attr_name(base)
                        if name is not None:
                            drained.add(name)
        return drained


# ----------------------------------------------------------------------
# RC008 — undocumented public serving surface
# ----------------------------------------------------------------------
class PublicDocstringRule:
    """The public serving surface is operator-facing API.

    Anything an operator or integrator can reach by name — module-level
    public functions and classes under ``serving/gateway/`` and
    ``serving/cluster/``, and the public methods of those public
    classes — must carry a docstring.  The handbook (``docs/index.md``)
    links into this surface; an undocumented def there is a dead end in
    the middle of a runbook.

    Underscore-prefixed names (including dunders: ``__init__`` params
    are documented in the class docstring, numpy style) and nested
    defs are private by convention and exempt.
    """

    rule_id = "RC008"
    title = "public serving def/class without a docstring"

    def applies_to(self, rel: str) -> bool:
        return "serving/gateway/" in rel or "serving/cluster/" in rel

    def check(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in module.tree.body:
            findings.extend(self._check_def(module, node, owner=None))
        return findings

    @staticmethod
    def _is_public(name: str) -> bool:
        return not name.startswith("_")

    def _check_def(self, module: ModuleSource, node: ast.stmt, owner: str | None):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self._is_public(node.name) and ast.get_docstring(node) is None:
                label = (
                    f"method `{owner}.{node.name}`"
                    if owner
                    else f"function `{node.name}`"
                )
                yield module.finding(
                    self.rule_id,
                    node,
                    f"public {label} has no docstring — the serving "
                    "surface is operator-facing API; say what it does, "
                    "what it returns, and how it fails (the handbook in "
                    "docs/ links straight into these defs)",
                )
        elif isinstance(node, ast.ClassDef) and self._is_public(node.name):
            if ast.get_docstring(node) is None:
                yield module.finding(
                    self.rule_id,
                    node,
                    f"public class `{node.name}` has no docstring — "
                    "document its role and (numpy style) its constructor "
                    "parameters",
                )
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_def(module, stmt, owner=node.name)


ALL_RULES = [
    BlockingInAsyncRule(),
    LockAcrossBlockingRule(),
    CallbackUnderLockRule(),
    WallClockRule(),
    ArenaAbuseRule(),
    ThreadHygieneRule(),
    TelemetryRule(),
    PublicDocstringRule(),
]

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}


def _finding_sort_key(finding: Finding):
    return (finding.path, finding.line, finding.rule)
