"""``python -m repro.analysis`` — run the repro-check static analyzer."""

from repro.analysis.checks import main

if __name__ == "__main__":
    raise SystemExit(main())
