"""Dynamic lock-order witness: lockdep for the serving stack.

Static rules (RC001–RC006) catch what a lock-held body *does*; they
cannot see the *order* two threads take two locks in.  The classic
serving deadlock — the pool supervisor holds ``pool._lock`` and calls
``registry.decref_arena`` (which takes ``_arena_lock``) while an API
thread holds ``_arena_lock`` and calls into the pool — only manifests
under exactly the wrong interleaving, which chaos runs may never hit.
The witness makes the *ordering* itself the observable: every
instrumented acquisition records "held H, then took N" edges into a
global directed graph, keyed by the locks' creation sites, and a cycle
in that graph is a potential deadlock even if this run never blocked.

Opt-in and zero-cost when off:

* ``REPRO_LOCK_WITNESS=1`` in the environment (checked by the fault
  tests/benches) turns it on; ``install()``/handle ``uninstall()`` do
  the patching explicitly.
* ``install()`` replaces ``threading.Lock``/``threading.RLock`` with
  witness factories, so locks created *after* install are observed;
  locks created before (pytest internals, module globals) are not —
  which is exactly the scope the fault tests want.
* Locks are named by creation site (``file.py:lineno``), so all
  instances from one site form one node — ordering is a property of
  lock *classes*, as in kernel lockdep.  Same-site edges (A@1 → A@1,
  e.g. per-ticket locks taken pairwise) are ignored rather than
  reported as self-deadlocks.

``WitnessRLock`` forwards ``_is_owned``/``_release_save``/
``_acquire_restore`` so ``threading.Condition`` (Future, Event-free
wait paths) keeps working over a witnessed lock.
"""

from __future__ import annotations

import _thread
import os
import sys
import threading
from dataclasses import dataclass, field

ENV_VAR = "REPRO_LOCK_WITNESS"


def enabled() -> bool:
    """True when the opt-in env var asks for witnessing."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in {"", "0", "false", "no"}


class LockOrderViolation(RuntimeError):
    """Raised (in raise mode) when an acquisition closes an order cycle."""


@dataclass
class CycleReport:
    """One detected ordering cycle: names form a closed walk."""

    names: list[str]
    thread: str

    def render(self) -> str:
        chain = " -> ".join(self.names + [self.names[0]])
        return f"lock-order cycle (thread {self.thread}): {chain}"


@dataclass
class LockGraph:
    """Global acquired-while-held graph shared by every witnessed lock."""

    raise_on_cycle: bool = False
    edges: dict[str, set[str]] = field(default_factory=dict)
    cycles: list[CycleReport] = field(default_factory=list)
    locks_created: int = 0
    acquisitions: int = 0

    def __post_init__(self) -> None:
        # A raw C lock, deliberately not a threading.Lock: the graph's own
        # mutex must never itself be witnessed.
        self._mutex = _thread.allocate_lock()

    def record_acquire(self, held: list[str], name: str) -> None:
        """Record held->name edges; detect cycles the new edges close."""
        reports: list[CycleReport] = []
        with self._mutex:
            self.acquisitions += 1
            for held_name in held:
                if held_name == name:
                    continue  # same creation site: lock class, not instance
                peers = self.edges.setdefault(held_name, set())
                if name in peers:
                    continue
                peers.add(name)
                path = self._path(name, held_name)
                if path is not None:
                    reports.append(
                        CycleReport(
                            names=[held_name] + path[:-1],
                            thread=threading.current_thread().name,
                        )
                    )
            self.cycles.extend(reports)
        if reports and self.raise_on_cycle:
            raise LockOrderViolation(reports[0].render())

    def _path(self, start: str, goal: str) -> list[str] | None:
        """DFS path start ⤳ goal through edges, or None. Caller holds
        the mutex."""
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for peer in self.edges.get(node, ()):
                if peer not in visited:
                    visited.add(peer)
                    stack.append((peer, path + [peer]))
        return None

    def assert_clean(self) -> None:
        if self.cycles:
            rendered = "\n".join(report.render() for report in self.cycles)
            raise AssertionError(
                f"lock-order witness recorded {len(self.cycles)} cycle(s):\n"
                f"{rendered}"
            )

    def summary(self) -> dict:
        with self._mutex:
            return {
                "locks_created": self.locks_created,
                "acquisitions": self.acquisitions,
                "edges": sum(len(peers) for peers in self.edges.values()),
                "cycles": [report.render() for report in self.cycles],
            }


_LOCAL = threading.local()


def _held_stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def _creation_site() -> str:
    """file.py:lineno of the first caller frame outside this module and
    the threading machinery — the lock's identity in the graph."""
    frame = sys._getframe(2)
    skip = (__file__, threading.__file__)
    while frame is not None and frame.f_code.co_filename in skip:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    filename = os.path.basename(frame.f_code.co_filename)
    return f"{filename}:{frame.f_lineno}"


class _WitnessBase:
    """Shared acquire/release bookkeeping over a real inner lock."""

    def __init__(self, inner, name: str, graph: LockGraph) -> None:
        self._inner = inner
        self.name = name
        self.graph = graph
        with graph._mutex:
            graph.locks_created += 1

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        if all(entry is not self for entry in stack):
            # Record *before* blocking: a real deadlock still leaves the
            # edge (and the cycle report) behind for the post-mortem.
            held, seen = [], set()
            for entry in stack:
                if id(entry) not in seen:
                    seen.add(id(entry))
                    held.append(entry.name)
            self.graph.record_acquire(held, self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            stack.append(self)
        return got

    def release(self) -> None:
        self._inner.release()
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return probe() if probe is not None else False

    def __getattr__(self, attr: str):
        # Stdlib internals poke version-specific private lock API
        # (e.g. multiprocessing's resource tracker calls
        # `_recursion_count()` on 3.11+); delegate anything we don't
        # witness explicitly straight to the real lock.
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} over {self._inner!r}>"


class WitnessLock(_WitnessBase):
    """Witnessed non-reentrant lock (wraps ``threading.Lock``)."""


class WitnessRLock(_WitnessBase):
    """Witnessed ``threading.RLock`` — forwards the private hooks
    ``threading.Condition`` needs to wait on a reentrant lock."""

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        # Condition.wait releases every recursion level at once; remember
        # how many stack entries that drops so restore can repush them.
        stack = _held_stack()
        depth = sum(1 for entry in stack if entry is self)
        stack[:] = [entry for entry in stack if entry is not self]
        return (self._inner._release_save(), depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)
        _held_stack().extend([self] * depth)


@dataclass
class WitnessHandle:
    """Returned by install(); undoes the patch and reports."""

    graph: LockGraph
    _saved_lock: object
    _saved_rlock: object
    _installed: bool = True

    def uninstall(self) -> None:
        if self._installed:
            threading.Lock = self._saved_lock  # type: ignore[misc]
            threading.RLock = self._saved_rlock  # type: ignore[misc]
            self._installed = False

    def assert_clean(self) -> None:
        self.graph.assert_clean()

    def summary(self) -> dict:
        return self.graph.summary()


def install(*, raise_on_cycle: bool = False, graph: LockGraph | None = None) -> WitnessHandle:
    """Patch ``threading.Lock``/``RLock`` with witness factories.

    Locks created while installed are observed; pre-existing locks are
    not.  Always pair with ``handle.uninstall()`` (the fault-test
    fixture does this in a ``finally``).
    """
    active_graph = graph if graph is not None else LockGraph(raise_on_cycle=raise_on_cycle)
    saved_lock, saved_rlock = threading.Lock, threading.RLock

    def make_lock() -> WitnessLock:
        return WitnessLock(saved_lock(), _creation_site(), active_graph)

    def make_rlock() -> WitnessRLock:
        return WitnessRLock(saved_rlock(), _creation_site(), active_graph)

    threading.Lock = make_lock  # type: ignore[misc]
    threading.RLock = make_rlock  # type: ignore[misc]
    return WitnessHandle(
        graph=active_graph, _saved_lock=saved_lock, _saved_rlock=saved_rlock
    )


def install_if_enabled(**kwargs) -> WitnessHandle | None:
    """install() when ``REPRO_LOCK_WITNESS`` opts in, else None."""
    return install(**kwargs) if enabled() else None
