"""Per-stage latency measurement (reproduces SVI-B5).

The paper reports, per gesture sample: data preprocessing 405.93 ms,
classification inference 677.14 ms (CPU) / 530.99 ms (GPU), total
936.92 ms against an average gesture duration of 2.43 s.  The profiler
here measures the same stages of this reproduction on the local CPU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np


class StageTimer:
    """Accumulate wall-clock samples per named stage."""

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}

    def record(self, stage: str, seconds: float) -> None:
        self._samples.setdefault(stage, []).append(seconds)

    def time(self, stage: str):
        """Context manager measuring one stage invocation."""
        return _StageContext(self, stage)

    def mean_ms(self, stage: str) -> float:
        samples = self._samples.get(stage)
        if not samples:
            raise KeyError(f"no samples for stage {stage!r}")
        return 1000.0 * float(np.mean(samples))

    def stages(self) -> list[str]:
        return list(self._samples)


class _StageContext:
    def __init__(self, timer: StageTimer, stage: str) -> None:
        self._timer = timer
        self._stage = stage
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.record(self._stage, time.perf_counter() - self._start)


@dataclass
class TimingReport:
    """Mean per-stage latencies in milliseconds."""

    preprocessing_ms: float
    recognition_ms: float
    identification_ms: float
    runs: int
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def inference_ms(self) -> float:
        return self.recognition_ms + self.identification_ms

    @property
    def total_ms(self) -> float:
        return self.preprocessing_ms + self.inference_ms


#: Jetson-Nano-vs-laptop-CPU inference slowdown measured by the paper:
#: 1.58 s on the Nano against 677.14 ms on the i7-9750H (SVI-B5), ~2.33x.
JETSON_NANO_SLOWDOWN = 1580.0 / 677.14


def project_edge_latency(
    report: TimingReport, slowdown: float = JETSON_NANO_SLOWDOWN
) -> TimingReport:
    """Project a measured CPU timing report onto a slower edge device.

    The paper deploys inference on a Jetson Nano and reports a fixed
    ratio to its laptop CPU; this applies that ratio to the inference
    stages (preprocessing is numpy-bound and scales with the same
    factor here, conservatively).  Used to sanity-check that the edge
    budget conclusion (SVI-B5) carries over to this reproduction.
    """
    if slowdown <= 0:
        raise ValueError("slowdown must be positive")
    return TimingReport(
        preprocessing_ms=report.preprocessing_ms * slowdown,
        recognition_ms=report.recognition_ms * slowdown,
        identification_ms=report.identification_ms * slowdown,
        runs=report.runs,
        extra={"slowdown": slowdown, **report.extra},
    )


def profile_pipeline(system, recordings, *, num_points: int, runs: int = 20, seed: int = 0) -> TimingReport:
    """Measure preprocessing + recognition + identification latency.

    ``system`` is a fitted :class:`repro.core.GesturePrint`;
    ``recordings`` are raw :class:`GestureRecording` objects.  Each run
    preprocesses one recording and pushes the cloud through both models.
    """
    from repro.core.pipeline import IdentificationMode
    from repro.core.trainer import predict_proba
    from repro.preprocessing.pipeline import normalize_cloud, preprocess_recording

    rng = np.random.default_rng(seed)
    timer = StageTimer()
    done = 0
    while done < runs:
        recording = recordings[done % len(recordings)]
        with timer.time("preprocessing"):
            cloud = preprocess_recording(recording)
            if cloud is None:
                continue
            sample = normalize_cloud(cloud, num_points, rng)[None, ...]
        with timer.time("recognition"):
            gesture_probs = predict_proba(system.gesture_model, sample)
        gesture = int(gesture_probs.argmax())
        with timer.time("identification"):
            if system.config.mode is IdentificationMode.SERIALIZED:
                model = system.user_models.get(gesture)
            else:
                model = system.parallel_user_model
            if model is not None:
                predict_proba(model, sample)
        done += 1
    return TimingReport(
        preprocessing_ms=timer.mean_ms("preprocessing"),
        recognition_ms=timer.mean_ms("recognition"),
        identification_ms=timer.mean_ms("identification"),
        runs=runs,
    )
