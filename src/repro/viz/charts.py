"""Chart builders on the SVG canvas: line charts, scatters, heatmaps.

These regenerate the paper's figure styles — ROC curves (Fig. 10),
accuracy-vs-distance sweeps (Fig. 11), t-SNE feature scatters (Fig. 6),
and confusion matrices — as standalone SVG files written next to the
benchmark tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.viz.svg import Canvas, color_for


@dataclass(frozen=True)
class ChartLayout:
    """Pixel geometry shared by the axis-based charts."""

    width: float = 460.0
    height: float = 340.0
    margin_left: float = 58.0
    margin_right: float = 16.0
    margin_top: float = 34.0
    margin_bottom: float = 48.0

    def __post_init__(self) -> None:
        if self.plot_width <= 0 or self.plot_height <= 0:
            raise ValueError("margins leave no plot area")

    @property
    def plot_width(self) -> float:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> float:
        return self.height - self.margin_top - self.margin_bottom


def nice_ticks(low: float, high: float, max_ticks: int = 6) -> list[float]:
    """Round tick positions covering ``[low, high]`` (1-2-5 progression)."""
    if not math.isfinite(low) or not math.isfinite(high):
        raise ValueError("tick bounds must be finite")
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / max(max_ticks - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 5.0, 10.0):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * step:
        ticks.append(round(value, 10))
        value += step
    return ticks


class _Axes:
    """Axis frame, scales, ticks, and labels for x/y charts."""

    def __init__(
        self,
        canvas: Canvas,
        layout: ChartLayout,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        *,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ) -> None:
        self.canvas = canvas
        self.layout = layout
        self.x_low, self.x_high = x_range
        self.y_low, self.y_high = y_range
        if self.x_high <= self.x_low or self.y_high <= self.y_low:
            raise ValueError("axis ranges must be non-degenerate")
        self._draw_frame(title, x_label, y_label)

    def x_to_px(self, x: float) -> float:
        fraction = (x - self.x_low) / (self.x_high - self.x_low)
        return self.layout.margin_left + fraction * self.layout.plot_width

    def y_to_px(self, y: float) -> float:
        fraction = (y - self.y_low) / (self.y_high - self.y_low)
        return self.layout.margin_top + (1.0 - fraction) * self.layout.plot_height

    def _draw_frame(self, title: str, x_label: str, y_label: str) -> None:
        canvas, layout = self.canvas, self.layout
        left, top = layout.margin_left, layout.margin_top
        right = layout.margin_left + layout.plot_width
        bottom = layout.margin_top + layout.plot_height
        canvas.line(left, bottom, right, bottom, stroke="#444")
        canvas.line(left, top, left, bottom, stroke="#444")
        for tick in nice_ticks(self.x_low, self.x_high):
            if not self.x_low <= tick <= self.x_high:
                continue
            x = self.x_to_px(tick)
            canvas.line(x, bottom, x, bottom + 4, stroke="#444")
            canvas.text(x, bottom + 17, f"{tick:g}", anchor="middle", size=10)
        for tick in nice_ticks(self.y_low, self.y_high):
            if not self.y_low <= tick <= self.y_high:
                continue
            y = self.y_to_px(tick)
            canvas.line(left - 4, y, left, y, stroke="#444")
            canvas.text(left - 7, y + 3.5, f"{tick:g}", anchor="end", size=10)
            canvas.line(left, y, right, y, stroke="#eee")
        if title:
            canvas.text(layout.width / 2, 20, title, anchor="middle", size=13)
        if x_label:
            canvas.text(
                (left + right) / 2, layout.height - 10, x_label, anchor="middle", size=11
            )
        if y_label:
            canvas.text(16, (top + bottom) / 2, y_label, anchor="middle", size=11,
                        rotate=-90.0)


def _legend(canvas: Canvas, layout: ChartLayout, names: list[str]) -> None:
    x = layout.margin_left + 10
    y = layout.margin_top + 12
    for index, name in enumerate(names):
        canvas.rect(x, y - 7 + 15 * index, 10, 3, fill=color_for(index))
        canvas.text(x + 15, y + 15 * index - 1, name, size=10)


def line_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_range: tuple[float, float] | None = None,
    diagonal: bool = False,
    layout: ChartLayout | None = None,
) -> Canvas:
    """Multi-series line chart.

    ``series`` maps a legend name to ``(x_values, y_values)`` arrays.
    ``diagonal`` draws the chance line used in ROC plots.
    """
    if not series:
        raise ValueError("need at least one series")
    layout = layout or ChartLayout()
    xs = np.concatenate([np.asarray(x, dtype=np.float64) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    if xs.size == 0:
        raise ValueError("series must hold data")
    x_range = (float(xs.min()), float(xs.max()) or 1.0)
    if x_range[0] == x_range[1]:
        x_range = (x_range[0] - 0.5, x_range[1] + 0.5)
    if y_range is None:
        pad = 0.05 * max(float(ys.max() - ys.min()), 1e-9)
        y_range = (float(ys.min()) - pad, float(ys.max()) + pad)

    canvas = Canvas(layout.width, layout.height)
    axes = _Axes(
        canvas, layout, x_range, y_range, title=title, x_label=x_label, y_label=y_label
    )
    if diagonal:
        canvas.line(
            axes.x_to_px(max(x_range[0], y_range[0])),
            axes.y_to_px(max(x_range[0], y_range[0])),
            axes.x_to_px(min(x_range[1], y_range[1])),
            axes.y_to_px(min(x_range[1], y_range[1])),
            stroke="#999",
            dash="4 3",
        )
    for index, (name, (x, y)) in enumerate(series.items()):
        points = [
            (axes.x_to_px(float(xv)), axes.y_to_px(float(yv)))
            for xv, yv in zip(np.asarray(x), np.asarray(y))
        ]
        canvas.polyline(points, stroke=color_for(index))
    _legend(canvas, layout, list(series))
    return canvas


def scatter_chart(
    points: np.ndarray,
    labels: np.ndarray,
    *,
    title: str = "",
    label_names: list[str] | None = None,
    layout: ChartLayout | None = None,
    radius: float = 3.0,
) -> Canvas:
    """2-D scatter coloured by integer label (the t-SNE figure style)."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got {points.shape}")
    if labels.size != points.shape[0]:
        raise ValueError("labels must align with points")
    layout = layout or ChartLayout()
    x_range = (float(points[:, 0].min()), float(points[:, 0].max()))
    y_range = (float(points[:, 1].min()), float(points[:, 1].max()))
    if x_range[0] == x_range[1]:
        x_range = (x_range[0] - 1.0, x_range[1] + 1.0)
    if y_range[0] == y_range[1]:
        y_range = (y_range[0] - 1.0, y_range[1] + 1.0)

    canvas = Canvas(layout.width, layout.height)
    axes = _Axes(canvas, layout, x_range, y_range, title=title)
    for xy, label in zip(points, labels):
        canvas.circle(
            axes.x_to_px(float(xy[0])),
            axes.y_to_px(float(xy[1])),
            radius,
            fill=color_for(int(label)),
            opacity=0.75,
        )
    names = label_names or [str(v) for v in sorted(set(labels.tolist()))]
    _legend(canvas, layout, names)
    return canvas


def heatmap(
    matrix: np.ndarray,
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    cell_labels: bool = True,
    layout: ChartLayout | None = None,
) -> Canvas:
    """Matrix heatmap (confusion matrices, DRAIs).

    Rows are drawn top-down; values are min-max normalised into a
    white-to-blue ramp.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError(f"expected a non-empty 2-D matrix, got {matrix.shape}")
    layout = layout or ChartLayout()
    rows, cols = matrix.shape
    low, high = float(matrix.min()), float(matrix.max())
    span = max(high - low, 1e-12)

    canvas = Canvas(layout.width, layout.height)
    cell_w = layout.plot_width / cols
    cell_h = layout.plot_height / rows
    for r in range(rows):
        for c in range(cols):
            fraction = (matrix[r, c] - low) / span
            shade = int(255 - 155 * fraction)
            fill = f"rgb({shade},{shade + int(20 * fraction)},255)"
            x = layout.margin_left + c * cell_w
            y = layout.margin_top + r * cell_h
            canvas.rect(x, y, cell_w, cell_h, fill=fill, stroke="#ccc")
            if cell_labels and rows * cols <= 400:
                canvas.text(
                    x + cell_w / 2,
                    y + cell_h / 2 + 3.5,
                    f"{matrix[r, c]:g}",
                    anchor="middle",
                    size=9,
                )
    if title:
        canvas.text(layout.width / 2, 20, title, anchor="middle", size=13)
    if x_label:
        canvas.text(
            layout.margin_left + layout.plot_width / 2,
            layout.height - 10,
            x_label,
            anchor="middle",
            size=11,
        )
    if y_label:
        canvas.text(
            16,
            layout.margin_top + layout.plot_height / 2,
            y_label,
            anchor="middle",
            size=11,
            rotate=-90.0,
        )
    return canvas
