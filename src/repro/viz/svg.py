"""A minimal SVG document builder (no third-party dependencies).

The paper's figures (ROC curves, accuracy-vs-distance sweeps, t-SNE
scatters, confusion matrices) need real plots, and this offline
environment has no matplotlib.  This module provides just enough SVG:
an element tree with the handful of primitives the chart layer uses,
serialised with proper XML escaping.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr


def _format_number(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class Element:
    """One SVG element with attributes, children, and optional text."""

    def __init__(self, tag: str, text: str | None = None, **attributes) -> None:
        self.tag = tag
        self.text = text
        self.attributes: dict[str, str] = {}
        self.children: list[Element] = []
        for key, value in attributes.items():
            self.set(key, value)

    def set(self, key: str, value) -> "Element":
        """Set one attribute; ``snake_case`` keys become ``kebab-case``."""
        name = key.rstrip("_").replace("_", "-")
        if isinstance(value, float):
            value = _format_number(value)
        self.attributes[name] = str(value)
        return self

    def add(self, child: "Element") -> "Element":
        """Append a child element; returns the child for chaining."""
        self.children.append(child)
        return child

    def to_string(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts = [pad, "<", self.tag]
        for key, value in self.attributes.items():
            parts.append(f" {key}={quoteattr(value)}")
        if not self.children and self.text is None:
            parts.append("/>")
            return "".join(parts)
        parts.append(">")
        if self.text is not None:
            parts.append(escape(self.text))
        if self.children:
            for child in self.children:
                parts.append("\n" + child.to_string(indent + 1))
            parts.append("\n" + pad)
        parts.append(f"</{self.tag}>")
        return "".join(parts)


class Canvas:
    """An SVG drawing surface in user coordinates (y grows downward)."""

    def __init__(self, width: float, height: float, *, background: str = "white") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self.root = Element(
            "svg",
            xmlns="http://www.w3.org/2000/svg",
            width=width,
            height=height,
            viewBox=f"0 0 {_format_number(width)} {_format_number(height)}",
        )
        if background:
            self.root.add(
                Element("rect", x=0, y=0, width=width, height=height, fill=background)
            )

    def line(self, x1: float, y1: float, x2: float, y2: float, *, stroke="black",
             stroke_width: float = 1.0, dash: str | None = None) -> Element:
        element = Element(
            "line", x1=x1, y1=y1, x2=x2, y2=y2, stroke=stroke, stroke_width=stroke_width
        )
        if dash:
            element.set("stroke_dasharray", dash)
        return self.root.add(element)

    def polyline(self, points: list[tuple[float, float]], *, stroke="black",
                 stroke_width: float = 1.5) -> Element:
        path = " ".join(f"{_format_number(x)},{_format_number(y)}" for x, y in points)
        return self.root.add(
            Element(
                "polyline",
                points=path,
                fill="none",
                stroke=stroke,
                stroke_width=stroke_width,
            )
        )

    def circle(self, cx: float, cy: float, r: float, *, fill="black",
               opacity: float = 1.0) -> Element:
        return self.root.add(
            Element("circle", cx=cx, cy=cy, r=r, fill=fill, opacity=opacity)
        )

    def rect(self, x: float, y: float, width: float, height: float, *, fill="black",
             stroke: str | None = None) -> Element:
        element = Element("rect", x=x, y=y, width=width, height=height, fill=fill)
        if stroke:
            element.set("stroke", stroke)
        return self.root.add(element)

    def text(self, x: float, y: float, content: str, *, size: float = 11.0,
             anchor: str = "start", fill: str = "#333", rotate: float | None = None) -> Element:
        element = Element(
            "text",
            text=content,
            x=x,
            y=y,
            font_size=size,
            text_anchor=anchor,
            fill=fill,
            font_family="sans-serif",
        )
        if rotate is not None:
            element.set(
                "transform",
                f"rotate({_format_number(rotate)} {_format_number(x)} {_format_number(y)})",
            )
        return self.root.add(element)

    def to_string(self) -> str:
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + self.root.to_string() + "\n"

    def save(self, path) -> None:
        """Write the document to ``path`` (str or Path)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string())


#: Categorical palette (colour-blind-safe Okabe-Ito).
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)


def color_for(index: int) -> str:
    """A stable categorical colour for any non-negative index."""
    return PALETTE[index % len(PALETTE)]
