"""Dependency-free SVG figure generation.

Regenerates the paper's figure styles (ROC curves, distance sweeps,
t-SNE scatters, confusion matrices, motion trails) as standalone SVG
files; no matplotlib required.
"""

from repro.viz.svg import Canvas, Element, PALETTE, color_for
from repro.viz.charts import ChartLayout, heatmap, line_chart, nice_ticks, scatter_chart

__all__ = [
    "Canvas",
    "Element",
    "PALETTE",
    "color_for",
    "ChartLayout",
    "heatmap",
    "line_chart",
    "nice_ticks",
    "scatter_chart",
]
