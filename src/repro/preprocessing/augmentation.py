"""Training-time data augmentation (SIV-B).

"We introduce a random subtle displacement j to each point p in the
gesture point cloud P.  This process is repeated to augment the data
three times.  Displacements ... are generated using a Gaussian
distribution with mean 0 and standard deviation 0.02."
"""

from __future__ import annotations

import numpy as np

from repro.radar.pointcloud import PointCloud

DEFAULT_SIGMA = 0.02
DEFAULT_COPIES = 3


def jitter_points(
    points: np.ndarray, rng: np.random.Generator, sigma: float = DEFAULT_SIGMA
) -> np.ndarray:
    """One jittered copy of an ``(n, >=3)`` point array (xyz perturbed)."""
    points = np.array(points, dtype=np.float64, copy=True)
    if points.ndim != 2 or points.shape[1] < 3:
        raise ValueError("points must be (n, >=3)")
    points[:, :3] += rng.normal(scale=sigma, size=(points.shape[0], 3))
    return points


def augment_cloud(
    cloud: PointCloud,
    rng: np.random.Generator,
    *,
    num_copies: int = DEFAULT_COPIES,
    sigma: float = DEFAULT_SIGMA,
) -> list[PointCloud]:
    """The original cloud plus ``num_copies`` jittered copies."""
    if num_copies < 0:
        raise ValueError("num_copies must be non-negative")
    augmented = [cloud]
    for _ in range(num_copies):
        augmented.append(
            PointCloud(
                points=jitter_points(cloud.points, rng, sigma=sigma),
                frame_indices=cloud.frame_indices.copy(),
            )
        )
    return augmented
