"""Density-based spatial clustering (DBSCAN), from scratch.

Used by the noise-canceling module: the paper clusters the aggregated
gesture point cloud with DBSCAN (max pair distance ``D_max`` = 1 m,
minimum cluster size ``N_min`` = 4) and keeps the main cluster.
"""

from __future__ import annotations

import numpy as np

NOISE = -1


def _region_query(points: np.ndarray, idx: int, eps_sq: float) -> np.ndarray:
    diff = points - points[idx]
    dist_sq = np.einsum("ij,ij->i", diff, diff)
    return np.flatnonzero(dist_sq <= eps_sq)


def dbscan(points: np.ndarray, eps: float, min_points: int) -> np.ndarray:
    """Cluster ``points`` (n, d); returns labels with -1 for noise.

    Standard DBSCAN: a point with at least ``min_points`` neighbours
    within ``eps`` (including itself) is a core point; clusters are the
    connected components of core points plus their border points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be (n, d)")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_points <= 0:
        raise ValueError("min_points must be positive")
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    eps_sq = eps * eps
    cluster_id = 0
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        neighbors = _region_query(points, start, eps_sq)
        if neighbors.size < min_points:
            continue  # stays noise unless adopted as a border point later
        labels[start] = cluster_id
        queue = list(neighbors)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            if labels[current] == NOISE:
                labels[current] = cluster_id  # border point adoption
            if visited[current]:
                continue
            visited[current] = True
            labels[current] = cluster_id
            current_neighbors = _region_query(points, current, eps_sq)
            if current_neighbors.size >= min_points:
                queue.extend(current_neighbors)
        cluster_id += 1
    return labels
