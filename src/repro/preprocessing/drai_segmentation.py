"""DI-Gesture-style dynamic-window segmentation over DRAI energy.

The paper's segmenter (SIV-B) thresholds per-frame *point counts*; it
explicitly contrasts this with DI-Gesture, which applies "a dynamic
window mechanism to DRAI".  This module implements that alternative so
the two can be compared on identical recordings: per-frame DRAI energy
is tracked against an adaptive noise floor, and a dynamic window opens
when the energy rises above the floor and closes after a trailing run
of quiet frames.

The comparison lives in ``benchmarks/bench_segmentation_ablation.py``;
both segmenters emit :class:`~repro.preprocessing.segmentation.Segment`
spans so the scoring is shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.preprocessing.segmentation import Segment
from repro.radar.config import IWR6843_CONFIG, RadarConfig
from repro.radar.drai import DRAIParams, DRAIStream
from repro.radar.pointcloud import Frame


@dataclass(frozen=True)
class DRAISegmenterParams:
    """Dynamic-window tuning knobs."""

    drai: DRAIParams = DRAIParams()
    #: Motion is declared when energy exceeds ``floor + margin * spread``.
    margin: float = 3.0
    #: EMA factor of the noise-floor estimate (only updated on quiet frames).
    floor_alpha: float = 0.1
    #: Consecutive motion frames needed to open a window.
    min_motion_frames: int = 3
    #: Consecutive quiet frames needed to close a window.
    quiet_frames_to_close: int = 6
    #: Fixed floor used until enough quiet frames have been observed.
    initial_floor: float = 1.0

    def __post_init__(self) -> None:
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if not 0.0 < self.floor_alpha <= 1.0:
            raise ValueError("floor_alpha must be in (0, 1]")
        if self.min_motion_frames <= 0 or self.quiet_frames_to_close <= 0:
            raise ValueError("frame thresholds must be positive")


class DRAIGestureSegmenter:
    """Online dynamic-window segmenter over streaming DRAI energy."""

    def __init__(
        self,
        params: DRAISegmenterParams | None = None,
        *,
        config: RadarConfig = IWR6843_CONFIG,
    ) -> None:
        self.params = params or DRAISegmenterParams()
        self._stream = DRAIStream(self.params.drai, config=config)
        self._floor = self.params.initial_floor
        self._spread = self.params.initial_floor
        self._motion_run = 0
        self._quiet_run = 0
        self._frame_index = 0
        self._active_start: int | None = None
        self._energies: deque[float] = deque(maxlen=256)

    @property
    def in_gesture(self) -> bool:
        return self._active_start is not None

    def current_threshold(self) -> float:
        """The energy level above which a frame counts as motion."""
        return self._floor + self.params.margin * max(self._spread, 1e-9)

    def push(self, frame: Frame) -> Segment | None:
        """Feed one frame; returns a completed segment when one closes."""
        energy = float(self._stream.push(frame).sum())
        self._energies.append(energy)
        threshold = self.current_threshold()
        is_motion = energy > threshold
        index = self._frame_index
        self._frame_index += 1

        if is_motion:
            self._motion_run += 1
            self._quiet_run = 0
        else:
            self._motion_run = 0
            self._quiet_run += 1
            # The noise floor tracks quiet frames only, so gesture energy
            # does not inflate it mid-motion.
            alpha = self.params.floor_alpha
            self._floor = (1.0 - alpha) * self._floor + alpha * energy
            self._spread = (1.0 - alpha) * self._spread + alpha * abs(
                energy - self._floor
            )

        completed: Segment | None = None
        if self._active_start is None:
            if self._motion_run >= self.params.min_motion_frames:
                self._active_start = index - self._motion_run + 1
        elif self._quiet_run >= self.params.quiet_frames_to_close:
            end = max(index - self._quiet_run + 1, self._active_start + 1)
            completed = Segment(start=self._active_start, end=end)
            self._active_start = None
        return completed

    def flush(self) -> Segment | None:
        """Close an open window at end-of-stream."""
        if self._active_start is None:
            return None
        segment = Segment(start=self._active_start, end=self._frame_index)
        self._active_start = None
        return segment

    def segment(self, frames: list[Frame]) -> list[Segment]:
        """Segment a full recording; resets the segmenter state first."""
        self.reset()
        segments = [seg for frame in frames if (seg := self.push(frame)) is not None]
        tail = self.flush()
        if tail is not None:
            segments.append(tail)
        return segments

    def reset(self) -> None:
        self._stream.reset()
        self._floor = self.params.initial_floor
        self._spread = self.params.initial_floor
        self._motion_run = 0
        self._quiet_run = 0
        self._frame_index = 0
        self._active_start = None
        self._energies.clear()


def segmentation_iou(predicted: Segment, truth_start: int, truth_end: int) -> float:
    """Intersection-over-union of a predicted span vs the ground truth."""
    inter = max(
        0, min(predicted.end, truth_end) - max(predicted.start, truth_start)
    )
    union = max(predicted.end, truth_end) - min(predicted.start, truth_start)
    if union <= 0:
        return 0.0
    return inter / union


def best_segment_iou(
    segments: list[Segment], truth_start: int, truth_end: int
) -> float:
    """IoU of the best-matching predicted segment (0.0 if none)."""
    if not segments:
        return 0.0
    return max(segmentation_iou(s, truth_start, truth_end) for s in segments)
