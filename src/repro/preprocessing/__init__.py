"""Data preprocessing stage (SIV-B of the paper).

Modules: gesture segmentation (parameter-adaptive sliding window over
per-frame point counts), noise canceling (from-scratch DBSCAN + main
cluster retention), and training-time data augmentation (Gaussian point
jitter).
"""

from repro.preprocessing.segmentation import GestureSegmenter, SegmenterParams
from repro.preprocessing.drai_segmentation import (
    DRAIGestureSegmenter,
    DRAISegmenterParams,
    best_segment_iou,
    segmentation_iou,
)
from repro.preprocessing.dbscan import dbscan
from repro.preprocessing.noise import NoiseCancelerParams, keep_main_cluster
from repro.preprocessing.augmentation import augment_cloud, jitter_points
from repro.preprocessing.pipeline import PreprocessorParams, preprocess_recording
from repro.preprocessing.multiuser import MultiUserSeparator, PersonTrack, SeparatorParams

__all__ = [
    "MultiUserSeparator",
    "PersonTrack",
    "SeparatorParams",
    "GestureSegmenter",
    "SegmenterParams",
    "DRAIGestureSegmenter",
    "DRAISegmenterParams",
    "best_segment_iou",
    "segmentation_iou",
    "dbscan",
    "NoiseCancelerParams",
    "keep_main_cluster",
    "augment_cloud",
    "jitter_points",
    "PreprocessorParams",
    "preprocess_recording",
]
