"""Parameter-adaptive sliding-window gesture segmentation (SIV-B).

The segmenter tracks the per-frame point count.  Over a trailing window
of ``N`` frames it derives a dynamic point-number threshold ``P_thr``
from the cumulative count distribution; a sliding motion-detection
window of length ``n`` classifies each frame as motion (count >= P_thr)
or static.  When the window holds at least ``F_thr`` motion frames a
gesture starts; it ends when the window is all-static again.

Paper defaults: N = 50, n = 10, F_thr = 8.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.radar.pointcloud import Frame


@dataclass(frozen=True)
class SegmenterParams:
    """Tuning knobs of the sliding-window segmenter."""

    threshold_window: int = 50  # N
    detection_window: int = 10  # n
    min_motion_frames: int = 8  # F_thr
    min_threshold: float = 4.0

    def __post_init__(self) -> None:
        if self.threshold_window <= 0 or self.detection_window <= 0:
            raise ValueError("window lengths must be positive")
        if not 0 < self.min_motion_frames <= self.detection_window:
            raise ValueError("min_motion_frames must fit in the detection window")
        if self.min_threshold <= 0:
            raise ValueError("min_threshold must be positive")


@dataclass(frozen=True)
class Segment:
    """One detected gesture: frame span ``[start, end)``."""

    start: int
    end: int

    @property
    def num_frames(self) -> int:
        return self.end - self.start


class GestureSegmenter:
    """Online gesture segmentation over a stream of radar frames.

    Push frames with :meth:`push`; completed segments are returned as
    they are recognised.  :meth:`segment` runs an entire recording at
    once and flushes any open segment at the end.
    """

    def __init__(self, params: SegmenterParams | None = None) -> None:
        self.params = params or SegmenterParams()
        self._counts: deque[int] = deque(maxlen=self.params.threshold_window)
        self._window: deque[bool] = deque(maxlen=self.params.detection_window)
        self._frame_index = 0
        self._active_start: int | None = None

    @property
    def in_gesture(self) -> bool:
        return self._active_start is not None

    def current_threshold(self) -> float:
        """Dynamic point-number threshold ``P_thr`` from the count history.

        The trailing count distribution is bimodal once a gesture has been
        seen: an idle mode (environment residue) and a motion mode.  A
        1-D two-means split of the trailing window places ``P_thr``
        midway between the modes, so the threshold adapts both to the
        room's idle noise level and to the gesture's point density.
        ``min_threshold`` guards the all-idle case where the split would
        land inside the noise.
        """
        if not self._counts:
            return self.params.min_threshold
        counts = np.fromiter(self._counts, dtype=np.float64)
        low, high = counts.min(), counts.max()
        if high - low < 2.0:
            return max(high + 1.0, self.params.min_threshold)
        center_low, center_high = low, high
        for _ in range(12):
            midpoint = 0.5 * (center_low + center_high)
            below = counts[counts <= midpoint]
            above = counts[counts > midpoint]
            if below.size == 0 or above.size == 0:
                break
            new_low, new_high = below.mean(), above.mean()
            if new_low == center_low and new_high == center_high:
                break
            center_low, center_high = new_low, new_high
        return max(0.5 * (center_low + center_high), self.params.min_threshold)

    def push(self, frame: Frame) -> Segment | None:
        """Feed one frame; returns a completed segment when one closes."""
        threshold = self.current_threshold()
        count = frame.num_points
        self._counts.append(count)
        is_motion = count >= threshold
        self._window.append(is_motion)
        index = self._frame_index
        self._frame_index += 1

        completed: Segment | None = None
        if self._active_start is None:
            if (
                len(self._window) == self.params.detection_window
                and sum(self._window) >= self.params.min_motion_frames
            ):
                # The gesture started when the current window's motion run began.
                window_list = list(self._window)
                first_motion = window_list.index(True)
                self._active_start = index - (len(window_list) - 1) + first_motion
        else:
            if len(self._window) == self.params.detection_window and not any(self._window):
                # All-static window: the gesture ended before this window began.
                end = max(index - self.params.detection_window + 1, self._active_start + 1)
                completed = Segment(start=self._active_start, end=end)
                self._active_start = None
        return completed

    def flush(self) -> Segment | None:
        """Close an open segment at end-of-stream."""
        if self._active_start is None:
            return None
        segment = Segment(start=self._active_start, end=self._frame_index)
        self._active_start = None
        return segment

    def segment(self, frames: list[Frame]) -> list[Segment]:
        """Segment a full recording; resets the segmenter state first."""
        self.reset()
        segments = [seg for frame in frames if (seg := self.push(frame)) is not None]
        tail = self.flush()
        if tail is not None:
            segments.append(tail)
        return segments

    def reset(self) -> None:
        self._counts.clear()
        self._window.clear()
        self._frame_index = 0
        self._active_start = None
