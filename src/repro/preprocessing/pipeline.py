"""End-to-end preprocessing: frames -> segmented, denoised gesture cloud.

Chains the three SIV-B modules: sliding-window segmentation, frame
aggregation, and DBSCAN main-cluster noise canceling.  The output is
the gesture point cloud GesIDNet consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gestures.synthesis import GestureRecording
from repro.preprocessing.noise import NoiseCancelerParams, keep_main_cluster
from repro.preprocessing.segmentation import GestureSegmenter, Segment, SegmenterParams
from repro.radar.pointcloud import Frame, PointCloud


@dataclass(frozen=True)
class PreprocessorParams:
    """Combined parameters of the preprocessing stage."""

    segmenter: SegmenterParams = field(default_factory=SegmenterParams)
    noise: NoiseCancelerParams = field(default_factory=NoiseCancelerParams)
    min_cloud_points: int = 8


def aggregate_segment(frames: list[Frame], segment: Segment) -> PointCloud:
    """Aggregate the frames of one segment into a single cloud."""
    window = frames[segment.start : segment.end]
    return PointCloud.from_frames(window, start_index=segment.start)


def preprocess_recording(
    recording: GestureRecording,
    params: PreprocessorParams | None = None,
    *,
    fallback_to_truth: bool = True,
) -> PointCloud | None:
    """Segment, aggregate, and denoise one recording.

    Returns the gesture point cloud, or None when nothing usable was
    detected.  When segmentation misses the gesture entirely (possible
    at long range where few points survive), ``fallback_to_truth`` uses
    the recording's ground-truth motion span instead — emulating the
    paper's protocol where every collected sample is a labelled gesture.
    Multiple detected segments are resolved to the one with most points.
    """
    params = params or PreprocessorParams()
    segmenter = GestureSegmenter(params.segmenter)
    segments = segmenter.segment(recording.frames)

    cloud: PointCloud | None = None
    if segments:
        clouds = [aggregate_segment(recording.frames, seg) for seg in segments]
        cloud = max(clouds, key=lambda c: c.num_points)
    if (cloud is None or cloud.num_points < params.min_cloud_points) and fallback_to_truth:
        truth = Segment(start=recording.motion_start_frame, end=recording.motion_end_frame)
        cloud = aggregate_segment(recording.frames, truth)
    if cloud is None or cloud.num_points == 0:
        return None
    cloud = keep_main_cluster(cloud, params.noise)
    if cloud.num_points < params.min_cloud_points:
        return None
    return cloud


#: Channels produced by :func:`normalize_cloud`.
NORMALIZED_CHANNELS = 8


def normalize_cloud(cloud: PointCloud, num_points: int, rng: np.random.Generator) -> np.ndarray:
    """Resample a cloud to a fixed point count for batched training.

    Returns ``(num_points, 8)``:

    0-2
        xyz; x is centred on the cloud centroid (the lateral stance
        offset is per-repetition noise), while y keeps the
        user-to-radar distance and z stays radar-relative — absolute
        height is a user biometric (arm/shoulder height);
    3-4
        doppler (m/s) and intensity (SNR dB scaled to ~[0, 1.5]);
    5
        per-point temporal phase — the point's frame index normalised
        over the gesture span.  The radar timestamps every detection;
        the paper keeps this information implicitly by noting that
        per-frame locality survives aggregation (SIV-C);
    6-7
        per-cloud scalars broadcast to every point: gesture duration in
        frames (normalised by 50) and log point count (normalised).
        Variable-size clouds carry these implicitly — the paper's
        Fig. 13 shows duration is a personal trait — but fixed-size
        resampling would otherwise destroy them.

    Clouds larger than ``num_points`` are subsampled without
    replacement; smaller clouds are padded by resampling with
    replacement.
    """
    if cloud.num_points == 0:
        raise ValueError("cannot normalise an empty cloud")
    base = cloud.points.copy()
    base[:, 0] -= base[:, 0].mean()
    base[:, 4] = base[:, 4] / 30.0  # intensity (SNR dB) to ~[0, 1.5]

    frame_span = max(cloud.num_frames - 1, 1)
    first_frame = cloud.frame_indices.min() if cloud.frame_indices.size else 0
    phase = (cloud.frame_indices - first_frame) / frame_span
    duration = np.full(cloud.num_points, cloud.num_frames / 50.0)
    log_count = np.full(cloud.num_points, np.log1p(cloud.num_points) / 7.0)
    points = np.column_stack([base, phase, duration, log_count])

    if cloud.num_points >= num_points:
        idx = rng.choice(cloud.num_points, size=num_points, replace=False)
    else:
        idx = rng.choice(cloud.num_points, size=num_points, replace=True)
    return points[idx]
