"""Noise canceling: cluster the aggregated cloud, keep the main cluster.

SIV-B: "Among all the clusters obtained through DBScan, the cluster
containing most of the points is retained as the main cluster, while
others are discarded."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.preprocessing.dbscan import NOISE, dbscan
from repro.radar.pointcloud import PointCloud


@dataclass(frozen=True)
class NoiseCancelerParams:
    """Paper defaults: D_max = 1 m, N_min = 4."""

    max_pair_distance_m: float = 1.0
    min_cluster_points: int = 4

    def __post_init__(self) -> None:
        if self.max_pair_distance_m <= 0:
            raise ValueError("max_pair_distance_m must be positive")
        if self.min_cluster_points <= 0:
            raise ValueError("min_cluster_points must be positive")


def cluster_cloud(
    cloud: PointCloud, params: NoiseCancelerParams | None = None
) -> np.ndarray:
    """DBSCAN labels over the cloud's xyz coordinates."""
    params = params or NoiseCancelerParams()
    if cloud.num_points == 0:
        return np.zeros(0, dtype=np.int64)
    return dbscan(cloud.xyz, params.max_pair_distance_m, params.min_cluster_points)


def keep_main_cluster(
    cloud: PointCloud, params: NoiseCancelerParams | None = None
) -> PointCloud:
    """Return the cloud restricted to its largest DBSCAN cluster.

    If no cluster forms (everything is noise), the input is returned
    unchanged — dropping all points would break downstream processing,
    and such clouds are rejected later by minimum-size checks.
    """
    labels = cluster_cloud(cloud, params)
    if labels.size == 0:
        return cloud
    valid = labels[labels != NOISE]
    if valid.size == 0:
        return cloud
    counts = np.bincount(valid)
    main = int(np.argmax(counts))
    return cloud.select(labels == main)
