"""Multi-person separation: per-frame clustering + cross-frame tracking.

SVII-1 of the paper discusses multi-person scenes and points to
m3Track-style multi-user detection as the extension path.  This module
implements that extension: instead of keeping only the single main
cluster, it clusters every frame, associates clusters across frames by
centroid proximity (a nearest-neighbour tracker with a gating radius),
and emits one frame stream per tracked person — each of which can then
be segmented and classified independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.preprocessing.dbscan import NOISE, dbscan
from repro.radar.pointcloud import Frame


@dataclass
class PersonTrack:
    """One tracked person: a frame-aligned stream of their points."""

    track_id: int
    frames: list[Frame] = field(default_factory=list)
    centroids: list[np.ndarray | None] = field(default_factory=list)
    last_seen: int = -1

    @property
    def num_points(self) -> int:
        return sum(f.num_points for f in self.frames)

    @property
    def active_frames(self) -> int:
        return sum(1 for f in self.frames if f.num_points > 0)

    def current_centroid(self) -> np.ndarray | None:
        for centroid in reversed(self.centroids):
            if centroid is not None:
                return centroid
        return None


@dataclass(frozen=True)
class SeparatorParams:
    """Clustering and tracking knobs."""

    cluster_eps_m: float = 0.6
    cluster_min_points: int = 3
    gate_radius_m: float = 0.8
    max_missed_frames: int = 8
    min_track_points: int = 20

    def __post_init__(self) -> None:
        if self.cluster_eps_m <= 0 or self.gate_radius_m <= 0:
            raise ValueError("radii must be positive")
        if self.cluster_min_points <= 0:
            raise ValueError("cluster_min_points must be positive")


class MultiUserSeparator:
    """Track multiple people through a frame stream."""

    def __init__(self, params: SeparatorParams | None = None) -> None:
        self.params = params or SeparatorParams()
        self._tracks: list[PersonTrack] = []
        self._frame_index = 0

    @property
    def tracks(self) -> list[PersonTrack]:
        return list(self._tracks)

    def push_frame(self, frame: Frame) -> None:
        """Assign this frame's clusters to tracks (spawning as needed)."""
        params = self.params
        clusters: list[np.ndarray] = []
        if frame.num_points >= params.cluster_min_points:
            labels = dbscan(frame.xyz, params.cluster_eps_m, params.cluster_min_points)
            for label in sorted(set(labels) - {NOISE}):
                clusters.append(np.flatnonzero(labels == label))

        centroids = [frame.xyz[idx].mean(axis=0) for idx in clusters]
        assigned: dict[int, int] = {}  # cluster index -> track index
        used_tracks: set[int] = set()
        # Greedy nearest-centroid association within the gate.
        order = sorted(
            (
                (np.linalg.norm(centroids[c] - track.current_centroid()), c, t)
                for c in range(len(clusters))
                for t, track in enumerate(self._tracks)
                if track.current_centroid() is not None
                and self._frame_index - track.last_seen <= params.max_missed_frames
            ),
            key=lambda item: item[0],
        )
        for distance, cluster_idx, track_idx in order:
            if distance > params.gate_radius_m:
                break
            if cluster_idx in assigned or track_idx in used_tracks:
                continue
            assigned[cluster_idx] = track_idx
            used_tracks.add(track_idx)

        # Spawn tracks for unassigned clusters.
        for cluster_idx in range(len(clusters)):
            if cluster_idx not in assigned:
                track = PersonTrack(track_id=len(self._tracks))
                # Backfill empty frames so streams stay frame-aligned.
                track.frames = [Frame.empty(timestamp_s=0.0)] * self._frame_index
                track.centroids = [None] * self._frame_index
                self._tracks.append(track)
                assigned[cluster_idx] = len(self._tracks) - 1

        # Emit this frame for every track.
        cluster_of_track = {t: c for c, t in assigned.items()}
        for track_idx, track in enumerate(self._tracks):
            if track_idx in cluster_of_track:
                idx = clusters[cluster_of_track[track_idx]]
                track.frames.append(
                    Frame(points=frame.points[idx], timestamp_s=frame.timestamp_s)
                )
                track.centroids.append(centroids[cluster_of_track[track_idx]])
                track.last_seen = self._frame_index
            else:
                track.frames.append(Frame.empty(timestamp_s=frame.timestamp_s))
                track.centroids.append(None)
        self._frame_index += 1

    def separate(self, frames: list[Frame]) -> list[PersonTrack]:
        """Process a full recording; returns substantial tracks only."""
        self.reset()
        for frame in frames:
            self.push_frame(frame)
        return [
            track
            for track in self._tracks
            if track.num_points >= self.params.min_track_points
        ]

    def reset(self) -> None:
        self._tracks = []
        self._frame_index = 0
