"""ROC curves and Equal Error Rate for the user-identification task.

The paper reports EER as the operating point where the false positive rate
(others accepted as the target user) equals the false negative rate (the
target user rejected).  For a multi-class identification model we follow
the standard verification protocol: every (sample, claimed-identity) pair
produces a score; pairs where the claim matches the true identity are
genuine trials, all others are impostor trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DetCurve:
    """A detection-error tradeoff curve sampled at score thresholds."""

    thresholds: np.ndarray
    false_positive_rate: np.ndarray
    false_negative_rate: np.ndarray

    def eer(self) -> float:
        """Interpolated rate where FPR crosses FNR."""
        fpr = self.false_positive_rate
        fnr = self.false_negative_rate
        diff = fpr - fnr
        crossing = np.flatnonzero(np.diff(np.sign(diff)) != 0)
        if crossing.size == 0:
            idx = int(np.argmin(np.abs(diff)))
            return float(0.5 * (fpr[idx] + fnr[idx]))
        i = int(crossing[0])
        # Linear interpolation between threshold i and i+1.
        d0, d1 = diff[i], diff[i + 1]
        if d1 == d0:
            frac = 0.0
        else:
            frac = -d0 / (d1 - d0)
        eer_val = fpr[i] + frac * (fpr[i + 1] - fpr[i])
        return float(eer_val)


def roc_curve(genuine_scores: np.ndarray, impostor_scores: np.ndarray) -> DetCurve:
    """Build a DET/ROC curve from genuine and impostor trial scores.

    Higher scores must indicate stronger evidence for the genuine class.
    """
    genuine = np.asarray(genuine_scores, dtype=np.float64).ravel()
    impostor = np.asarray(impostor_scores, dtype=np.float64).ravel()
    if genuine.size == 0 or impostor.size == 0:
        raise ValueError("need at least one genuine and one impostor trial")
    thresholds = np.unique(np.concatenate([genuine, impostor]))
    # Sweep from accept-everything to reject-everything.
    thresholds = np.concatenate([[-np.inf], thresholds, [np.inf]])
    fpr = np.empty(thresholds.size)
    fnr = np.empty(thresholds.size)
    sorted_gen = np.sort(genuine)
    sorted_imp = np.sort(impostor)
    for idx, thr in enumerate(thresholds):
        # Accept when score >= thr.
        fnr[idx] = np.searchsorted(sorted_gen, thr, side="left") / genuine.size
        fpr[idx] = 1.0 - np.searchsorted(sorted_imp, thr, side="left") / impostor.size
    return DetCurve(thresholds=thresholds, false_positive_rate=fpr, false_negative_rate=fnr)


def equal_error_rate(genuine_scores: np.ndarray, impostor_scores: np.ndarray) -> float:
    """EER for a verification score distribution (lower is better)."""
    return roc_curve(genuine_scores, impostor_scores).eer()


def verification_trials(
    probabilities: np.ndarray, y_true: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand classifier probabilities into genuine/impostor trial scores.

    Every entry ``probabilities[i, u]`` is one verification trial of sample
    ``i`` against claimed identity ``u``; it is genuine iff ``y_true[i] == u``.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    if probabilities.ndim != 2 or probabilities.shape[0] != y_true.size:
        raise ValueError("probabilities must be (n_samples, n_users) matching y_true")
    mask = np.zeros_like(probabilities, dtype=bool)
    mask[np.arange(y_true.size), y_true] = True
    return probabilities[mask], probabilities[~mask]
