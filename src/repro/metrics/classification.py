"""Classification metrics: accuracy, macro-F1, one-vs-rest AUC.

These implement GRA/UIA (accuracy), GRF1/UIF1 (macro-averaged F1, which
"considers both false positives and false negatives for each class" per
SVI-A3 of the paper) and GRAUC/UIAUC (area under the one-vs-rest ROC
curve, macro-averaged over classes).
"""

from __future__ import annotations

import numpy as np


def _validate_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"label arrays must have the same shape, got {y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("label arrays must be non-empty")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of samples whose predicted label matches the true label."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = #samples of class i predicted j."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    if (y_true < 0).any() or (y_pred < 0).any():
        raise ValueError("labels must be non-negative")
    if (y_true >= num_classes).any() or (y_pred >= num_classes).any():
        raise ValueError("labels exceed num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Recall per class; classes absent from ``y_true`` get NaN."""
    matrix = confusion_matrix(y_true, y_pred)
    support = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        recall = np.diag(matrix) / support
    return np.where(support > 0, recall, np.nan)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1 score over the classes present in ``y_true``.

    For each class the F1 score is the harmonic mean of precision and
    recall; classes with no true samples are excluded from the average
    (they have undefined recall).
    """
    matrix = confusion_matrix(y_true, y_pred)
    true_pos = np.diag(matrix).astype(np.float64)
    support = matrix.sum(axis=1).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    present = support > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        recall = np.where(support > 0, true_pos / support, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    if not present.any():
        raise ValueError("no class has support")
    return float(f1[present].mean())


def _binary_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUC via the Mann-Whitney U statistic with tie correction."""
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    if pos.size == 0 or neg.size == 0:
        return float("nan")
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, combined.size + 1)
    # Average ranks across ties so the statistic is exact.
    sorted_vals = combined[order]
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0)
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries + 1, [combined.size]])
    for start, end in zip(starts, ends):
        if end - start > 1:
            ranks[order[start:end]] = 0.5 * (start + 1 + end)
    rank_sum = ranks[: pos.size].sum()
    u_stat = rank_sum - pos.size * (pos.size + 1) / 2.0
    return float(u_stat / (pos.size * neg.size))


def one_vs_rest_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Macro-averaged one-vs-rest ROC AUC.

    Parameters
    ----------
    y_true:
        Integer labels of shape ``(n,)``.
    scores:
        Class scores (probabilities or logits) of shape ``(n, num_classes)``.
    """
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[0] != y_true.shape[0]:
        raise ValueError("scores must be (n_samples, n_classes) matching y_true")
    aucs = []
    for klass in np.unique(y_true):
        binary = (y_true == klass).astype(np.int64)
        value = _binary_auc(binary, scores[:, klass])
        if not np.isnan(value):
            aucs.append(value)
    if not aucs:
        raise ValueError("AUC undefined: need at least two classes with samples")
    return float(np.mean(aucs))
