"""Evaluation metrics used throughout the GesturePrint reproduction.

The paper evaluates with six classification metrics (GRA/GRF1/GRAUC for
gesture recognition and UIA/UIF1/UIAUC for user identification), the Equal
Error Rate (EER) for identification, and three point-cloud distances
(Hausdorff, Chamfer, Jensen-Shannon) for the feasibility study in Fig. 3.
Confidence-calibration tools (ECE, reliability curves, temperature
scaling) support the open-set layer's probability gates.
"""

from repro.metrics.calibration import (
    apply_temperature,
    expected_calibration_error,
    fit_temperature,
    reliability_curve,
)
from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    macro_f1,
    one_vs_rest_auc,
    per_class_accuracy,
)
from repro.metrics.eer import DetCurve, equal_error_rate, roc_curve
from repro.metrics.pointcloud import (
    chamfer_distance,
    hausdorff_distance,
    jensen_shannon_divergence,
    pairwise_set_distance,
)

__all__ = [
    "apply_temperature",
    "expected_calibration_error",
    "fit_temperature",
    "reliability_curve",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "one_vs_rest_auc",
    "per_class_accuracy",
    "DetCurve",
    "equal_error_rate",
    "roc_curve",
    "chamfer_distance",
    "hausdorff_distance",
    "jensen_shannon_divergence",
    "pairwise_set_distance",
]
