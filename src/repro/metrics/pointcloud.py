"""Point-cloud distance metrics used in the paper's feasibility study (SIII).

The paper compares same-user and cross-user repetitions of the same ASL
gesture with three measures:

* Hausdorff distance (HD) — the extent to which each point of one cloud
  lies near some point of the other.
* Chamfer distance (CD) — the average bidirectional closest-point distance.
* Jensen-Shannon divergence (JSD) — how similarly the two clouds occupy
  space, computed over a shared occupancy histogram.

``pairwise_set_distance`` implements Eq. (1): the mean pairwise distance
between two collections of clouds.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np


def _as_cloud(points: np.ndarray) -> np.ndarray:
    cloud = np.asarray(points, dtype=np.float64)
    if cloud.ndim != 2 or cloud.shape[0] == 0:
        raise ValueError("a point cloud must be a non-empty (n, d) array")
    return cloud


def _cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def hausdorff_distance(cloud_a: np.ndarray, cloud_b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two point clouds."""
    a = _as_cloud(cloud_a)
    b = _as_cloud(cloud_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("point clouds must share dimensionality")
    dists = _cross_distances(a, b)
    forward = dists.min(axis=1).max()
    backward = dists.min(axis=0).max()
    return float(max(forward, backward))


def chamfer_distance(cloud_a: np.ndarray, cloud_b: np.ndarray) -> float:
    """Average bidirectional closest-point distance."""
    a = _as_cloud(cloud_a)
    b = _as_cloud(cloud_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("point clouds must share dimensionality")
    dists = _cross_distances(a, b)
    return float(0.5 * (dists.min(axis=1).mean() + dists.min(axis=0).mean()))


def _occupancy_histogram(
    cloud: np.ndarray, bounds: tuple[np.ndarray, np.ndarray], bins: int
) -> np.ndarray:
    low, high = bounds
    span = np.where(high > low, high - low, 1.0)
    normalized = (cloud - low) / span
    indices = np.clip((normalized * bins).astype(np.int64), 0, bins - 1)
    dims = cloud.shape[1]
    flat = np.zeros(bins**dims, dtype=np.float64)
    multipliers = bins ** np.arange(dims)
    np.add.at(flat, indices @ multipliers, 1.0)
    total = flat.sum()
    return flat / total if total > 0 else flat


def jensen_shannon_divergence(
    cloud_a: np.ndarray, cloud_b: np.ndarray, bins: int = 8
) -> float:
    """JSD between spatial occupancy distributions of two clouds.

    Both clouds are discretised on a shared grid covering their joint
    bounding box; the result is in ``[0, ln 2]``.
    """
    a = _as_cloud(cloud_a)
    b = _as_cloud(cloud_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("point clouds must share dimensionality")
    stacked = np.vstack([a, b])
    bounds = (stacked.min(axis=0), stacked.max(axis=0))
    p = _occupancy_histogram(a, bounds, bins)
    q = _occupancy_histogram(b, bounds, bins)
    mixture = 0.5 * (p + q)

    def _kl(dist: np.ndarray) -> float:
        mask = dist > 0
        return float(np.sum(dist[mask] * np.log(dist[mask] / mixture[mask])))

    return 0.5 * _kl(p) + 0.5 * _kl(q)


def pairwise_set_distance(
    clouds_a: Sequence[np.ndarray],
    clouds_b: Sequence[np.ndarray],
    metric: Callable[[np.ndarray, np.ndarray], float],
) -> float:
    """Mean pairwise distance between two collections of clouds (Eq. 1).

    Identical objects are excluded, which makes
    ``pairwise_set_distance(c, c, m)`` the within-set mean.
    """
    if not clouds_a or not clouds_b:
        raise ValueError("both collections must be non-empty")
    total = 0.0
    count = 0
    for i, cloud_a in enumerate(clouds_a):
        for j, cloud_b in enumerate(clouds_b):
            if clouds_a is clouds_b and i == j:
                continue
            total += metric(cloud_a, cloud_b)
            count += 1
    if count == 0:
        raise ValueError("no valid pairs to average over")
    return total / count
