"""Confidence calibration: reliability measurement and temperature scaling.

The serialized mode's open-set layer (SIV-C) gates on softmax
confidence; those gates are only meaningful if confidence tracks
correctness.  This module provides the standard tools: expected
calibration error (ECE) over confidence bins, and temperature scaling —
a single scalar fitted on held-out logits that reshapes confidence
without changing any argmax decision.
"""

from __future__ import annotations

import numpy as np


def _validate(probabilities: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if probabilities.ndim != 2:
        raise ValueError(f"expected (samples, classes) probabilities, got {probabilities.shape}")
    if probabilities.shape[0] != labels.size:
        raise ValueError("probabilities and labels must align")
    if labels.size == 0:
        raise ValueError("need at least one sample")
    if (labels < 0).any() or (labels >= probabilities.shape[1]).any():
        raise ValueError("labels out of range")
    return probabilities, labels


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, *, num_bins: int = 10
) -> float:
    """ECE: mean |confidence − accuracy| over equal-width confidence bins,
    weighted by bin occupancy.  0 = perfectly calibrated."""
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    probabilities, labels = _validate(probabilities, labels)
    confidence = probabilities.max(axis=1)
    correct = probabilities.argmax(axis=1) == labels
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    total = labels.size
    ece = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (confidence > low) & (confidence <= high)
        if not mask.any():
            continue
        gap = abs(correct[mask].mean() - confidence[mask].mean())
        ece += (mask.sum() / total) * gap
    return float(ece)


def reliability_curve(
    probabilities: np.ndarray, labels: np.ndarray, *, num_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (mean confidence, accuracy, count) for reliability plots.

    Empty bins hold NaN confidence/accuracy and zero count.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    probabilities, labels = _validate(probabilities, labels)
    confidence = probabilities.max(axis=1)
    correct = probabilities.argmax(axis=1) == labels
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    mean_conf = np.full(num_bins, np.nan)
    accuracy = np.full(num_bins, np.nan)
    counts = np.zeros(num_bins, dtype=np.int64)
    for i, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
        mask = (confidence > low) & (confidence <= high)
        counts[i] = int(mask.sum())
        if counts[i]:
            mean_conf[i] = confidence[mask].mean()
            accuracy[i] = correct[mask].mean()
    return mean_conf, accuracy, counts


def _nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
    scaled = logits / temperature
    scaled = scaled - scaled.max(axis=1, keepdims=True)
    log_probs = scaled - np.log(np.exp(scaled).sum(axis=1, keepdims=True))
    return float(-log_probs[np.arange(labels.size), labels].mean())


def fit_temperature(
    logits: np.ndarray,
    labels: np.ndarray,
    *,
    grid: tuple[float, float] = (0.05, 20.0),
    iterations: int = 60,
) -> float:
    """Fit the temperature minimising NLL on held-out logits.

    Golden-section search over ``log T`` — the NLL is unimodal in the
    temperature, so no gradient machinery is needed.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if logits.ndim != 2 or logits.shape[0] != labels.size:
        raise ValueError("logits and labels must align")
    if grid[0] <= 0 or grid[1] <= grid[0]:
        raise ValueError("grid must be an increasing positive interval")

    ratio = (np.sqrt(5.0) - 1.0) / 2.0
    low, high = np.log(grid[0]), np.log(grid[1])
    mid_low = high - ratio * (high - low)
    mid_high = low + ratio * (high - low)
    f_low = _nll(logits, labels, float(np.exp(mid_low)))
    f_high = _nll(logits, labels, float(np.exp(mid_high)))
    for _ in range(iterations):
        if f_low <= f_high:
            high, mid_high, f_high = mid_high, mid_low, f_low
            mid_low = high - ratio * (high - low)
            f_low = _nll(logits, labels, float(np.exp(mid_low)))
        else:
            low, mid_low, f_low = mid_low, mid_high, f_high
            mid_high = low + ratio * (high - low)
            f_high = _nll(logits, labels, float(np.exp(mid_high)))
    return float(np.exp((low + high) / 2.0))


def apply_temperature(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Softmax of temperature-scaled logits (argmax is unchanged)."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    logits = np.asarray(logits, dtype=np.float64) / temperature
    logits = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)
