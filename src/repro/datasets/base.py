"""Dataset container and the generic sample-rendering loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gestures.scene import ENVIRONMENTS, Environment
from repro.gestures.synthesis import perform_gesture
from repro.gestures.templates import GestureTemplate
from repro.gestures.user import UserProfile
from repro.preprocessing.pipeline import (
    PreprocessorParams,
    normalize_cloud,
    preprocess_recording,
)
from repro.radar.config import IWR6843_CONFIG, RadarConfig
from repro.radar.device import FastRadar
from repro.radar.pointcloud import PointCloud


@dataclass(frozen=True)
class DatasetSpec:
    """What to render: users x gestures x reps x distances x environments."""

    users: tuple[UserProfile, ...]
    templates: tuple[GestureTemplate, ...]
    environments: tuple[str, ...] = ("office",)
    distances_m: tuple[float, ...] = (1.2,)
    reps: int = 10
    num_points: int = 96
    seed: int = 0
    speed_override: float | None = None

    def __post_init__(self) -> None:
        if not self.users or not self.templates:
            raise ValueError("need at least one user and one gesture")
        if self.reps <= 0:
            raise ValueError("reps must be positive")
        unknown = [e for e in self.environments if e not in ENVIRONMENTS]
        if unknown:
            raise ValueError(f"unknown environments: {unknown}")


@dataclass
class GestureDataset:
    """Rendered samples as fixed-size arrays plus per-sample metadata."""

    inputs: np.ndarray  # (n, num_points, 5)
    gesture_labels: np.ndarray
    user_labels: np.ndarray
    distances_m: np.ndarray
    environment_labels: np.ndarray
    duration_frames: np.ndarray
    gesture_names: list[str]
    environment_names: list[str]
    clouds: list[PointCloud] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.inputs.shape[0]
        for name in ("gesture_labels", "user_labels", "distances_m", "environment_labels", "duration_frames"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} does not align with inputs")

    @property
    def num_samples(self) -> int:
        return self.inputs.shape[0]

    @property
    def num_gestures(self) -> int:
        return len(self.gesture_names)

    @property
    def num_users(self) -> int:
        return int(self.user_labels.max()) + 1 if self.num_samples else 0

    def subset(self, mask: np.ndarray) -> "GestureDataset":
        """A new dataset view with the samples where ``mask`` holds."""
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.size != self.num_samples:
            raise ValueError("mask must align with samples")
        clouds = [c for c, keep in zip(self.clouds, mask) if keep] if self.clouds else []
        return GestureDataset(
            inputs=self.inputs[mask],
            gesture_labels=self.gesture_labels[mask],
            user_labels=self.user_labels[mask],
            distances_m=self.distances_m[mask],
            environment_labels=self.environment_labels[mask],
            duration_frames=self.duration_frames[mask],
            gesture_names=list(self.gesture_names),
            environment_names=list(self.environment_names),
            clouds=clouds,
        )

    def at_distance(self, distance_m: float, tolerance: float = 1e-6) -> "GestureDataset":
        return self.subset(np.abs(self.distances_m - distance_m) < tolerance)

    def in_environment(self, name: str) -> "GestureDataset":
        if name not in self.environment_names:
            raise ValueError(f"environment {name!r} not in dataset")
        idx = self.environment_names.index(name)
        return self.subset(self.environment_labels == idx)

    def merged_with(self, other: "GestureDataset") -> "GestureDataset":
        """Concatenate two datasets with identical label vocabularies."""
        if self.gesture_names != other.gesture_names:
            raise ValueError("gesture vocabularies differ")
        if self.environment_names != other.environment_names:
            raise ValueError("environment vocabularies differ")
        return GestureDataset(
            inputs=np.vstack([self.inputs, other.inputs]),
            gesture_labels=np.concatenate([self.gesture_labels, other.gesture_labels]),
            user_labels=np.concatenate([self.user_labels, other.user_labels]),
            distances_m=np.concatenate([self.distances_m, other.distances_m]),
            environment_labels=np.concatenate(
                [self.environment_labels, other.environment_labels]
            ),
            duration_frames=np.concatenate([self.duration_frames, other.duration_frames]),
            gesture_names=list(self.gesture_names),
            environment_names=list(self.environment_names),
            clouds=(self.clouds + other.clouds) if self.clouds and other.clouds else [],
        )


def build_dataset(
    spec: DatasetSpec,
    *,
    radar_config: RadarConfig = IWR6843_CONFIG,
    preprocessor: PreprocessorParams | None = None,
    keep_clouds: bool = False,
) -> GestureDataset:
    """Render every (user, gesture, rep, distance, environment) combination.

    Users keep their ``user_id`` as label; gestures are labelled by their
    index in ``spec.templates``.  Samples whose preprocessing yields no
    usable cloud are dropped (rare; mirrors discarded collection takes).
    """
    preprocessor = preprocessor or PreprocessorParams()
    rng = np.random.default_rng(spec.seed)

    rows = []
    gesture_names = [t.name for t in spec.templates]
    environment_names = list(spec.environments)
    user_ids = sorted({u.user_id for u in spec.users})
    user_index = {uid: i for i, uid in enumerate(user_ids)}

    for env_idx, env_name in enumerate(spec.environments):
        environment: Environment = ENVIRONMENTS[env_name]
        radar = FastRadar(
            radar_config,
            false_alarms_per_frame=environment.false_alarms_per_frame,
            seed=int(rng.integers(0, 2**31)),
        )
        for user in spec.users:
            for gesture_idx, template in enumerate(spec.templates):
                for distance in spec.distances_m:
                    for _rep in range(spec.reps):
                        recording = perform_gesture(
                            user,
                            template,
                            radar,
                            environment,
                            distance_m=distance,
                            rng=rng,
                            speed_override=spec.speed_override,
                        )
                        cloud = preprocess_recording(recording, preprocessor)
                        if cloud is None:
                            continue
                        sample = normalize_cloud(cloud, spec.num_points, rng)
                        rows.append(
                            (
                                sample,
                                gesture_idx,
                                user_index[user.user_id],
                                distance,
                                env_idx,
                                recording.duration_frames,
                                cloud if keep_clouds else None,
                            )
                        )
    if not rows:
        raise RuntimeError("no usable samples were rendered")
    inputs = np.stack([r[0] for r in rows])
    dataset = GestureDataset(
        inputs=inputs,
        gesture_labels=np.array([r[1] for r in rows], dtype=np.int64),
        user_labels=np.array([r[2] for r in rows], dtype=np.int64),
        distances_m=np.array([r[3] for r in rows], dtype=np.float64),
        environment_labels=np.array([r[4] for r in rows], dtype=np.int64),
        duration_frames=np.array([r[5] for r in rows], dtype=np.int64),
        gesture_names=gesture_names,
        environment_names=environment_names,
        clouds=[r[6] for r in rows] if keep_clouds else [],
    )
    return dataset
