"""Dataset persistence: ``.npz`` archives of rendered datasets.

Rendering a dataset takes minutes (it simulates every gesture through
the radar); saving the rendered arrays lets the train/evaluate steps —
and anything downstream, like the CLI — reload them instantly.  The
archive holds exactly the arrays of :class:`GestureDataset` (clouds,
which are ragged, are not persisted).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import GestureDataset

_ARRAY_FIELDS = (
    "inputs",
    "gesture_labels",
    "user_labels",
    "distances_m",
    "environment_labels",
    "duration_frames",
)


def save_dataset(dataset: GestureDataset, path) -> None:
    """Write a rendered dataset to an ``.npz`` archive.

    Per-sample clouds (if kept during rendering) are dropped: they are
    ragged, derivable by re-rendering, and only needed by the handful of
    analyses that request ``keep_clouds=True``.
    """
    np.savez(
        path,
        **{name: getattr(dataset, name) for name in _ARRAY_FIELDS},
        gesture_names=np.array(dataset.gesture_names),
        environment_names=np.array(dataset.environment_names),
    )


def load_dataset(path) -> GestureDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as data:
        missing = [
            name
            for name in (*_ARRAY_FIELDS, "gesture_names", "environment_names")
            if name not in data
        ]
        if missing:
            raise ValueError(f"not a dataset archive; missing arrays: {missing}")
        return GestureDataset(
            **{name: data[name] for name in _ARRAY_FIELDS},
            gesture_names=[str(n) for n in data["gesture_names"]],
            environment_names=[str(n) for n in data["environment_names"]],
        )
