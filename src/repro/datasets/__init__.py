"""Dataset builders: synthetic clones of the paper's four gesture datasets.

Each builder renders (user, gesture, repetition) combinations through the
gesture synthesizer, a radar device, and the preprocessing stage, and
packs the results into a :class:`GestureDataset` of fixed-size point
arrays ready for GesIDNet.

The four clones mirror Tab. I of the paper:

* :func:`build_selfcollected` — 17 users x 15 ASL gestures, office and
  meeting-room environments (the GesturePrint dataset);
* :func:`build_pantomime` — 21 self-defined gestures, office and open
  environments, multiple articulation speeds;
* :func:`build_mhomeges` — 10 self-defined gestures, home, anchor
  distances 1.2-3.0 m;
* :func:`build_mtranssee` — 5 self-defined gestures, 32 users, home,
  anchor distances 1.2-4.8 m.

All builders take ``num_users`` / ``num_gestures`` / ``reps`` overrides
so that tests and benches can run scaled-down versions; paper-scale
defaults are what Tab. I lists.
"""

from repro.datasets.base import DatasetSpec, GestureDataset, build_dataset
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.clones import (
    build_mhomeges,
    build_mtranssee,
    build_pantomime,
    build_selfcollected,
)

__all__ = [
    "DatasetSpec",
    "GestureDataset",
    "build_dataset",
    "load_dataset",
    "save_dataset",
    "build_mhomeges",
    "build_mtranssee",
    "build_pantomime",
    "build_selfcollected",
]
