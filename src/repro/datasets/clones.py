"""Builders for the four evaluation datasets (Tab. I).

Every builder exposes paper-scale defaults but takes scale overrides so
that tests and the benchmark harness can run reduced versions; the
reduction factors are printed by the benches and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec, GestureDataset, build_dataset
from repro.gestures.templates import ASL_GESTURES, self_defined_family
from repro.gestures.user import generate_users


def build_selfcollected(
    *,
    num_users: int = 17,
    num_gestures: int = 15,
    reps: int = 12,
    environments: tuple[str, ...] = ("office", "meeting_room"),
    distance_m: float = 1.2,
    num_points: int = 96,
    seed: int = 11,
    keep_clouds: bool = False,
    gestures: tuple[str, ...] | None = None,
) -> GestureDataset:
    """The GesturePrint self-collected dataset: ASL signs, two rooms.

    Paper scale: 17 participants x 15 ASL gestures x 12-25 reps x 2
    environments = 9,332 samples at 1.2 m.  ``gestures`` selects specific
    ASL signs by name; by default the first ``num_gestures`` are used.
    """
    if gestures is not None:
        templates = tuple(ASL_GESTURES[name] for name in gestures)
    else:
        templates = tuple(ASL_GESTURES.values())[:num_gestures]
    users = generate_users(num_users, seed=seed)
    spec = DatasetSpec(
        users=tuple(users),
        templates=templates,
        environments=environments,
        distances_m=(distance_m,),
        reps=reps,
        num_points=num_points,
        seed=seed,
    )
    return build_dataset(spec, keep_clouds=keep_clouds)


def build_pantomime(
    *,
    num_users: int = 26,
    num_gestures: int = 21,
    reps: int = 10,
    environments: tuple[str, ...] = ("office", "open"),
    distance_m: float = 1.0,
    num_points: int = 96,
    seed: int = 23,
    speed_override: float | None = None,
    keep_clouds: bool = False,
) -> GestureDataset:
    """Pantomime clone: 21 self-defined gestures, office + open space.

    The paper evaluates Pantomime at 1 m (its closest anchor to 1.2 m);
    participants differ between the Office and Open subsets, which we
    mirror by drawing disjoint user pools per environment.
    ``speed_override`` renders all gestures at a fixed articulation speed
    (the dataset's slow/normal/fast subsets).
    """
    templates = tuple(self_defined_family(num_gestures, seed=5))
    per_env = []
    for env_idx, env in enumerate(environments):
        users = generate_users(
            num_users, seed=seed + 37 * env_idx, id_offset=env_idx * num_users
        )
        spec = DatasetSpec(
            users=tuple(users),
            templates=templates,
            environments=(env,),
            distances_m=(distance_m,),
            reps=reps,
            num_points=num_points,
            seed=seed + env_idx,
            speed_override=speed_override,
        )
        per_env.append(build_dataset(spec, keep_clouds=keep_clouds))
    merged = per_env[0]
    for extra in per_env[1:]:
        # Environments differ per sub-dataset; merge by re-labelling.
        merged = _merge_disjoint_environments(merged, extra)
    return merged


def _merge_disjoint_environments(a: GestureDataset, b: GestureDataset) -> GestureDataset:
    env_names = a.environment_names + [
        n for n in b.environment_names if n not in a.environment_names
    ]
    remap_b = np.array([env_names.index(n) for n in b.environment_names], dtype=np.int64)
    num_users_a = int(a.user_labels.max()) + 1
    return GestureDataset(
        inputs=np.vstack([a.inputs, b.inputs]),
        gesture_labels=np.concatenate([a.gesture_labels, b.gesture_labels]),
        user_labels=np.concatenate([a.user_labels, b.user_labels + num_users_a]),
        distances_m=np.concatenate([a.distances_m, b.distances_m]),
        environment_labels=np.concatenate(
            [a.environment_labels, remap_b[b.environment_labels]]
        ),
        duration_frames=np.concatenate([a.duration_frames, b.duration_frames]),
        gesture_names=list(a.gesture_names),
        environment_names=env_names,
        clouds=(a.clouds + b.clouds) if a.clouds and b.clouds else [],
    )


def build_mhomeges(
    *,
    num_users: int = 14,
    num_gestures: int = 10,
    reps: int = 10,
    distances_m: tuple[float, ...] = (1.2,),
    num_points: int = 96,
    seed: int = 31,
    keep_clouds: bool = False,
) -> GestureDataset:
    """mHomeGes clone: 10 large arm gestures at anchors 1.2-3.0 m (home).

    Paper scale: 22,000 samples from 8-14 participants at anchor points
    1.2-3.0 m spaced 0.15 m apart.
    """
    templates = tuple(self_defined_family(num_gestures, seed=13))
    users = generate_users(num_users, seed=seed)
    spec = DatasetSpec(
        users=tuple(users),
        templates=templates,
        environments=("home",),
        distances_m=distances_m,
        reps=reps,
        num_points=num_points,
        seed=seed,
    )
    return build_dataset(spec, keep_clouds=keep_clouds)


MTRANSSEE_ANCHORS = tuple(np.round(np.arange(1.2, 4.81, 0.3), 2))


def build_mtranssee(
    *,
    num_users: int = 32,
    num_gestures: int = 5,
    reps: int = 10,
    distances_m: tuple[float, ...] = (1.2,),
    num_points: int = 96,
    seed: int = 41,
    keep_clouds: bool = False,
) -> GestureDataset:
    """mTransSee clone: 5 arm gestures, 32 users, anchors 1.2-4.8 m (home).

    Pass ``distances_m=MTRANSSEE_ANCHORS`` for the full 13-anchor sweep
    used by the Fig. 11 distance experiment.
    """
    templates = tuple(self_defined_family(num_gestures, seed=29))
    users = generate_users(num_users, seed=seed)
    spec = DatasetSpec(
        users=tuple(users),
        templates=templates,
        environments=("home",),
        distances_m=distances_m,
        reps=reps,
        num_points=num_points,
        seed=seed,
    )
    return build_dataset(spec, keep_clouds=keep_clouds)
