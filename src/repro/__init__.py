"""GesturePrint reproduction: mmWave gesture recognition + user identification.

Reproduction of *GesturePrint: Enabling User Identification for
mmWave-Based Gesture Recognition Systems* (Xu et al., ICDCS 2024) as a
self-contained Python library.  The radar, the participants, and the
public datasets are simulated (see DESIGN.md for the substitution map);
everything downstream of the antenna — signal processing, segmentation,
noise canceling, GesIDNet, and the evaluation harness — is implemented
in full.

Quickstart
----------
>>> from repro import (build_selfcollected, GesturePrint,
...                    GesturePrintConfig, train_test_split)
>>> ds = build_selfcollected(num_users=5, num_gestures=5, reps=10,
...                          environments=("office",), num_points=64)
>>> train, test = train_test_split(ds.num_samples, 0.2, seed=0)
>>> system = GesturePrint(GesturePrintConfig.small()).fit(
...     ds.inputs[train], ds.gesture_labels[train], ds.user_labels[train])
>>> metrics = system.evaluate(
...     ds.inputs[test], ds.gesture_labels[test], ds.user_labels[test])
>>> sorted(metrics)
['EER', 'GRA', 'GRAUC', 'GRF1', 'UIA', 'UIAUC', 'UIF1']
"""

from repro.core import (
    GesIDNet,
    GesIDNetConfig,
    GesturePrint,
    GesturePrintConfig,
    GesturePrintRuntime,
    IdentificationMode,
    MultiUserRuntime,
    SessionIdentifier,
    TrainConfig,
    cross_validate,
    enroll_user,
    identify_session,
    train_classifier,
)
from repro.core.trainer import kfold_indices, predict_proba, train_test_split
from repro.datasets import (
    GestureDataset,
    build_mhomeges,
    build_mtranssee,
    build_pantomime,
    build_selfcollected,
    load_dataset,
    save_dataset,
)
from repro.gestures import (
    ASL_GESTURES,
    ENVIRONMENTS,
    GestureTemplate,
    UserProfile,
    generate_users,
    perform_gesture,
)
from repro.preprocessing import GestureSegmenter, keep_main_cluster, preprocess_recording
from repro.radar import FastRadar, IWR6843_CONFIG, RadarConfig, SignalLevelRadar
from repro.serving import InferenceEngine, ModelRegistry, StreamHub

__version__ = "1.1.0"

__all__ = [
    "GesIDNet",
    "GesIDNetConfig",
    "GesturePrint",
    "GesturePrintConfig",
    "IdentificationMode",
    "TrainConfig",
    "train_classifier",
    "GesturePrintRuntime",
    "MultiUserRuntime",
    "SessionIdentifier",
    "cross_validate",
    "enroll_user",
    "identify_session",
    "kfold_indices",
    "predict_proba",
    "train_test_split",
    "GestureDataset",
    "build_mhomeges",
    "build_mtranssee",
    "build_pantomime",
    "build_selfcollected",
    "load_dataset",
    "save_dataset",
    "ASL_GESTURES",
    "ENVIRONMENTS",
    "GestureTemplate",
    "UserProfile",
    "generate_users",
    "perform_gesture",
    "GestureSegmenter",
    "keep_main_cluster",
    "preprocess_recording",
    "FastRadar",
    "IWR6843_CONFIG",
    "RadarConfig",
    "SignalLevelRadar",
    "InferenceEngine",
    "ModelRegistry",
    "StreamHub",
    "__version__",
]
