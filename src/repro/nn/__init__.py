"""A from-scratch numpy deep-learning substrate.

The paper implements GesIDNet in PyTorch; this offline reproduction
re-implements the needed machinery — modules with analytic backward
passes, optimisers, losses, and the PointNet++-style point-set operators
(farthest-point sampling, ball query, multi-scale set abstraction) — on
top of numpy only.

Conventions
-----------
* Batches are leading: dense features are ``(batch, features)``; point
  features are ``(batch, channels, num_points)``.
* ``Module.forward`` caches whatever ``backward`` needs; ``backward``
  receives the upstream gradient and returns the input gradient while
  accumulating parameter gradients into ``Parameter.grad``.
* Training/eval behaviour (dropout, batch-norm statistics) is switched
  with ``module.train()`` / ``module.eval()``.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    BatchNorm,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Softmax,
)
from repro.nn.conv import Conv1x1, SharedMLP
from repro.nn.losses import CrossEntropyLoss, softmax_probabilities
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.recurrent import LSTM
from repro.nn.pointset import (
    ball_query,
    farthest_point_sampling,
    gather_points,
    group_points,
)
from repro.nn.setabstraction import MultiScaleSetAbstraction, ScaleSpec
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "BatchNorm",
    "Dropout",
    "LeakyReLU",
    "Linear",
    "ReLU",
    "Softmax",
    "Conv1x1",
    "SharedMLP",
    "CrossEntropyLoss",
    "softmax_probabilities",
    "SGD",
    "Adam",
    "StepLR",
    "LSTM",
    "ball_query",
    "farthest_point_sampling",
    "gather_points",
    "group_points",
    "MultiScaleSetAbstraction",
    "ScaleSpec",
    "load_state",
    "save_state",
]
