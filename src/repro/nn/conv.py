"""Point-wise (1x1) convolutions and the shared MLP used by PointNet-style nets.

A shared MLP applies the same ``Linear`` transform to every point in a
``(batch, channels, num_points)`` tensor — equivalent to a 1x1 Conv1d —
followed by batch-norm and ReLU.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm, ReLU
from repro.nn.module import as_compute, Module, Parameter


class Conv1x1(Module):
    """Pointwise convolution over ``(batch, in_channels, num_points)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / max(in_channels, 1))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(rng.uniform(-bound, bound, size=(out_channels, in_channels)))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1x1 expected (batch, {self.in_channels}, points), got {x.shape}"
            )
        self._input = x
        out = np.matmul(self.weight.data, x)  # (o,c) @ (b,c,n) -> (b,o,n)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += np.tensordot(grad_output, self._input, axes=([0, 2], [0, 2]))
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2))
        return np.matmul(self.weight.data.T, grad_output)


class SharedMLP(Module):
    """Stack of Conv1x1 -> BatchNorm -> ReLU blocks."""

    def __init__(
        self,
        channels: list[int],
        *,
        batch_norm: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(channels) < 2:
            raise ValueError("SharedMLP needs at least in and out channels")
        self.blocks: list[Module] = []
        for in_ch, out_ch in zip(channels[:-1], channels[1:]):
            self.blocks.append(Conv1x1(in_ch, out_ch, rng=rng))
            if batch_norm:
                self.blocks.append(BatchNorm(out_ch))
            self.blocks.append(ReLU())

    def forward(self, x: np.ndarray) -> np.ndarray:
        for block in self.blocks:
            x = block(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for block in reversed(self.blocks):
            grad_output = block.backward(grad_output)
        return grad_output


class MaxPoolPoints(Module):
    """Max-pool over the point axis of ``(batch, channels, num_points)``."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 3:
            raise ValueError(f"MaxPoolPoints expects 3-D input, got shape {x.shape}")
        argmax = x.argmax(axis=2)
        self._cache = (argmax, x.shape)
        batch_idx = np.arange(x.shape[0])[:, None]
        chan_idx = np.arange(x.shape[1])[None, :]
        return x[batch_idx, chan_idx, argmax]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, shape = self._cache
        grad_input = np.zeros(shape)
        batch_idx = np.arange(shape[0])[:, None]
        chan_idx = np.arange(shape[1])[None, :]
        grad_input[batch_idx, chan_idx, argmax] = grad_output
        return grad_input
