"""Point-set operators for PointNet++-style set abstraction.

The GesIDNet encoder samples representative points (farthest-point
sampling), groups neighbours within a radius (ball query), and applies a
shared MLP per group.  These operators work on batched coordinate arrays
``(batch, num_points, 3)``.
"""

from __future__ import annotations

import numpy as np


def farthest_point_sampling(
    points: np.ndarray, num_samples: int, *, start_index: int = 0
) -> np.ndarray:
    """Select ``num_samples`` indices per batch that are mutually far apart.

    Deterministic given ``start_index``.  If a cloud has fewer points than
    requested, indices wrap around (sampling with repetition), matching the
    common PointNet++ practice for sparse mmWave clouds.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3:
        raise ValueError(f"points must be (batch, n, d), got {points.shape}")
    batch, num_points, _ = points.shape
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if num_points == 0:
        raise ValueError("cannot sample from an empty point cloud")
    effective = min(num_samples, num_points)
    # Vectorised across the batch: every iteration advances all clouds at
    # once, so a micro-batch of B streams costs ~1/B of the per-call Python
    # overhead of sampling each cloud separately (the serving engine's main
    # amortisation win).  The per-cloud selections are identical to the
    # sequential algorithm: argmax rows and distance updates are
    # independent per batch element.
    batch_idx = np.arange(batch)
    chosen = np.empty((batch, effective), dtype=np.int64)
    chosen[:, 0] = start_index % num_points
    diff = points - points[batch_idx, chosen[:, 0]][:, None, :]
    dist = np.einsum("bnd,bnd->bn", diff, diff)
    for i in range(1, effective):
        nxt = np.argmax(dist, axis=1)
        chosen[:, i] = nxt
        diff = points - points[batch_idx, nxt][:, None, :]
        new_dist = np.einsum("bnd,bnd->bn", diff, diff)
        np.minimum(dist, new_dist, out=dist)
    if effective < num_samples:
        # Wrap-around padding (sampling with repetition) for sparse clouds.
        chosen = chosen[:, np.resize(np.arange(effective), num_samples)]
    return chosen


def gather_points(points: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Gather ``points[b, indices[b]]`` for every batch element."""
    points = np.asarray(points)
    indices = np.asarray(indices, dtype=np.int64)
    batch_idx = np.arange(points.shape[0])[:, None]
    return points[batch_idx, indices]


def ball_query(
    points: np.ndarray,
    centers: np.ndarray,
    radius: float,
    max_neighbors: int,
) -> np.ndarray:
    """Indices of up to ``max_neighbors`` points within ``radius`` of each center.

    Groups with fewer neighbours repeat the first (closest) neighbour, so
    the output is a dense ``(batch, num_centers, max_neighbors)`` index
    array.  A center with no in-radius point falls back to its nearest
    neighbour, guaranteeing non-empty groups for sparse clouds.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")
    if max_neighbors <= 0:
        raise ValueError("max_neighbors must be positive")
    batch, num_centers, _ = centers.shape
    num_points = points.shape[1]
    k = min(max_neighbors, num_points)
    radius_sq = radius * radius

    diff = centers[:, :, None, :] - points[:, None, :, :]
    dist_sq = np.einsum("bcnd,bcnd->bcn", diff, diff)
    if k < num_points:
        nearest = np.argpartition(dist_sq, kth=k - 1, axis=2)[:, :, :k]
    else:
        nearest = np.broadcast_to(
            np.arange(num_points), (batch, num_centers, num_points)
        ).copy()
    sub = np.take_along_axis(dist_sq, nearest, axis=2)
    order = np.argsort(sub, axis=2, kind="stable")
    nearest = np.take_along_axis(nearest, order, axis=2)
    sub = np.take_along_axis(sub, order, axis=2)
    within = sub <= radius_sq
    within[:, :, 0] = True  # nearest-neighbour fallback for empty balls
    selected = np.where(within, nearest, nearest[:, :, :1])
    if k < max_neighbors:
        # Fewer points than neighbours requested: repeat the closest.
        pad = np.broadcast_to(
            selected[:, :, :1], (batch, num_centers, max_neighbors - k)
        )
        selected = np.concatenate([selected, pad], axis=2)
    return selected


def group_points(points: np.ndarray, group_indices: np.ndarray) -> np.ndarray:
    """Gather grouped coordinates/features.

    ``points`` is ``(batch, num_points, channels)``; ``group_indices`` is
    ``(batch, num_centers, neighbors)``; the result is
    ``(batch, num_centers, neighbors, channels)``.
    """
    points = np.asarray(points)
    group_indices = np.asarray(group_indices, dtype=np.int64)
    batch_idx = np.arange(points.shape[0])[:, None, None]
    return points[batch_idx, group_indices]
