"""Recurrent layers (LSTM) with analytic backpropagation through time.

Pantomime aggregates per-slice PointNet features with an LSTM; this
module provides the LSTM on the same :class:`~repro.nn.module.Module`
contract as the rest of the substrate so it can sit inside the shared
trainer.  The implementation keeps the four gates stacked in one weight
matrix (order: input, forget, cell candidate, output) and caches every
per-step activation needed for the exact reverse pass.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LSTM(Module):
    """Single-layer LSTM over ``(batch, time, input_dim)`` sequences.

    ``forward`` returns the full hidden sequence ``(batch, time,
    hidden_dim)``; take ``[:, -1]`` for a sequence summary.  ``backward``
    accepts the gradient of that sequence (zero-filled except at the
    positions actually used) and returns the gradient w.r.t. the input
    sequence.

    The forget-gate bias starts at 1.0 — the standard trick that keeps
    early training from forgetting everything.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        *,
        rng: np.random.Generator | None = None,
        forget_bias: float = 1.0,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        bound_w = np.sqrt(6.0 / (input_dim + hidden_dim))
        self.w_in = Parameter(
            rng.uniform(-bound_w, bound_w, size=(4 * hidden_dim, input_dim))
        )
        self.w_rec = Parameter(
            rng.uniform(-bound_w, bound_w, size=(4 * hidden_dim, hidden_dim))
        )
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = forget_bias
        self.bias = Parameter(bias)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"LSTM expected (batch, time, {self.input_dim}), got {x.shape}"
            )
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        h = np.zeros((batch, hid))
        c = np.zeros((batch, hid))
        hiddens = np.zeros((batch, steps, hid))
        gates = np.zeros((batch, steps, 4 * hid))
        cells = np.zeros((batch, steps, hid))
        tanh_cells = np.zeros((batch, steps, hid))
        prev_h = np.zeros((batch, steps, hid))
        prev_c = np.zeros((batch, steps, hid))
        for t in range(steps):
            prev_h[:, t] = h
            prev_c[:, t] = c
            pre = x[:, t] @ self.w_in.data.T + h @ self.w_rec.data.T + self.bias.data
            gate_i = _sigmoid(pre[:, :hid])
            gate_f = _sigmoid(pre[:, hid : 2 * hid])
            gate_g = np.tanh(pre[:, 2 * hid : 3 * hid])
            gate_o = _sigmoid(pre[:, 3 * hid :])
            c = gate_f * c + gate_i * gate_g
            tanh_c = np.tanh(c)
            h = gate_o * tanh_c
            gates[:, t] = np.concatenate([gate_i, gate_f, gate_g, gate_o], axis=1)
            cells[:, t] = c
            tanh_cells[:, t] = tanh_c
            hiddens[:, t] = h
        self._cache = {
            "x": x,
            "gates": gates,
            "tanh_cells": tanh_cells,
            "prev_h": prev_h,
            "prev_c": prev_c,
        }
        return hiddens

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        gates = cache["gates"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (batch, steps, hid):
            raise ValueError(
                f"grad_output must be (batch, time, hidden)={batch, steps, hid}, "
                f"got {grad_output.shape}"
            )

        grad_x = np.zeros_like(x)
        grad_h = np.zeros((batch, hid))
        grad_c = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            grad_h = grad_h + grad_output[:, t]
            gate_i = gates[:, t, :hid]
            gate_f = gates[:, t, hid : 2 * hid]
            gate_g = gates[:, t, 2 * hid : 3 * hid]
            gate_o = gates[:, t, 3 * hid :]
            tanh_c = cache["tanh_cells"][:, t]

            grad_o = grad_h * tanh_c
            grad_c = grad_c + grad_h * gate_o * (1.0 - tanh_c**2)
            grad_i = grad_c * gate_g
            grad_g = grad_c * gate_i
            grad_f = grad_c * cache["prev_c"][:, t]

            grad_pre = np.concatenate(
                [
                    grad_i * gate_i * (1.0 - gate_i),
                    grad_f * gate_f * (1.0 - gate_f),
                    grad_g * (1.0 - gate_g**2),
                    grad_o * gate_o * (1.0 - gate_o),
                ],
                axis=1,
            )
            self.w_in.grad += grad_pre.T @ x[:, t]
            self.w_rec.grad += grad_pre.T @ cache["prev_h"][:, t]
            self.bias.grad += grad_pre.sum(axis=0)

            grad_x[:, t] = grad_pre @ self.w_in.data
            grad_h = grad_pre @ self.w_rec.data
            grad_c = grad_c * gate_f
        return grad_x
