"""Optimisers (SGD with momentum, Adam) and a step learning-rate schedule."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser over a fixed list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not parameters:
            raise ValueError("optimiser needs at least one parameter")
        self.parameters = parameters
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in parameters]
        self._moment2 = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        correction1 = 1.0 - beta1**self._step_count
        correction2 = 1.0 - beta2**self._step_count
        for param, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m1 *= beta1
            m1 += (1.0 - beta1) * grad
            m2 *= beta2
            m2 += (1.0 - beta2) * grad * grad
            m1_hat = m1 / correction1
            m2_hat = m2 / correction2
            param.data -= self.lr * m1_hat / (np.sqrt(m2_hat) + self.eps)


class StepLR:
    """Multiply the optimiser's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
