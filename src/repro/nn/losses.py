"""Loss functions (cross-entropy with integrated softmax)."""

from __future__ import annotations

import numpy as np


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class CrossEntropyLoss:
    """Softmax + negative log-likelihood with analytic gradient.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits (already divided by the batch size).
    An optional per-call ``weight`` rescales each sample's contribution —
    used to mix the paper's primary and auxiliary losses.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64).ravel()
        if logits.ndim != 2 or logits.shape[0] != targets.size:
            raise ValueError("logits must be (batch, classes) matching targets")
        if (targets < 0).any() or (targets >= logits.shape[1]).any():
            raise ValueError("targets out of range")
        probs = softmax_probabilities(logits)
        num_classes = logits.shape[1]
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(targets.size), targets] = 1.0
        if self.label_smoothing > 0.0:
            one_hot = (
                one_hot * (1.0 - self.label_smoothing) + self.label_smoothing / num_classes
            )
        self._cache = (probs, one_hot)
        log_probs = np.log(np.clip(probs, 1e-12, None))
        return float(-(one_hot * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, one_hot = self._cache
        return (probs - one_hot) / probs.shape[0]

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
