"""Dense layers and activations with analytic backward passes.

All layers accept either dense ``(batch, features)`` inputs or channel
inputs ``(batch, channels, num_points)`` where that makes sense; shapes
are documented per layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import as_compute, Module, Parameter


def _kaiming_uniform(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine map ``y = x W^T + b`` on ``(batch, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform(rng, in_features, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        weight_t = self._transposed_weight()
        if x.shape[0] == 1:
            out = (np.concatenate([x, x], axis=0) @ weight_t)[:1]
        else:
            out = x @ weight_t
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def _transposed_weight(self) -> np.ndarray:
        """Contiguous copy of ``W^T``, rebuilt every forward.

        Row-stable matmul: BLAS GEMM against a transposed *view* picks
        kernels whose accumulation order depends on the row count, so the
        same sample would get ULP-different logits alone vs inside a
        micro-batch.  A contiguous copy of ``W^T`` keeps every batch size
        on the same row-wise-stable kernel (forward pads one-row inputs to
        two rows to dodge the remaining GEMV outlier) — this is what lets
        the serving layer guarantee byte-identical events for batched and
        per-event inference.  The copy is deliberately *not* cached:
        callers (optimizers, finite-difference gradient checks) mutate
        ``weight.data`` in place between forwards, and the O(in*out) copy
        is small next to the GEMM it feeds.
        """
        return np.ascontiguousarray(self.weight.data.T)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += grad_output.T @ self._input
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


class ReLU(Module):
    """Elementwise max(x, 0); works for any shape."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Module):
    """Elementwise leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.5, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm(Module):
    """Batch normalisation over the batch (and point) axes.

    Accepts ``(batch, features)`` or ``(batch, channels, num_points)``;
    statistics are computed per feature/channel.  Running statistics are
    tracked for eval mode.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, ...]] | None = None

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 3:
            return (0, 2)
        raise ValueError(f"BatchNorm expects 2-D or 3-D input, got shape {x.shape}")

    def _reshape_stats(self, stats: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 3:
            return stats[None, :, None]
        return stats[None, :]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        axes = self._axes(x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm expected {self.num_features} channels, got {x.shape[1]}"
            )
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            # Unbiased variance for the running estimate, as torch does.
            unbiased = var * count / max(count - 1, 1)
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * unbiased
            inv_std = 1.0 / np.sqrt(var + self.eps)
            normalized = (x - self._reshape_stats(mean, x.ndim)) * self._reshape_stats(
                inv_std, x.ndim
            )
            self._cache = (normalized, inv_std, x, axes)
            return normalized * self._reshape_stats(self.gamma.data, x.ndim) + self._reshape_stats(
                self.beta.data, x.ndim
            )
        # Eval mode: fold the running stats into one scale + shift, halving
        # the number of full-array passes on the inference hot path.  The
        # normalised activations are reconstructed lazily in backward (only
        # fine-tuning through a frozen norm needs them).
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        self._cache = (None, inv_std, x, axes)
        return x * self._reshape_stats(scale, x.ndim) + self._reshape_stats(shift, x.ndim)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, x, axes = self._cache
        if normalized is None:  # eval-mode forward skipped materialising it
            normalized = (x - self._reshape_stats(self.running_mean, x.ndim)) * (
                self._reshape_stats(inv_std, x.ndim)
            )
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.gamma.grad += (grad_output * normalized).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        gamma = self._reshape_stats(self.gamma.data, x.ndim)
        inv = self._reshape_stats(inv_std, x.ndim)
        if not self.training:
            return grad_output * gamma * inv
        count = x.size // self.num_features
        grad_norm = grad_output * gamma
        mean_grad = grad_norm.mean(axis=axes, keepdims=True)
        mean_grad_norm = (grad_norm * normalized).mean(axis=axes, keepdims=True)
        return inv * (grad_norm - mean_grad - normalized * mean_grad_norm) * (
            count / max(count, 1)
        )


class Softmax(Module):
    """Softmax over the last axis (used standalone in attention fusion)."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        out = self._output
        inner = (grad_output * out).sum(axis=-1, keepdims=True)
        return out * (grad_output - inner)
