"""Multi-scale set abstraction (the PointNet++ building block of GesIDNet).

One set-abstraction block samples ``num_centers`` representative points by
farthest-point sampling, groups the ``max_neighbors`` nearest in-radius
points for each of several scales, runs a shared MLP per scale, and
max-pools each group — producing per-center local features ``f^s``
(the concatenation of the per-scale features, SIV-C of the paper).

Gradients are propagated back to the *input features* only: point
coordinates are data (not functions of any parameter), so their gradient
is never needed during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.conv import SharedMLP
from repro.nn.module import Module, as_compute
from repro.nn.pointset import ball_query, farthest_point_sampling, gather_points, group_points


@dataclass(frozen=True)
class ScaleSpec:
    """One grouping scale: radius ``d_i``, group size ``m_i``, and MLP widths."""

    radius: float
    max_neighbors: int
    mlp_channels: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive")
        if not self.mlp_channels:
            raise ValueError("mlp_channels must be non-empty")


class MultiScaleSetAbstraction(Module):
    """Sample ``n_i`` centers and extract multi-scale local features.

    Parameters
    ----------
    num_centers:
        Number of representative points ``n_i`` selected by FPS.
    in_channels:
        Number of input feature channels (0 when the input is bare xyz).
    scales:
        One :class:`ScaleSpec` per grouping scale; the per-scale MLP input
        is ``in_channels + 3`` (features concatenated with center-relative
        coordinates).
    """

    def __init__(
        self,
        num_centers: int,
        in_channels: int,
        scales: list[ScaleSpec],
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_centers <= 0:
            raise ValueError("num_centers must be positive")
        if not scales:
            raise ValueError("need at least one scale")
        self.num_centers = num_centers
        self.in_channels = in_channels
        self.scales = list(scales)
        self.mlps = [
            SharedMLP([in_channels + 3, *spec.mlp_channels], rng=rng) for spec in self.scales
        ]
        self.out_channels = sum(spec.mlp_channels[-1] for spec in self.scales)
        self._cache: dict | None = None

    def forward(
        self, coords: np.ndarray, features: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(center_coords, center_features)``.

        ``coords`` is ``(batch, num_points, 3)``; ``features`` is
        ``(batch, in_channels, num_points)`` or None when ``in_channels == 0``.
        Output shapes: ``(batch, num_centers, 3)`` and
        ``(batch, out_channels, num_centers)``.
        """
        coords = as_compute(coords)
        if coords.ndim != 3 or coords.shape[2] != 3:
            raise ValueError(f"coords must be (batch, n, 3), got {coords.shape}")
        if self.in_channels == 0:
            if features is not None:
                raise ValueError("this block takes no input features")
        else:
            if features is None:
                raise ValueError(f"expected features with {self.in_channels} channels")
            features = as_compute(features)
            if features.shape[:2] != (coords.shape[0], self.in_channels) or features.shape[
                2
            ] != coords.shape[1]:
                raise ValueError(
                    "features must be (batch, in_channels, num_points) aligned with coords"
                )

        batch, num_points, _ = coords.shape
        center_idx = farthest_point_sampling(coords, self.num_centers)
        centers = gather_points(coords, center_idx)

        scale_outputs: list[np.ndarray] = []
        cache: dict = {"num_points": num_points, "scale": []}
        for spec, mlp in zip(self.scales, self.mlps):
            group_idx = ball_query(coords, centers, spec.radius, spec.max_neighbors)
            local = group_points(coords, group_idx) - centers[:, :, None, :]
            if features is not None:
                grouped_feat = group_points(np.transpose(features, (0, 2, 1)), group_idx)
                local = np.concatenate([local, grouped_feat], axis=-1)
            # (batch, centers, neighbors, C+3) -> (batch, C+3, centers*neighbors)
            stacked = np.transpose(local, (0, 3, 1, 2)).reshape(
                batch, local.shape[-1], self.num_centers * spec.max_neighbors
            )
            transformed = mlp(stacked)
            per_group = transformed.reshape(
                batch, transformed.shape[1], self.num_centers, spec.max_neighbors
            )
            argmax = per_group.argmax(axis=3)
            pooled = np.take_along_axis(per_group, argmax[..., None], axis=3)[..., 0]
            scale_outputs.append(pooled)
            cache["scale"].append(
                {"group_idx": group_idx, "argmax": argmax, "neighbors": spec.max_neighbors}
            )
        self._cache = cache
        return centers, np.concatenate(scale_outputs, axis=1)

    def backward(self, grad_features: np.ndarray) -> np.ndarray | None:
        """Backprop ``grad_features`` (batch, out_channels, num_centers).

        Returns the gradient w.r.t. the *input features*, or None when the
        block consumes bare coordinates.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_features = np.asarray(grad_features, dtype=np.float64)
        batch = grad_features.shape[0]
        num_points = self._cache["num_points"]
        grad_input = (
            np.zeros((batch, self.in_channels, num_points)) if self.in_channels else None
        )
        offset = 0
        for spec, mlp, scale_cache in zip(self.scales, self.mlps, self._cache["scale"]):
            width = spec.mlp_channels[-1]
            grad_scale = grad_features[:, offset : offset + width, :]
            offset += width
            neighbors = scale_cache["neighbors"]
            argmax = scale_cache["argmax"]
            grad_groups = np.zeros((batch, width, self.num_centers, neighbors))
            np.put_along_axis(grad_groups, argmax[..., None], grad_scale[..., None], axis=3)
            grad_stacked = grad_groups.reshape(batch, width, self.num_centers * neighbors)
            grad_local = mlp.backward(grad_stacked)
            if grad_input is not None:
                # Drop the 3 coordinate channels, scatter-add feature grads.
                grad_feat_groups = grad_local[:, 3:, :].reshape(
                    batch, self.in_channels, self.num_centers, neighbors
                )
                contributions = np.transpose(grad_feat_groups, (0, 2, 3, 1)).reshape(
                    batch, -1, self.in_channels
                )
                flat_idx = scale_cache["group_idx"].reshape(batch, -1)
                per_point = np.transpose(grad_input, (0, 2, 1))
                for b in range(batch):
                    np.add.at(per_point[b], flat_idx[b], contributions[b])
                grad_input = np.transpose(per_point, (0, 2, 1))
        return grad_input


class GlobalFeatureExtractor(Module):
    """PointNet-style global layer: group *all* centers, shared MLP, max-pool.

    Implements the "level feature" extraction of GesIDNet: the level
    feature ``F`` is obtained from the per-center features ``f^s`` by
    grouping all representation points and applying an MLP (SIV-C).
    """

    def __init__(
        self,
        in_channels: int,
        mlp_channels: tuple[int, ...],
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not mlp_channels:
            raise ValueError("mlp_channels must be non-empty")
        self.in_channels = in_channels
        self.mlp = SharedMLP([in_channels + 3, *mlp_channels], rng=rng)
        self.out_channels = mlp_channels[-1]
        self._cache: dict | None = None

    def forward(self, coords: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Return global features ``(batch, out_channels)``."""
        coords = as_compute(coords)
        features = as_compute(features)
        centroid = coords.mean(axis=1, keepdims=True)
        local = np.transpose(coords - centroid, (0, 2, 1))
        stacked = np.concatenate([local, features], axis=1)
        transformed = self.mlp(stacked)
        argmax = transformed.argmax(axis=2)
        pooled = np.take_along_axis(transformed, argmax[..., None], axis=2)[..., 0]
        self._cache = {"argmax": argmax, "num_points": coords.shape[1]}
        return pooled

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Return gradient w.r.t. the input features (coords are data)."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels = grad_output.shape
        num_points = self._cache["num_points"]
        grad_transformed = np.zeros((batch, channels, num_points))
        np.put_along_axis(
            grad_transformed, self._cache["argmax"][..., None], grad_output[..., None], axis=2
        )
        grad_stacked = self.mlp.backward(grad_transformed)
        return grad_stacked[:, 3:, :]
