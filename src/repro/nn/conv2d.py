"""2-D convolution, pooling, and flattening (im2col based).

Used by the CNN baselines (mGesNet / mSeeNet) that consume concentrated
position-Doppler profiles rather than raw point clouds.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import as_compute, Module, Parameter


def _im2col(x: np.ndarray, kernel: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``(batch, ch, h, w)`` into ``(batch, out_h*out_w, ch*k*k)``."""
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h * out_w, -1)
    return cols, out_h, out_w


class Conv2d(Module):
    """Valid-mode 2-D convolution over ``(batch, in_ch, h, w)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        rng = rng or np.random.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        bound = np.sqrt(6.0 / fan_in)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.weight = Parameter(rng.uniform(-bound, bound, size=(out_channels, fan_in)))
        # Random bias (torch-style): keeps pre-activations off the exact
        # ReLU kink even on the mostly-zero CPDP histogram inputs.
        bias_bound = 1.0 / np.sqrt(fan_in)
        self.bias = Parameter(rng.uniform(-bias_bound, bias_bound, size=out_channels))
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"Conv2d expected (batch, {self.in_channels}, h, w), got {x.shape}")
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride)
        out = cols @ self.weight.data.T + self.bias.data
        self._cache = {"cols": cols, "x_shape": x.shape, "out_hw": (out_h, out_w)}
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols = self._cache["cols"]
        batch, channels, height, width = self._cache["x_shape"]
        out_h, out_w = self._cache["out_hw"]
        grad_output = np.asarray(grad_output, dtype=np.float64)
        grad_flat = grad_output.reshape(batch, self.out_channels, -1).transpose(0, 2, 1)
        self.weight.grad += np.einsum("bpo,bpk->ok", grad_flat, cols)
        self.bias.grad += grad_flat.sum(axis=(0, 1))
        grad_cols = grad_flat @ self.weight.data  # (batch, positions, ch*k*k)
        # Fold columns back (col2im with overlap accumulation).
        grad_input = np.zeros((batch, channels, height, width))
        k = self.kernel_size
        grad_windows = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
        for i in range(out_h):
            hi = i * self.stride
            for j in range(out_w):
                wj = j * self.stride
                grad_input[:, :, hi : hi + k, wj : wj + k] += grad_windows[:, i, j]
        return grad_input


class MaxPool2d(Module):
    """Non-overlapping 2-D max pooling."""

    def __init__(self, pool: int = 2) -> None:
        super().__init__()
        if pool <= 0:
            raise ValueError("pool must be positive")
        self.pool = pool
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        batch, channels, height, width = x.shape
        p = self.pool
        out_h, out_w = height // p, width // p
        trimmed = x[:, :, : out_h * p, : out_w * p]
        windows = trimmed.reshape(batch, channels, out_h, p, out_w, p)
        flat = windows.transpose(0, 1, 2, 4, 3, 5).reshape(batch, channels, out_h, out_w, p * p)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self._cache = {"argmax": argmax, "x_shape": x.shape, "out_hw": (out_h, out_w)}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax = self._cache["argmax"]
        batch, channels, height, width = self._cache["x_shape"]
        out_h, out_w = self._cache["out_hw"]
        p = self.pool
        grad_flat = np.zeros((batch, channels, out_h, out_w, p * p))
        np.put_along_axis(grad_flat, argmax[..., None], grad_output[..., None], axis=-1)
        grad_windows = grad_flat.reshape(batch, channels, out_h, out_w, p, p).transpose(
            0, 1, 2, 4, 3, 5
        )
        grad_input = np.zeros((batch, channels, height, width))
        grad_input[:, :, : out_h * p, : out_w * p] = grad_windows.reshape(
            batch, channels, out_h * p, out_w * p
        )
        return grad_input


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output).reshape(self._shape)
