"""Save and load module weights: .npz archives and flat mmap arenas.

Two persistence formats live here:

* ``save_state`` / ``load_state`` — one ``.npz`` archive per module, the
  checkpoint format (named arrays, shape-checked on restore).
* ``pack_flat`` / ``load_flat_mmap`` — one **contiguous little-endian
  float64 arena** plus a JSON manifest.  The arena is built for
  cross-process weight sharing: worker processes attach it with
  ``np.memmap(mode="r")`` and point every parameter (and batch-norm
  buffer) at a read-only *view* into the mapping, so N workers serving
  the same model share one physical copy of the weights through the page
  cache instead of each unpickling their own.  Values are bit-exact
  copies of the source arrays, so a forward pass over mmap'd weights is
  byte-identical to one over the originals.
"""

from __future__ import annotations

import json
import os
from typing import BinaryIO

import numpy as np

from repro.nn.module import Module

#: Flat-arena manifest format marker / version.
FLAT_FORMAT = "repro-flat"
FLAT_VERSION = 1
FLAT_DTYPE = "<f8"  # little-endian float64, the substrate's native dtype

#: Storage dtype per arena precision.  ``float64`` is the bit-exact
#: reference; ``float32`` halves the arena (and the page faults paid to
#: attach it) and feeds the nn substrate's float32 fast path; ``int8``
#: stores each entry as a per-entry affine quantisation (uint8 codes
#: with a float ``scale``/``offset`` in the manifest) and dequantises to
#: float32 copies at attach time.
FLAT_PRECISIONS = {"float64": "<f8", "float32": "<f4", "int8": "|u1"}


def flat_dtype_for(precision: str) -> np.dtype:
    """Numpy storage dtype of a ``precision`` arena (raises on unknown)."""
    try:
        return np.dtype(FLAT_PRECISIONS[precision])
    except KeyError:
        raise ValueError(
            f"unknown arena precision {precision!r}; "
            f"expected one of {sorted(FLAT_PRECISIONS)}"
        ) from None


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Persist all named parameters plus batch-norm running statistics."""
    arrays: dict[str, np.ndarray] = {}
    for name, param in module.named_parameters():
        arrays[f"param:{name}"] = param.data
    for name, buf in _named_buffers(module):
        arrays[f"buffer:{name}"] = buf
    np.savez(path, **arrays)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Restore parameters saved by :func:`save_state` into ``module``.

    The module must have been constructed with identical architecture;
    mismatched names or shapes raise ``ValueError``.
    """
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}
    for name, param in module.named_parameters():
        key = f"param:{name}"
        if key not in stored:
            raise ValueError(f"missing parameter {name!r} in checkpoint")
        data = stored.pop(key)
        if data.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {data.shape}, model {param.shape}"
            )
        param.data = data.astype(np.float64)
        param.grad = np.zeros_like(param.data)
    for name, _ in _named_buffers(module):
        key = f"buffer:{name}"
        if key in stored:
            _set_buffer(module, name, stored.pop(key))
    leftover_params = [k for k in stored if k.startswith("param:")]
    if leftover_params:
        raise ValueError(f"checkpoint has unused parameters: {leftover_params}")


# ----------------------------------------------------------------------
# Flat arena: contiguous float64 weights for read-only mmap attachment
# ----------------------------------------------------------------------
def flat_entries(module: Module) -> list[tuple[str, str, np.ndarray]]:
    """``(kind, name, array)`` for every parameter and buffer.

    The order is deterministic (``named_parameters`` then buffers, both
    sorted walks), so a writer and a reader built from the same
    architecture agree on the arena layout without consulting offsets —
    though the manifest records them anyway.
    """
    entries = [
        ("param", name, param.data) for name, param in module.named_parameters()
    ]
    entries.extend(("buffer", name, buf) for name, buf in _named_buffers(module))
    return entries


def write_flat(
    module: Module,
    stream: BinaryIO,
    *,
    element_offset: int = 0,
    precision: str = "float64",
) -> dict:
    """Append one module's weights to an open arena stream.

    Returns the module's manifest section: ``entries`` (name, kind,
    element offset, shape) and the total ``elements`` written.  The
    caller threads ``element_offset`` so several modules can share one
    arena file (see :func:`repro.core.persistence.export_flat`).

    ``precision`` selects the storage dtype (:data:`FLAT_PRECISIONS`).
    ``int8`` quantises each entry with its own affine map — codes
    ``q = round((x - offset) / scale)`` in [0, 255], with ``scale`` and
    ``offset`` recorded on the entry — so one outlier tensor cannot
    destroy the resolution of every other.
    """
    dtype = flat_dtype_for(precision)
    entries: list[dict] = []
    offset = element_offset
    for kind, name, array in flat_entries(module):
        entry = {"kind": kind, "name": name, "offset": offset, "shape": list(array.shape)}
        if precision == "int8":
            source = np.asarray(array, dtype=np.float64)
            lo = float(source.min()) if source.size else 0.0
            hi = float(source.max()) if source.size else 0.0
            scale = (hi - lo) / 255.0
            if scale <= 0.0:
                scale = 1.0  # constant tensor: every code dequantises to lo
            codes = np.clip(np.rint((source - lo) / scale), 0, 255)
            data = np.ascontiguousarray(codes, dtype=dtype)
            entry["scale"] = scale
            entry["zero"] = lo
        else:
            data = np.ascontiguousarray(array, dtype=dtype)
        stream.write(data.tobytes())
        entries.append(entry)
        offset += int(data.size)
    return {"entries": entries, "elements": offset - element_offset}


def pack_flat(
    module: Module,
    arena_path: str | os.PathLike,
    *,
    manifest_path: str | os.PathLike | None = None,
    precision: str = "float64",
) -> dict:
    """Write ``module``'s weights as one contiguous arena.

    Produces ``arena_path`` (raw little-endian bytes in the storage
    dtype of ``precision``, float64 by default) and a JSON manifest next
    to it (``<arena_path>.json`` unless ``manifest_path`` overrides).
    Returns the manifest dict.  A float64 arena round-trips through
    :func:`load_flat_mmap` bit-for-bit; float32/int8 arenas round-trip
    exactly to their stored (reduced-precision) values.
    """
    with open(arena_path, "wb") as stream:
        section = write_flat(module, stream, precision=precision)
    manifest = {
        "format": FLAT_FORMAT,
        "version": FLAT_VERSION,
        "dtype": flat_dtype_for(precision).str,
        "precision": precision,
        "elements": section["elements"],
        "entries": section["entries"],
    }
    if manifest_path is None:
        manifest_path = f"{os.fspath(arena_path)}.json"
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest


def _open_arena(
    arena: str | os.PathLike | np.ndarray, dtype: np.dtype | str = FLAT_DTYPE
) -> np.ndarray:
    if isinstance(arena, np.ndarray):
        return arena
    return np.memmap(arena, dtype=dtype, mode="r")


def load_flat_mmap(
    module: Module,
    arena: str | os.PathLike | np.ndarray,
    *,
    manifest: dict | None = None,
    manifest_path: str | os.PathLike | None = None,
    precision: str | None = None,
) -> np.ndarray:
    """Attach a flat arena's weights to ``module`` as read-only views.

    ``arena`` is a path (memory-mapped read-only here) or an already
    mapped/loaded 1-D array in the arena's storage dtype (so several
    modules can share one mapping).  Entry offsets are absolute into
    that array.  For float64/float32 arenas every parameter's ``data``
    and every batch-norm buffer becomes a **view** into the mapping —
    no copy, shared pages across processes; for int8 arenas each entry
    is dequantised into a private float32 copy (the mapping still backs
    the codes, so the storage shared across workers stays 1 byte per
    element).  Gradients are reallocated writable so the module stays
    usable for inference bookkeeping.  Architecture mismatches raise
    ``ValueError`` exactly like :func:`load_state`.  Returns the
    attached arena array.

    ``precision`` defaults to the manifest's recorded precision (legacy
    manifests without one are float64); pass it explicitly when
    ``manifest`` is a bare section dict without the top-level keys.
    """
    if manifest is None:
        if manifest_path is None:
            if isinstance(arena, np.ndarray):
                raise ValueError("pass manifest= when attaching a shared arena array")
            manifest_path = f"{os.fspath(arena)}.json"
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format", FLAT_FORMAT) != FLAT_FORMAT:
            raise ValueError(f"not a flat-arena manifest: {manifest.get('format')!r}")
    if precision is None:
        precision = manifest.get("precision", "float64")
    dtype = flat_dtype_for(precision)
    data = _open_arena(arena, dtype)
    if data.dtype != dtype:
        raise ValueError(
            f"arena dtype {data.dtype} does not match precision {precision!r}"
        )
    params = dict(module.named_parameters())
    buffers = {name for name, _ in _named_buffers(module)}
    for entry in manifest["entries"]:
        name, kind = entry["name"], entry["kind"]
        shape = tuple(entry["shape"])
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        start = int(entry["offset"])
        view = data[start : start + size].reshape(shape)
        if precision == "int8":
            # Dequantise codes -> float32 once at attach; the fast path
            # then runs pure float32 forwards over ordinary arrays.
            view = (
                view.astype(np.float32) * np.float32(entry["scale"])
                + np.float32(entry["zero"])
            )
        if kind == "param":
            param = params.pop(name, None)
            if param is None:
                raise ValueError(f"arena has unknown parameter {name!r}")
            if param.data.shape != shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: arena {shape}, "
                    f"model {param.data.shape}"
                )
            param.data = view
            param.grad = np.zeros(shape, dtype=view.dtype)
        elif name in buffers:
            _set_buffer(module, name, view, copy=False)
    if params:
        raise ValueError(f"arena is missing parameters: {sorted(params)}")
    return data


_BUFFER_NAMES = ("running_mean", "running_var")


def _named_buffers(module: Module, prefix: str = "") -> list[tuple[str, np.ndarray]]:
    buffers: list[tuple[str, np.ndarray]] = []
    for name, value in sorted(vars(module).items()):
        path = f"{prefix}{name}"
        if name in _BUFFER_NAMES and isinstance(value, np.ndarray):
            buffers.append((path, value))
        elif isinstance(value, Module):
            buffers.extend(_named_buffers(value, prefix=f"{path}."))
        elif isinstance(value, (list, tuple)):
            for idx, item in enumerate(value):
                if isinstance(item, Module):
                    buffers.extend(_named_buffers(item, prefix=f"{path}.{idx}."))
    return buffers


def _set_buffer(
    module: Module, dotted: str, value: np.ndarray, *, copy: bool = True
) -> None:
    parts = dotted.split(".")
    target = module
    for part in parts[:-1]:
        if part.isdigit():
            target = target[int(part)]
        else:
            target = getattr(target, part)
    setattr(target, parts[-1], value.astype(np.float64) if copy else value)
