"""Save and load module weights as .npz archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Persist all named parameters plus batch-norm running statistics."""
    arrays: dict[str, np.ndarray] = {}
    for name, param in module.named_parameters():
        arrays[f"param:{name}"] = param.data
    for name, buf in _named_buffers(module):
        arrays[f"buffer:{name}"] = buf
    np.savez(path, **arrays)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Restore parameters saved by :func:`save_state` into ``module``.

    The module must have been constructed with identical architecture;
    mismatched names or shapes raise ``ValueError``.
    """
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}
    for name, param in module.named_parameters():
        key = f"param:{name}"
        if key not in stored:
            raise ValueError(f"missing parameter {name!r} in checkpoint")
        data = stored.pop(key)
        if data.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {data.shape}, model {param.shape}"
            )
        param.data = data.astype(np.float64)
        param.grad = np.zeros_like(param.data)
    for name, _ in _named_buffers(module):
        key = f"buffer:{name}"
        if key in stored:
            _set_buffer(module, name, stored.pop(key))
    leftover_params = [k for k in stored if k.startswith("param:")]
    if leftover_params:
        raise ValueError(f"checkpoint has unused parameters: {leftover_params}")


_BUFFER_NAMES = ("running_mean", "running_var")


def _named_buffers(module: Module, prefix: str = "") -> list[tuple[str, np.ndarray]]:
    buffers: list[tuple[str, np.ndarray]] = []
    for name, value in sorted(vars(module).items()):
        path = f"{prefix}{name}"
        if name in _BUFFER_NAMES and isinstance(value, np.ndarray):
            buffers.append((path, value))
        elif isinstance(value, Module):
            buffers.extend(_named_buffers(value, prefix=f"{path}."))
        elif isinstance(value, (list, tuple)):
            for idx, item in enumerate(value):
                if isinstance(item, Module):
                    buffers.extend(_named_buffers(item, prefix=f"{path}.{idx}."))
    return buffers


def _set_buffer(module: Module, dotted: str, value: np.ndarray) -> None:
    parts = dotted.split(".")
    target = module
    for part in parts[:-1]:
        if part.isdigit():
            target = target[int(part)]
        else:
            target = getattr(target, part)
    setattr(target, parts[-1], value.astype(np.float64))
