"""Module and parameter primitives for the numpy network substrate."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def as_compute(array) -> np.ndarray:
    """Coerce a forward-pass input to the network's compute dtype.

    float64 is the reference precision (row-stable kernels, the
    byte-identical serving guarantee); float32 is the opt-in
    low-precision fast path (:mod:`repro.serving.precision`): a float32
    input passes through untouched so every intermediate stays float32
    when the weights are float32 too.  Anything else — float64, ints,
    lists — is pinned to float64 exactly as before, so training and the
    default serving path are bit-for-bit unchanged.
    """
    if isinstance(array, np.ndarray) and array.dtype == np.float32:
        return array
    return np.asarray(array, dtype=np.float64)


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class: tracks parameters, sub-modules, and train/eval mode.

    Subclasses implement ``forward`` (caching what backward needs on
    ``self``) and ``backward`` (returning the gradient w.r.t. the input).
    """

    def __init__(self) -> None:
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, grad_output):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def _children(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its sub-modules."""
        params: list[Parameter] = []
        seen: set[int] = set()

        def _collect(module: Module) -> None:
            for _name, value in sorted(vars(module).items()):
                if isinstance(value, Parameter) and id(value) not in seen:
                    seen.add(id(value))
                    params.append(value)
                elif isinstance(value, Module):
                    _collect(value)
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Module):
                            _collect(item)
                        elif isinstance(item, Parameter) and id(item) not in seen:
                            seen.add(id(item))
                            params.append(item)

        _collect(self)
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """(dotted-path, parameter) pairs, stable across identical builds."""
        named: list[tuple[str, Parameter]] = []
        for name, value in sorted(vars(self).items()):
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                named.append((path, value))
            elif isinstance(value, Module):
                named.extend(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for idx, item in enumerate(value):
                    if isinstance(item, Module):
                        named.extend(item.named_parameters(prefix=f"{path}.{idx}."))
                    elif isinstance(item, Parameter):
                        named.append((f"{path}.{idx}", item))
        return named

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self._children():
            child.eval()
        return self


class Sequential(Module):
    """Run sub-modules in order; backward in reverse order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad_output):
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]
