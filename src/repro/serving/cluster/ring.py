"""Consistent-hash ring mapping tenants to their home shard.

Every tenant hashes to a point on a 64-bit circle; each node claims
``vnodes`` points (virtual nodes) so shares stay balanced even with a
handful of physical nodes.  A tenant is owned by the first node point
clockwise from the tenant's point, which gives the two properties the
cluster tier is built on:

* **Affinity** — the mapping is a pure function of (node set, tenant
  id), so every router instance, restarted or not, sends a tenant to
  the same shard and its per-user models stay resident in that shard's
  registry LRU.
* **Minimal movement** — adding or removing one node only reassigns
  the tenants whose clockwise successor changed, i.e. ~1/N of the key
  space instead of nearly all of it (modulo hashing's rehash-the-world
  failure mode).

Plain single-probe lookup leaves share imbalance of O(1/sqrt(vnodes))
per node (~1.35 max/min at 64 vnodes over 4 nodes), so ``owner`` uses
*multi-probe* lookup: the tenant hashes to ``probes`` independent
points and the probe that lands closest (clockwise) to a node point
wins.  A node with oversized arcs only captures a probe that falls
very near one of its points, which evens shares out below the 1.3
max/min bound the unit tests assert while keeping movement exact:
removing a node only moves tenants whose winning probe pointed at it,
i.e. exactly the tenants it owned.

Hashing uses :mod:`hashlib` blake2b, never the interpreter's salted
``hash()``: placement must be identical across processes and restarts.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

__all__ = ["EmptyRingError", "HashRing"]


class EmptyRingError(LookupError):
    """Raised when ownership is requested from a ring with no nodes."""


def _point(label: str) -> int:
    """Deterministic 64-bit ring position for ``label``."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial node ids.
    vnodes:
        Virtual nodes (ring points) per physical node.
    probes:
        Lookup probes per tenant; with 64 vnodes, 8 probes keeps the
        max/min tenant share within 1.3x across 4 nodes (asserted by
        the unit tests) while lookups stay O(probes log(N * vnodes)).
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = 64, probes: int = 8
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.vnodes = int(vnodes)
        self.probes = int(probes)
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: str) -> bool:
        """Add ``node``; returns False when it was already present."""
        node = str(node)
        if node in self._nodes:
            return False
        self._nodes.add(node)
        self._rebuild()
        return True

    def remove(self, node: str) -> bool:
        """Remove ``node``; returns False when it was not present."""
        node = str(node)
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        window = (1 << 64) // self.vnodes
        pairs = sorted(
            (index * window + _point(f"{node}#{index}") % window, node)
            for node in self._nodes
            for index in range(self.vnodes)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    # ------------------------------------------------------------------
    def owner(self, tenant: str) -> str:
        """The node owning ``tenant``.

        Of the ``probes`` probe points, the one with the smallest
        clockwise distance to a node point wins; its successor node is
        the owner.
        """
        if not self._points:
            raise EmptyRingError("hash ring has no nodes")
        size = 1 << 64
        count = len(self._points)
        best_distance = size
        best_index = 0
        for probe in range(self.probes):
            point = _point(f"tenant:{tenant}#{probe}")
            index = bisect.bisect_right(self._points, point) % count
            distance = (self._points[index] - point) % size
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return self._owners[best_index]

    def assignments(self, tenants: Iterable[str]) -> dict[str, list[str]]:
        """Node id -> sorted tenants it owns (empty nodes included)."""
        table: dict[str, list[str]] = {node: [] for node in self._nodes}
        for tenant in tenants:
            table[self.owner(tenant)].append(str(tenant))
        for bucket in table.values():
            bucket.sort()
        return table

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Sorted ids of the nodes currently on the ring."""
        return sorted(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def snapshot(self) -> dict:
        """Ring shape summary (nodes, vnodes, probe count, points)."""
        return {
            "nodes": self.nodes,
            "vnodes": self.vnodes,
            "probes": self.probes,
            "points": len(self._points),
        }
