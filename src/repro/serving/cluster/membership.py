"""Cluster membership: per-node health state driven by heartbeats.

The table is passive — it holds state and deadlines, the router's
per-node loops feed it ``heartbeat``/``miss`` observations.  This is
the PR-5 worker-supervisor idiom lifted to nodes: a node is ``alive``
while STATS heartbeats land, accumulates misses when they time out or
error, and is declared ``dead`` after ``miss_limit`` consecutive
misses (or immediately via ``mark_dead`` when a forward hits a refused
connection).  A dead node that heartbeats again is revived, which is
the ring-heal signal.

No asyncio in here, so every transition is unit-testable with a fake
clock.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

__all__ = ["ALIVE", "DEAD", "MembershipTable", "NodeRecord"]

ALIVE = "alive"
DEAD = "dead"


@dataclass
class NodeRecord:
    """Health state of one shard as seen by the router."""

    node_id: str
    address: tuple[str, int]
    state: str = ALIVE
    last_heartbeat: float | None = None
    misses: int = 0
    deaths: int = 0
    heals: int = 0
    last_error: str | None = None
    summary: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready view of this record (the snapshot row)."""
        return {
            "node_id": self.node_id,
            "address": f"{self.address[0]}:{self.address[1]}",
            "state": self.state,
            "last_heartbeat": self.last_heartbeat,
            "misses": self.misses,
            "deaths": self.deaths,
            "heals": self.heals,
            "last_error": self.last_error,
        }


class MembershipTable:
    """Node id -> :class:`NodeRecord` with heartbeat-deadline semantics.

    Parameters
    ----------
    heartbeat_s:
        Expected heartbeat interval; a node whose last heartbeat is
        older than ``heartbeat_s * miss_limit`` has missed its deadline
        (see :meth:`deadline_expired`).
    miss_limit:
        Consecutive misses before a node is declared dead.
    """

    def __init__(
        self,
        *,
        heartbeat_s: float = 0.5,
        miss_limit: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be > 0")
        if miss_limit < 1:
            raise ValueError("miss_limit must be >= 1")
        self.heartbeat_s = float(heartbeat_s)
        self.miss_limit = int(miss_limit)
        self.clock = clock
        self._nodes: dict[str, NodeRecord] = {}

    # ------------------------------------------------------------------
    def add(self, node_id: str, address: tuple[str, int]) -> NodeRecord:
        """Register a node, optimistically alive so routing can start
        before the first heartbeat lands."""
        node_id = str(node_id)
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        record = NodeRecord(node_id=node_id, address=(address[0], int(address[1])))
        self._nodes[node_id] = record
        return record

    def get(self, node_id: str) -> NodeRecord:
        """The live record for ``node_id``; KeyError if unregistered."""
        return self._nodes[node_id]

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------
    def heartbeat(
        self,
        node_id: str,
        summary: Mapping | None = None,
        now: float | None = None,
    ) -> bool:
        """Record a successful heartbeat; True when this revived a dead
        node (the caller should re-add it to the ring)."""
        record = self._nodes[node_id]
        record.last_heartbeat = self.clock() if now is None else now
        record.misses = 0
        record.last_error = None
        if summary is not None:
            record.summary = dict(summary)
        if record.state == DEAD:
            record.state = ALIVE
            record.heals += 1
            return True
        record.state = ALIVE
        return False

    def miss(
        self, node_id: str, *, reason: str, now: float | None = None
    ) -> bool:
        """Record a missed heartbeat; True when this crossed the miss
        limit and the node is newly dead."""
        record = self._nodes[node_id]
        record.last_error = reason
        if record.state == DEAD:
            return False
        record.misses += 1
        if record.misses >= self.miss_limit:
            return self.mark_dead(node_id, reason=reason)
        return False

    def mark_dead(self, node_id: str, *, reason: str) -> bool:
        """Declare a node dead outright (e.g. connection refused mid-
        forward); True when it was not already dead."""
        record = self._nodes[node_id]
        record.last_error = reason
        if record.state == DEAD:
            return False
        record.state = DEAD
        record.deaths += 1
        return True

    # ------------------------------------------------------------------
    def is_alive(self, node_id: str) -> bool:
        """Whether ``node_id`` is currently in the ALIVE state."""
        return self._nodes[node_id].state == ALIVE

    def deadline_expired(self, node_id: str, now: float | None = None) -> bool:
        """Whether the node's heartbeat deadline has lapsed (never
        heartbeated counts from registration as not expired)."""
        record = self._nodes[node_id]
        if record.last_heartbeat is None:
            return False
        now = self.clock() if now is None else now
        return (now - record.last_heartbeat) > self.heartbeat_s * self.miss_limit

    def alive(self) -> list[str]:
        """Sorted ids of every ALIVE node."""
        return sorted(n for n, r in self._nodes.items() if r.state == ALIVE)

    def dead(self) -> list[str]:
        """Sorted ids of every DEAD node."""
        return sorted(n for n, r in self._nodes.items() if r.state == DEAD)

    def nodes(self) -> list[str]:
        """Sorted ids of every registered node, whatever its state."""
        return sorted(self._nodes)

    def snapshot(self) -> dict[str, dict]:
        """Per-node state/counter rows (the router's STATS section)."""
        return {n: record.as_dict() for n, record in sorted(self._nodes.items())}
