"""Cluster front-end: route tenants to shards over the gateway protocol.

:class:`ClusterRouter` is an asyncio TCP server speaking the same
length-prefixed protocol as :class:`~repro.serving.gateway.server.
GatewayServer`, so every existing client works against a cluster
unchanged.  Each client SUBMIT becomes a *ticket*: the frame is
forwarded — body bytes untouched, only the request id rewritten — to
the shard owning the client's tenant on the consistent-hash ring
(:class:`~repro.serving.cluster.ring.HashRing`), over a pooled
per-(node, tenant) :class:`~repro.serving.gateway.client.
AsyncGatewayClient`; the shard's RESULT frame fans back to the client
under its original id, stamped with the serving ``node_id``.  Because
neither direction decodes the numeric payload, cross-node results are
byte-identical to single-node serving.

Health and healing reuse the PR-5 supervisor idiom one level up:

* a per-node loop heartbeats the shard with a STATS frame on a control
  connection; ``miss_limit`` consecutive timeouts/errors declare it
  dead (:class:`~repro.serving.cluster.membership.MembershipTable`),
  remove it from the ring, and close its pooled connections — which
  fails the airborne tickets' futures and triggers redispatch;
* a dead shard's airborne tickets redispatch **exactly once** to the
  ring successor, stamped ``retried`` and excluded from the per-shard
  latency EWMA (connect failures never consume the redispatch budget:
  an undelivered SUBMIT cannot duplicate).  Late duplicate deliveries
  die at the router's closed upstream socket and at the shard's own
  disconnect reclamation; any that still arrive on a live pooled
  connection find no pending future and are counted as suppressed;
* dead shards are probed every ``heal_interval_s``; a shard that
  answers again is revived into the ring, moving only its own tenants
  back (minimal movement), which restores their cache affinity.
"""

from __future__ import annotations

import asyncio
import itertools
import ssl
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.serving.cluster.membership import DEAD, MembershipTable
from repro.serving.cluster.ring import EmptyRingError, HashRing
from repro.serving.gateway import protocol
from repro.serving.gateway.client import AsyncGatewayClient, GatewayError
from repro.serving.gateway.protocol import Frame, FrameType, ProtocolError, VersionMismatch
from repro.serving.gateway.security import TenantAuthenticator
# The router reuses the gateway's per-client connection plumbing
# (bounded outbox + writer task) rather than growing a second copy.
from repro.serving.gateway.server import _Connection
from repro.serving.observability.metrics import MetricsRegistry, get_metrics
from repro.serving.observability.tracing import TraceRecord, Tracer

__all__ = ["ClusterRouter", "RouterStats", "RouterTicket"]


@dataclass
class RouterStats:
    """Router-level operational counters."""

    connections_total: int = 0
    submits: int = 0
    forwarded: int = 0
    delivered: int = 0
    errors: int = 0
    redispatched: int = 0
    node_deaths: int = 0
    node_heals: int = 0
    duplicates_suppressed: int = 0
    protocol_errors: int = 0
    handshakes_rejected: int = 0
    auth_failed: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of the counters (the STATS reply body)."""
        return dict(self.__dict__)


class _RouterInstruments:
    """The ``repro_router_*`` metric families (see ``_GatewayInstruments``)."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.connections = metrics.counter(
            "repro_router_connections_total", "Client connections accepted."
        ).labels()
        self.forwarded = metrics.counter(
            "repro_router_forwarded_total",
            "SUBMIT frames forwarded, by owning shard.",
            labelnames=("node",),
        )
        self.delivered = metrics.counter(
            "repro_router_delivered_total",
            "RESULT frames fanned back to clients, by serving shard.",
            labelnames=("node",),
        )
        self.errors = metrics.counter(
            "repro_router_errors_total",
            "ERROR frames relayed or originated, by code.",
            labelnames=("code",),
        )
        self.redispatched = metrics.counter(
            "repro_router_redispatched_total",
            "Tickets redispatched to the ring successor after a shard died.",
        ).labels()
        self.node_deaths = metrics.counter(
            "repro_router_node_deaths_total",
            "Shards declared dead (missed heartbeats or refused connects).",
            labelnames=("node",),
        )
        self.node_heals = metrics.counter(
            "repro_router_node_heals_total",
            "Dead shards revived into the ring.",
            labelnames=("node",),
        )
        self.duplicates = metrics.counter(
            "repro_router_duplicates_suppressed_total",
            "Late RESULT/ERROR frames with no pending ticket, dropped.",
        ).labels()
        self.g_nodes_alive = metrics.gauge(
            "repro_router_nodes_alive", "Shards currently in the ring."
        ).labels()
        self.g_tickets = metrics.gauge(
            "repro_router_tickets_in_flight", "Tickets accepted but unresolved."
        ).labels()
        self.g_connections = metrics.gauge(
            "repro_router_connections", "Currently open client connections."
        ).labels()


@dataclass
class _RouterTenant:
    """What the router knows about a connection's tenant (duck-typed
    into ``_Connection.tenant``; only router code reads it)."""

    tenant_id: str
    slo_class: str = "?"


@dataclass
class RouterTicket:
    """One client SUBMIT in flight through the cluster."""

    ticket_id: int
    connection: _Connection
    tenant: str
    client_request_id: int
    frame: Frame  # the SUBMIT as received (body reused on redispatch)
    received: float
    node: str | None = None
    retried: bool = False
    done: bool = False
    trace: TraceRecord | None = field(default=None, repr=False)


class ClusterRouter:
    """Tenant-affine routing tier over N gateway shards.

    Parameters
    ----------
    shards:
        ``node_id -> "host:port"`` (or ``(host, port)``) for every
        shard.  All start alive; health is then heartbeat-driven.
    vnodes, probes:
        :class:`HashRing` balance knobs.
    heartbeat_s:
        Per-node STATS heartbeat interval; each attempt also times out
        after this long, so a silent (SIGSTOPped) shard is declared
        dead after roughly ``2 * heartbeat_s * miss_limit``.
    miss_limit:
        Consecutive heartbeat misses before a shard is declared dead.
    heal_interval_s:
        Probe interval for dead shards (default ``4 * heartbeat_s``).
    affinity:
        True routes by ring ownership (the point of the cluster);
        False round-robins every submit across alive shards — the
        control arm ``bench_cluster.py`` uses to show what random
        routing does to shard cache hit rates.
    probe_tenant:
        Tenant id used for heartbeat/control connections; shard tenant
        directories must resolve it (any default-class directory does).
    connect_timeout_s:
        Per-attempt connect + handshake deadline for upstreams.
    ssl_context:
        Listener-side TLS (:func:`~repro.serving.gateway.security
        .server_ssl_context`): clients connect to the router over TLS;
        the wire protocol is unchanged on top.
    upstream_ssl:
        Client-side TLS (:func:`~repro.serving.gateway.security
        .client_ssl_context`) for every router->shard hop — data
        connections, heartbeats, probes, and reload broadcasts alike.
        Build it with ``certfile``/``keyfile`` when the shards demand a
        client certificate (mutual TLS), so shards accept only their
        router.
    shard_token:
        Bearer token the router presents on every upstream HELLO —
        provision it as a *service token* in the shards' tenant config,
        so the router authenticates for any tenant it forwards without
        holding per-tenant secrets.
    auth:
        A :class:`~repro.serving.gateway.security.TenantAuthenticator`
        verifying *client* tokens at the router's own edge; failures
        reject with ``auth_failed`` before any shard is contacted.
    """

    def __init__(
        self,
        shards: Mapping[str, str | tuple[str, int]],
        *,
        vnodes: int = 64,
        probes: int = 8,
        heartbeat_s: float = 0.5,
        miss_limit: int = 3,
        heal_interval_s: float | None = None,
        affinity: bool = True,
        probe_tenant: str = "cluster-probe",
        connect_timeout_s: float = 2.0,
        max_outbox_frames: int = 1024,
        handshake_timeout_s: float = 10.0,
        name: str = "repro-router",
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        ssl_context: ssl.SSLContext | None = None,
        upstream_ssl: ssl.SSLContext | None = None,
        shard_token: str | None = None,
        auth: TenantAuthenticator | None = None,
    ) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        self._addresses: dict[str, tuple[str, int]] = {}
        for node_id, address in shards.items():
            self._addresses[str(node_id)] = self._parse_address(address)
        self.ring = HashRing(self._addresses, vnodes=vnodes, probes=probes)
        self.membership = MembershipTable(
            heartbeat_s=heartbeat_s, miss_limit=miss_limit
        )
        for node_id, address in self._addresses.items():
            self.membership.add(node_id, address)
        self.heartbeat_s = float(heartbeat_s)
        self.heal_interval_s = (
            4.0 * heartbeat_s if heal_interval_s is None else float(heal_interval_s)
        )
        self.affinity = bool(affinity)
        self.probe_tenant = probe_tenant
        self.connect_timeout_s = float(connect_timeout_s)
        self.max_outbox_frames = max_outbox_frames
        self.handshake_timeout_s = handshake_timeout_s
        self.name = name
        self._ssl_context = ssl_context
        self.upstream_ssl = upstream_ssl
        self.shard_token = shard_token
        self.auth = auth
        self.stats = RouterStats()
        self.tracer = tracer
        self.clock = time.monotonic
        self.address: tuple[str, int] | None = None
        self._metrics = metrics if metrics is not None else get_metrics()
        self._m = _RouterInstruments(self._metrics)
        self._ticket_ids = itertools.count(1)
        self._rr = itertools.count()
        self._tickets: dict[int, RouterTicket] = {}
        self._ticket_tasks: set[asyncio.Task] = set()
        self._bg_tasks: set[asyncio.Task] = set()
        self._node_tasks: list[asyncio.Task] = []
        self._upstreams: dict[tuple[str, str], asyncio.Task] = {}
        self._controls: dict[str, AsyncGatewayClient] = {}
        self._connections: set[_Connection] = set()
        self._forwarded_by_node: dict[str, int] = {}
        self._delivered_by_node: dict[str, int] = {}
        #: Per-shard forward->deliver latency EWMA (seconds); redispatched
        #: tickets are excluded, mirroring the worker pool's EWMA hygiene.
        self._latency_ewma: dict[str, float] = {}
        self._server: asyncio.base_events.Server | None = None
        self._running = False
        self._metrics.register_collector(self._collect_metrics)

    @staticmethod
    def _parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
        if isinstance(address, str):
            host, _, port = address.rpartition(":")
            if not host:
                raise ValueError(f"shard address {address!r} is not HOST:PORT")
            return host, int(port)
        host, port = address
        return str(host), int(port)

    def _collect_metrics(self) -> None:
        self._m.g_nodes_alive.set(len(self.ring))
        self._m.g_tickets.set(len(self._tickets))
        self._m.g_connections.set(len(self._connections))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, start heartbeat loops; returns the bound ``(host, port)``."""
        if self._running:
            raise RuntimeError("router already started")
        self._running = True
        self._server = await asyncio.start_server(
            self._on_connection, host, port, ssl=self._ssl_context
        )
        for node_id in self._addresses:
            task = asyncio.create_task(self._node_loop(node_id))
            self._node_tasks.append(task)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (start() must have been awaited)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, fail open tickets, close every upstream."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = self._node_tasks + list(self._ticket_tasks) + list(self._bg_tasks)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._node_tasks.clear()
        for ticket in list(self._tickets.values()):
            if not ticket.done:
                self._fail(ticket, "router_shutdown", "router shutting down")
        self._tickets.clear()
        for key in list(self._upstreams):
            await self._close_upstream(key)
        for node_id in list(self._controls):
            await self._close_control(node_id)
        for connection in list(self._connections):
            connection.closed = True
            try:
                connection.writer.close()
            # Shutdown teardown: a transport already torn down by the
            # peer raises on close; nothing to do.  Deliberate swallow.
            # repro-check: ignore[RC006]
            except Exception:
                pass
        self._connections.clear()
        self._metrics.unregister_collector(self._collect_metrics)

    @property
    def num_connections(self) -> int:
        """Currently open client connections."""
        return len(self._connections)

    def _schedule(self, coroutine) -> asyncio.Task:
        task = asyncio.create_task(coroutine)
        self._bg_tasks.add(task)
        task.add_done_callback(self._bg_tasks.discard)
        return task

    # ------------------------------------------------------------------
    # Shard selection + upstream pool
    # ------------------------------------------------------------------
    def _pick_node(self, tenant: str) -> str:
        if self.affinity:
            return self.ring.owner(tenant)
        nodes = self.ring.nodes
        if not nodes:
            raise EmptyRingError("hash ring has no nodes")
        return nodes[next(self._rr) % len(nodes)]

    def _spawn_upstream(self, key: tuple[str, str]) -> asyncio.Task:
        node_id, tenant = key
        host, port = self._addresses[node_id]
        task = asyncio.create_task(
            AsyncGatewayClient.connect(
                host,
                port,
                tenant=tenant,
                client=f"{self.name}->{node_id}",
                connect_timeout_s=self.connect_timeout_s,
                token=self.shard_token,
                ssl=self.upstream_ssl,
            )
        )
        self._upstreams[key] = task
        return task

    @staticmethod
    def _settled_client(task: asyncio.Task) -> AsyncGatewayClient | None:
        """The client a *finished* connect task produced, if any.
        (Sync on purpose: reading a done task's result never blocks.)"""
        if not task.done() or task.cancelled() or task.exception() is not None:
            return None
        return task.result()

    def _stale(self, task: asyncio.Task) -> bool:
        """Whether a pooled connect task can no longer yield a usable
        client (failed, cancelled, or its connection since closed)."""
        if not task.done():
            return False
        client = self._settled_client(task)
        return client is None or client.closed

    async def _upstream(self, node_id: str, tenant: str) -> AsyncGatewayClient:
        """The pooled client for ``(node_id, tenant)``, (re)connecting
        as needed.  Raises ConnectionError/OSError on transport failure
        and GatewayError when the shard rejects the tenant."""
        key = (node_id, tenant)
        task = self._upstreams.get(key)
        if task is None or self._stale(task):
            task = self._spawn_upstream(key)
        try:
            client = await asyncio.shield(task)
        except asyncio.CancelledError:
            if task.cancelled():
                # The pool was torn down (node declared dead) while we
                # waited; surface as a transport failure, not a cancel.
                raise ConnectionError(f"connect to {node_id} aborted") from None
            raise
        except (ConnectionError, OSError):
            if self._upstreams.get(key) is task:
                self._upstreams.pop(key, None)
            raise
        if client.on_orphan is None:
            client.on_orphan = self._count_orphan
        return client

    async def _upstream_for_tenant(self, tenant: str) -> tuple[str, AsyncGatewayClient]:
        """Resolve the shard for ``tenant`` and a live connection to it.

        Connect failures mark the target dead and retry on the ring
        successor — they never consume a ticket's redispatch budget,
        because an unconnectable shard cannot have received the SUBMIT
        (no duplication risk).  Raises EmptyRingError when every shard
        is dead, and GatewayError on a policy rejection.
        """
        while True:
            node_id = self._pick_node(tenant)
            try:
                client = await self._upstream(node_id, tenant)
            except (ConnectionError, OSError) as error:
                self._declare_dead(node_id, f"connect failed: {error}")
                continue
            if client.closed:
                self._upstreams.pop((node_id, tenant), None)
                continue
            return node_id, client

    def _count_orphan(self, frame: Frame) -> None:
        self.stats.duplicates_suppressed += 1
        self._m.duplicates.inc()

    async def _close_upstream(self, key: tuple[str, str]) -> None:
        task = self._upstreams.pop(key, None)
        if task is None:
            return
        if not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        client = self._settled_client(task)
        if client is not None:
            # Closing fails the client's pending futures with
            # ConnectionError, which is what triggers ticket redispatch.
            await client.aclose()

    async def _close_control(self, node_id: str) -> None:
        control = self._controls.pop(node_id, None)
        if control is not None:
            await control.aclose()

    # ------------------------------------------------------------------
    # Membership transitions
    # ------------------------------------------------------------------
    def _declare_dead(self, node_id: str, reason: str) -> None:
        """Idempotently take a shard out of service: membership, ring,
        and its connection pool (whose closure redispatches airborne
        tickets)."""
        if not self.membership.mark_dead(node_id, reason=reason):
            return
        self.stats.node_deaths += 1
        self._m.node_deaths.labels(node_id).inc()
        self.ring.remove(node_id)
        self._schedule(self._teardown_node(node_id))

    async def _teardown_node(self, node_id: str) -> None:
        await self._close_control(node_id)
        for key in [k for k in self._upstreams if k[0] == node_id]:
            await self._close_upstream(key)

    def _revive(self, node_id: str, summary: Mapping | None) -> None:
        if self.membership.heartbeat(node_id, summary=summary):
            self.stats.node_heals += 1
            self._m.node_heals.labels(node_id).inc()
            self.ring.add(node_id)

    # ------------------------------------------------------------------
    # Per-node heartbeat / heal loop
    # ------------------------------------------------------------------
    async def _node_loop(self, node_id: str) -> None:
        try:
            while self._running:
                if self.membership.get(node_id).state == DEAD:
                    await asyncio.sleep(self.heal_interval_s)
                    if self._running:
                        await self._probe(node_id)
                else:
                    await asyncio.sleep(self.heartbeat_s)
                    if self._running:
                        await self._heartbeat(node_id)
        except asyncio.CancelledError:
            pass

    def _condense(self, snapshot: Mapping) -> dict:
        """The slice of a shard STATS snapshot worth keeping in the
        membership table (and re-serving from the router's snapshot)."""
        engine = snapshot.get("engine") or {}
        return {
            "node_id": snapshot.get("node_id"),
            "model_version": snapshot.get("model_version"),
            "connections": snapshot.get("connections"),
            "queued": snapshot.get("queued"),
            "requests": engine.get("requests"),
            "tenant_registry": snapshot.get("tenant_registry"),
        }

    async def _heartbeat(self, node_id: str) -> None:
        """One STATS round trip on the node's control connection; a
        timeout, transport error, or node-id mismatch counts a miss."""
        try:
            control = self._controls.get(node_id)
            if control is None or control.closed:
                host, port = self._addresses[node_id]
                control = await AsyncGatewayClient.connect(
                    host,
                    port,
                    tenant=self.probe_tenant,
                    client=f"{self.name}-heartbeat",
                    connect_timeout_s=self.connect_timeout_s,
                    token=self.shard_token,
                    ssl=self.upstream_ssl,
                )
                self._controls[node_id] = control
            snapshot = await asyncio.wait_for(
                control.stats(), timeout=self.heartbeat_s
            )
        except (ConnectionError, OSError, GatewayError, asyncio.TimeoutError) as error:
            # Drop the control connection so a late reply cannot be
            # misread as the *next* heartbeat's answer.
            await self._close_control(node_id)
            if self.membership.miss(node_id, reason=repr(error)):
                self._on_heartbeat_death(node_id, repr(error))
            return
        echoed = snapshot.get("node_id")
        if echoed is not None and echoed != node_id:
            await self._close_control(node_id)
            reason = f"node_id mismatch: shard says {echoed!r}"
            if self.membership.miss(node_id, reason=reason):
                self._on_heartbeat_death(node_id, reason)
            return
        self._revive(node_id, self._condense(snapshot))

    def _on_heartbeat_death(self, node_id: str, reason: str) -> None:
        """Miss limit crossed: mirror ``_declare_dead``'s side effects
        (membership already flipped the state)."""
        self.stats.node_deaths += 1
        self._m.node_deaths.labels(node_id).inc()
        self.ring.remove(node_id)
        self._schedule(self._teardown_node(node_id))

    async def _probe(self, node_id: str) -> bool:
        """One revival attempt against a dead shard."""
        host, port = self._addresses[node_id]
        try:
            client = await AsyncGatewayClient.connect(
                host,
                port,
                tenant=self.probe_tenant,
                client=f"{self.name}-probe",
                connect_timeout_s=self.connect_timeout_s,
                token=self.shard_token,
                ssl=self.upstream_ssl,
            )
        except (ConnectionError, OSError, GatewayError):
            return False
        try:
            snapshot = await asyncio.wait_for(
                client.stats(), timeout=self.heartbeat_s
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await client.aclose()
            return False
        await client.aclose()
        self._revive(node_id, self._condense(snapshot))
        return True

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer, max_outbox=self.max_outbox_frames)
        self.stats.connections_total += 1
        self._m.connections.inc()
        writer_task = asyncio.create_task(connection.write_loop())
        try:
            if not await self._handshake(connection):
                self.stats.handshakes_rejected += 1
                return
            self._connections.add(connection)
            await self._serve_frames(connection)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except ProtocolError as error:
            self.stats.protocol_errors += 1
            connection.send(protocol.error_frame(error.code, str(error)))
        finally:
            self._connections.discard(connection)
            self._reclaim(connection)
            connection.closed = True
            connection.outbox.put_nowait(None)
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except (asyncio.TimeoutError, ConnectionError):
                writer_task.cancel()
            try:
                connection.writer.close()
            except Exception:
                pass

    async def _handshake(self, connection: _Connection) -> bool:
        """HELLO exchange: resolve the tenant's home shard, pre-warm its
        pooled connection, and echo the shard's SLO terms back."""
        try:
            frame = await asyncio.wait_for(
                protocol.read_frame(connection.reader), self.handshake_timeout_s
            )
        except VersionMismatch as error:
            connection.send(protocol.error_frame(error.code, str(error)))
            return False
        if frame is None or frame.kind is not FrameType.HELLO:
            connection.send(
                protocol.error_frame("bad_handshake", "expected a HELLO frame first")
            )
            return False
        tenant_id = str(frame.meta.get("tenant", "anonymous"))
        connection.client_name = str(frame.meta.get("client", "?"))
        if self.auth is not None:
            raw_token = frame.meta.get("token")
            token = raw_token if isinstance(raw_token, str) else None
            if not self.auth.authenticate(tenant_id, token):
                self.stats.auth_failed += 1
                connection.send(
                    protocol.error_frame(
                        "auth_failed",
                        f"bearer token missing or invalid for tenant {tenant_id!r}",
                    )
                )
                return False
        try:
            node_id, upstream = await self._upstream_for_tenant(tenant_id)
        except EmptyRingError:
            connection.send(
                protocol.error_frame("no_nodes", "no alive shards in the ring")
            )
            return False
        except GatewayError as error:
            # The shard rejected this tenant (e.g. unknown_tenant):
            # relay the rejection verbatim.
            connection.send(protocol.error_frame(error.code, str(error)))
            return False
        connection.tenant = _RouterTenant(tenant_id, upstream.slo_class)
        connection.send(
            protocol.hello_reply(
                server=self.name,
                tenant=tenant_id,
                slo_class=upstream.slo_class,
                slo_ms=upstream.slo_ms,
                model_version=upstream.model_version,
                node_id=node_id,
            )
        )
        return True

    async def _serve_frames(self, connection: _Connection) -> None:
        while True:
            frame = await protocol.read_frame(connection.reader)
            if frame is None:
                return  # clean EOF
            if frame.kind is FrameType.SUBMIT:
                self._on_submit(connection, frame)
            elif frame.kind is FrameType.STATS:
                connection.send(protocol.stats_frame(self.snapshot()))
            elif frame.kind is FrameType.TRACE:
                self._on_trace(connection, frame)
            elif frame.kind is FrameType.RELOAD:
                self._schedule(self._broadcast_reload(connection))
            else:
                connection.send(
                    protocol.error_frame(
                        "unexpected_frame",
                        f"cannot handle {frame.kind.name} after the handshake",
                    )
                )

    def _reclaim(self, connection: _Connection) -> None:
        """A client vanished: mark its tickets done so late shard
        results are dropped instead of delivered to a dead socket."""
        for ticket in self._tickets.values():
            if ticket.connection is connection and not ticket.done:
                ticket.done = True
                if ticket.trace is not None:
                    ticket.trace.finish("shed", code="disconnect")

    # ------------------------------------------------------------------
    # Tickets
    # ------------------------------------------------------------------
    def _on_submit(self, connection: _Connection, frame: Frame) -> None:
        tenant = connection.tenant
        assert tenant is not None
        self.stats.submits += 1
        raw_id = frame.meta.get("id")
        if not isinstance(raw_id, int):
            self.stats.protocol_errors += 1
            connection.send(
                protocol.error_frame("bad_submit", "SUBMIT meta needs an int id")
            )
            return
        ticket = RouterTicket(
            ticket_id=next(self._ticket_ids),
            connection=connection,
            tenant=tenant.tenant_id,
            client_request_id=raw_id,
            frame=frame,
            received=self.clock(),
        )
        if self.tracer is not None:
            ticket.trace = self.tracer.begin(
                tenant=tenant.tenant_id,
                slo_class=tenant.slo_class,
                request_id=raw_id,
                submit=ticket.received,
            )
            ticket.trace.mark_admitted(ticket.received)
        self._tickets[ticket.ticket_id] = ticket
        task = asyncio.create_task(self._run_ticket(ticket))
        self._ticket_tasks.add(task)
        task.add_done_callback(self._ticket_tasks.discard)

    async def _run_ticket(self, ticket: RouterTicket) -> None:
        """Drive one ticket to a terminal: delivered, relayed error, or
        failed after exhausting the single redispatch budget."""
        try:
            while True:
                try:
                    result = await self._forward_once(ticket)
                except EmptyRingError:
                    self._fail(ticket, "no_nodes", "no alive shards in the ring")
                    return
                except GatewayError as error:
                    self._relay_error(ticket, error)
                    return
                except (ConnectionError, OSError) as error:
                    # The connection died after the SUBMIT may have been
                    # delivered: the shard might have served it (reply
                    # lost with the socket), so this redispatch is the
                    # at-most-once retry.  The shard's own disconnect
                    # reclamation discards the orphaned request, so the
                    # successor's result is the only one a client sees.
                    if ticket.done:
                        return
                    if ticket.retried:
                        self._fail(
                            ticket,
                            "node_lost",
                            f"shard died twice serving this request: {error}",
                        )
                        return
                    ticket.retried = True
                    self.stats.redispatched += 1
                    self._m.redispatched.inc()
                    if ticket.trace is not None:
                        ticket.trace.retried = True
                    continue
                else:
                    self._deliver(ticket, result)
                    return
        finally:
            self._tickets.pop(ticket.ticket_id, None)

    async def _forward_once(self, ticket: RouterTicket) -> Frame:
        """Forward the ticket's SUBMIT to the current owner and await
        the raw RESULT frame."""
        node_id, upstream = await self._upstream_for_tenant(ticket.tenant)
        ticket.node = node_id
        self.stats.forwarded += 1
        self._forwarded_by_node[node_id] = self._forwarded_by_node.get(node_id, 0) + 1
        self._m.forwarded.labels(node_id).inc()
        sent = self.clock()
        if ticket.trace is not None:
            ticket.trace.mark_dispatched(
                sent, batch_size=1, model_version=upstream.model_version
            )
        _, future = upstream.forward_nowait(ticket.frame)
        await upstream.drain()
        result = await future
        if not ticket.retried:
            sample = self.clock() - sent
            previous = self._latency_ewma.get(node_id)
            self._latency_ewma[node_id] = (
                sample if previous is None else 0.8 * previous + 0.2 * sample
            )
        return result

    def _deliver(self, ticket: RouterTicket, frame: Frame) -> None:
        if ticket.done:
            return  # client left; the shard's work is dropped here
        ticket.done = True
        node_id = ticket.node or "?"
        meta = dict(frame.meta)
        meta["id"] = ticket.client_request_id
        meta.setdefault("node_id", node_id)
        if ticket.retried:
            meta["retried"] = True
        ticket.connection.send(Frame(FrameType.RESULT, meta, frame.body))
        self.stats.delivered += 1
        self._delivered_by_node[node_id] = self._delivered_by_node.get(node_id, 0) + 1
        self._m.delivered.labels(node_id).inc()
        if ticket.trace is not None:
            ticket.trace.mark_landed(
                self.clock(), worker=None, retried=ticket.retried
            )
            ticket.trace.finish("delivered")

    def _relay_error(self, ticket: RouterTicket, error: GatewayError) -> None:
        """Pass a shard-side rejection (shed, rate_limited, ...) through
        to the client under its original request id — policy decisions
        belong to the owning shard, the router never retries them."""
        if ticket.done:
            return
        ticket.done = True
        self.stats.errors += 1
        self._m.errors.labels(error.code).inc()
        ticket.connection.send(
            protocol.error_frame(
                error.code, str(error), request_id=ticket.client_request_id
            )
        )
        if ticket.trace is not None:
            ticket.trace.finish("shed", code=error.code)

    def _fail(self, ticket: RouterTicket, code: str, message: str) -> None:
        if ticket.done:
            return
        ticket.done = True
        self.stats.errors += 1
        self._m.errors.labels(code).inc()
        ticket.connection.send(
            protocol.error_frame(code, message, request_id=ticket.client_request_id)
        )
        if ticket.trace is not None:
            ticket.trace.finish("error", code=code)

    # ------------------------------------------------------------------
    # Control-plane frames
    # ------------------------------------------------------------------
    def _on_trace(self, connection: _Connection, frame: Frame) -> None:
        if self.tracer is None:
            connection.send(
                protocol.trace_frame(
                    {"traces": [], "dropped": 0, "buffered": 0, "enabled": False}
                )
            )
            return
        limit = frame.meta.get("limit")
        records = self.tracer.drain(None if limit is None else int(limit))
        connection.send(
            protocol.trace_frame(
                {
                    "traces": records,
                    "dropped": self.tracer.dropped,
                    "buffered": self.tracer.buffered,
                    "enabled": True,
                }
            )
        )

    async def _broadcast_reload(self, connection: _Connection) -> None:
        """Fan a RELOAD out to every alive shard over short-lived
        connections (control connections stay heartbeat-only so replies
        can't interleave); reply with the fleet's highest version."""
        versions: list[int] = []
        swapped = False
        failures: list[str] = []
        for node_id in self.ring.nodes:
            host, port = self._addresses[node_id]
            try:
                client = await AsyncGatewayClient.connect(
                    host,
                    port,
                    tenant=self.probe_tenant,
                    client=f"{self.name}-reload",
                    connect_timeout_s=self.connect_timeout_s,
                    token=self.shard_token,
                    ssl=self.upstream_ssl,
                )
            except (ConnectionError, OSError, GatewayError) as error:
                failures.append(f"{node_id}: {error}")
                continue
            try:
                reply = await client.reload()
                versions.append(int(reply.get("model_version", 0)))
                swapped = swapped or bool(reply.get("swapped"))
            except GatewayError as error:
                failures.append(f"{node_id}: {error}")
            except (ConnectionError, OSError) as error:
                failures.append(f"{node_id}: {error}")
            finally:
                await client.aclose()
        if failures or not versions:
            connection.send(
                protocol.error_frame(
                    "reload_failed", "; ".join(failures) or "no alive shards"
                )
            )
            return
        connection.send(
            protocol.reload_frame(model_version=max(versions), swapped=swapped)
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Operational summary (the STATS reply): ring, membership,
        per-shard counters, and open work."""
        membership = self.membership.snapshot()
        shards = {}
        for node_id in self._addresses:
            record = self.membership.get(node_id)
            ewma = self._latency_ewma.get(node_id)
            shards[node_id] = {
                **membership[node_id],
                "forwarded": self._forwarded_by_node.get(node_id, 0),
                "delivered": self._delivered_by_node.get(node_id, 0),
                "forward_ewma_ms": None if ewma is None else ewma * 1e3,
                "summary": record.summary,
            }
        return {
            "server": self.name,
            "role": "router",
            "policy": "affinity" if self.affinity else "spread",
            "ring": self.ring.snapshot(),
            "heartbeat_s": self.heartbeat_s,
            "miss_limit": self.membership.miss_limit,
            "connections": self.num_connections,
            "tickets_in_flight": len(self._tickets),
            "router": self.stats.as_dict(),
            "shards": shards,
        }
