"""Horizontal scale-out: consistent-hash routing over gateway shards.

The cluster tier turns N single-box gateways into one endpoint:

* :mod:`~repro.serving.cluster.ring` — :class:`HashRing`, the pure
  tenant -> shard mapping (virtual nodes, multi-probe balance, minimal
  movement on join/leave);
* :mod:`~repro.serving.cluster.membership` —
  :class:`MembershipTable`, heartbeat-deadline health state;
* :mod:`~repro.serving.cluster.router` — :class:`ClusterRouter`, the
  asyncio front-end that forwards SUBMIT frames to the owning shard
  and redispatches exactly once when a shard dies;
* :mod:`~repro.serving.cluster.spawn` — :class:`NodeProcess`, shard
  gateways as real child processes for benchmarks and chaos tests.
"""

from repro.serving.cluster.membership import (
    ALIVE,
    DEAD,
    MembershipTable,
    NodeRecord,
)
from repro.serving.cluster.ring import EmptyRingError, HashRing
from repro.serving.cluster.router import ClusterRouter, RouterStats, RouterTicket
from repro.serving.cluster.spawn import NodeProcess

__all__ = [
    "ALIVE",
    "DEAD",
    "ClusterRouter",
    "EmptyRingError",
    "HashRing",
    "MembershipTable",
    "NodeProcess",
    "NodeRecord",
    "RouterStats",
    "RouterTicket",
]
