"""Shard processes: spawn ``repro serve`` gateways as children.

``bench_cluster.py`` (and any chaos test) needs real OS processes —
SIGKILL semantics, separate GILs, separate registries — so this module
wraps ``python -m repro.cli serve --listen ...`` in a handle that
parses the CLI's ``{"listening": "host:port"}`` readiness line, exposes
the bound address, and can kill (SIGKILL) or stop the child.

This is deliberately *not* asyncio: the spawner is the benchmark / CLI
process, and the blocking stdout reader lives on its own daemon thread.
"""

from __future__ import annotations

import collections
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

__all__ = ["NodeProcess"]


def _repro_pythonpath() -> str:
    """A PYTHONPATH that makes ``import repro`` work in the child."""
    import repro

    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if not existing:
        return package_root
    if package_root in existing.split(os.pathsep):
        return existing
    return package_root + os.pathsep + existing


class NodeProcess:
    """One shard gateway as a child process.

    Parameters
    ----------
    node_id:
        The shard's cluster identity (``repro serve --node-id``).
    model_dir:
        Checkpoint directory every shard loads (shared weights).
    host, port:
        Bind address; port 0 lets the OS pick (the real port is parsed
        from the readiness line).  Respawning a killed node at its old
        fixed port is how ``bench_cluster.py`` exercises ring healing.
    tenant_cache:
        When set, passed as ``--tenant-cache`` so the shard tracks
        per-tenant model residency (the affinity measure).
    extra_args:
        Additional raw CLI arguments.
    """

    def __init__(
        self,
        node_id: str,
        model_dir: str | pathlib.Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant_cache: int | None = None,
        extra_args: tuple[str, ...] = (),
        stderr_path: str | pathlib.Path | None = None,
    ) -> None:
        self.node_id = str(node_id)
        self.address: tuple[str, int] | None = None
        # Bounded: a shard prints a readiness line, occasional gate
        # reports, and a final snapshot — keep the recent tail only.
        self._lines: collections.deque[str] = collections.deque(maxlen=400)
        self._ready = threading.Event()
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--model-dir",
            str(model_dir),
            "--listen",
            f"{host}:{port}",
            "--node-id",
            self.node_id,
        ]
        if tenant_cache is not None:
            command += ["--tenant-cache", str(tenant_cache)]
        command += list(extra_args)
        environment = dict(os.environ)
        environment["PYTHONPATH"] = _repro_pythonpath()
        self._stderr_file = None
        if stderr_path is not None:
            self._stderr_file = open(stderr_path, "w", encoding="utf-8")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=self._stderr_file or subprocess.DEVNULL,
            text=True,
            env=environment,
        )
        self._reader = threading.Thread(
            target=self._read_stdout, name=f"node-{node_id}-stdout", daemon=True
        )
        self._reader.start()

    def _read_stdout(self) -> None:
        stream = self.process.stdout
        assert stream is not None
        for line in stream:
            self._lines.append(line.rstrip("\n"))
            if self.address is None:
                try:
                    meta = json.loads(line)
                except ValueError:
                    continue
                listening = meta.get("listening") if isinstance(meta, dict) else None
                if listening:
                    bound_host, _, bound_port = str(listening).rpartition(":")
                    self.address = (bound_host, int(bound_port))
                    self._ready.set()
        self._ready.set()  # EOF: wake waiters so they see the death

    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 60.0) -> tuple[str, int]:
        """Block until the child prints its readiness line."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.address is not None:
                return self.address
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"node {self.node_id} exited with {self.process.returncode} "
                    f"before binding; output: {list(self._lines)[-5:]}"
                )
            self._ready.wait(timeout=0.1)
            self._ready.clear()
        raise TimeoutError(f"node {self.node_id} not ready after {timeout_s:g}s")

    @property
    def alive(self) -> bool:
        """Whether the shard process is still running."""
        return self.process.poll() is None

    @property
    def output_lines(self) -> list[str]:
        """Every stdout/stderr line captured so far (a copy)."""
        return list(self._lines)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL — the chaos path: no cleanup, no goodbye frames."""
        if self.alive:
            self.process.send_signal(signal.SIGKILL)

    def stop(self, timeout_s: float = 10.0) -> int | None:
        """SIGTERM then reap; escalates to SIGKILL on timeout."""
        if self.alive:
            self.process.terminate()
        try:
            return self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.kill()
            return self.process.wait(timeout=timeout_s)

    def close(self) -> None:
        """Hard cleanup for ``finally`` blocks."""
        self.kill()
        try:
            self.process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            pass
        self._reader.join(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()
        if self._stderr_file is not None:
            self._stderr_file.close()

    def __enter__(self) -> "NodeProcess":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
