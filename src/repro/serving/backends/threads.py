"""Thread-pool execution over per-thread system replicas."""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.serving.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import GesturePrint, PipelineResult


class ThreadPoolBackend(ExecutionBackend):
    """Run batches on a thread pool, one system replica per thread.

    The nn modules cache forward activations on ``self`` (for backward),
    so two concurrent forwards through *one* module graph would race on
    that scratch state.  Each worker thread therefore predicts through
    its own ``deepcopy`` of the system — same weights bit-for-bit, so
    results stay byte-identical to the source system — keyed by system
    identity so a hot swap naturally re-replicates on first use.

    What this buys: the submitting thread (the gateway's event loop)
    keeps running — reading sockets, admitting, shedding — while NumPy
    executes, and BLAS kernels release the GIL, so multi-core machines
    see real overlap.  For full multi-core *exec* parallelism use
    :class:`~repro.serving.backends.ProcessPoolBackend`.
    """

    name = "thread"

    #: Replicas kept per worker thread (current system + one swap-ago).
    _REPLICA_CACHE = 2

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.slots = workers
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-exec"
        )
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _replica(self, system: "GesturePrint") -> "GesturePrint":
        cache: dict[int, tuple[object, object]] = getattr(
            self._local, "replicas", None
        ) or {}
        self._local.replicas = cache
        entry = cache.get(id(system))
        if entry is not None and entry[0] is system:
            return entry[1]
        replica = copy.deepcopy(system)
        cache[id(system)] = (system, replica)
        while len(cache) > self._REPLICA_CACHE:
            cache.pop(next(iter(cache)))
        return replica

    def _run(
        self, system: "GesturePrint", batch: np.ndarray
    ) -> "tuple[PipelineResult, float]":
        replica = self._replica(system)
        start = time.perf_counter()
        result = replica.predict(batch)
        return result, time.perf_counter() - start

    # ------------------------------------------------------------------
    def submit(self, system: "GesturePrint", batch: np.ndarray) -> Future:
        return self._pool.submit(self._run, system, batch)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def describe(self) -> dict:
        return {"name": self.name, "slots": self.slots, "workers": self.workers}
