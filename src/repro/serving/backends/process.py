"""Process-pool execution over read-only mmap'd weight arenas.

The point of this backend is what it does *not* do: it never pickles a
model.  The parent exports each system once as a flat weight bundle
(:func:`repro.core.persistence.export_flat` — one contiguous float64
arena plus a JSON manifest) and ships workers only the bundle *path*
with every batch.  Workers attach the arena with ``np.memmap(mode="r")``
(:func:`~repro.core.persistence.load_system_flat`), so all workers share
one physical copy of the weights through the page cache, attachment is
O(page faults) rather than O(deserialise), and a hot swap is "export the
new arena, send the new path" — airborne batches keep executing against
the old mapping.

Workers are spawned (not forked): the parent may be running an asyncio
event loop, BLAS pools, and a background gateway thread, none of which
survive a fork safely.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import sys
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor

import numpy as np

from repro.serving.backends.base import ExecutionBackend

#: Worker-side cache of attached bundles (current system + one swap-ago).
_ATTACHED: dict[str, object] = {}
_ATTACH_CACHE = 2


def _worker_initializer(extra_sys_path: list[str]) -> None:
    """Mirror the parent's import path in a spawned worker."""
    for entry in reversed(extra_sys_path):
        if entry and entry not in sys.path:
            sys.path.insert(0, entry)


def _worker_predict(bundle_dir: str, batch: np.ndarray):
    """Attach (or reuse) the bundle's mmap'd system and run one batch."""
    system = _ATTACHED.get(bundle_dir)
    if system is None:
        from repro.core.persistence import load_system_flat

        system = load_system_flat(bundle_dir)
        _ATTACHED[bundle_dir] = system
        while len(_ATTACHED) > _ATTACH_CACHE:
            _ATTACHED.pop(next(iter(_ATTACHED)))
    start = time.perf_counter()
    result = system.predict(batch)
    return result, time.perf_counter() - start


def _repro_src_root() -> str:
    """The directory holding the ``repro`` package (for PYTHONPATH)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class ProcessPoolBackend(ExecutionBackend):
    """True multi-core execution behind the engine's batch contract.

    Parameters
    ----------
    workers:
        Worker process count (the backend's ``slots``).
    arena_provider:
        ``system -> bundle directory`` hook.  The CLI wires this to
        :meth:`~repro.serving.ModelRegistry.arena_for` so checkpoints
        loaded through the registry share its cached exports; without
        one, the backend exports into a private temporary directory on
        first sight of each system (and pre-exports in :meth:`prepare`).
    start_method:
        ``multiprocessing`` start method; spawn by default (see module
        docstring for why fork is unsafe here).
    """

    name = "process"

    def __init__(
        self,
        workers: int = 4,
        *,
        arena_provider=None,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.slots = workers
        self.workers = workers
        self._arena_provider = arena_provider
        # Spawned children re-import this module by name; spawn ships
        # the parent's sys.path in its preparation data, and the
        # initializer re-asserts it (plus the repro src root) in case a
        # start-method variant or an embedding host trimmed it.
        extra_path = [_repro_src_root()] + list(sys.path)
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(start_method),
            initializer=_worker_initializer,
            initargs=(extra_path,),
        )
        #: Exported bundles by system identity; values hold a strong
        #: system reference so an ``id`` is never recycled while mapped.
        self._bundles: dict[int, tuple[object, str]] = {}
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._own_bundles: list[str] = []
        self._export_count = 0

    # ------------------------------------------------------------------
    def _own_export(self, system) -> str:
        from repro.core.persistence import export_flat

        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-arena-")
        self._export_count += 1
        bundle = os.path.join(self._tmpdir.name, f"v{self._export_count}")
        export_flat(system, bundle)
        # Keep this bundle plus its predecessor (batches dispatched just
        # before a swap may still attach to it); delete anything older
        # so repeated hot swaps don't accumulate weight copies on disk.
        self._own_bundles.append(bundle)
        if len(self._own_bundles) > 2:
            live = {path for _, path in self._bundles.values()}
            keep = set(self._own_bundles[-2:]) | live
            for old in self._own_bundles[:-2]:
                if old not in keep:
                    shutil.rmtree(old, ignore_errors=True)
            self._own_bundles = [
                path for path in self._own_bundles if path in keep
            ]
        return bundle

    def prepare(self, system) -> str:
        """The system's bundle directory, exporting it if unseen."""
        entry = self._bundles.get(id(system))
        if entry is not None and entry[0] is system:
            return entry[1]
        if self._arena_provider is not None:
            bundle = os.fspath(self._arena_provider(system))
        else:
            bundle = self._own_export(system)
        self._bundles[id(system)] = (system, bundle)
        # Current system + the one it superseded: batches dispatched just
        # before a swap may still name the old bundle, anything older
        # cannot be airborne anymore (and pinning old systems here would
        # keep their full weight copies resident).
        while len(self._bundles) > 2:
            self._bundles.pop(next(iter(self._bundles)))
        return bundle

    # ------------------------------------------------------------------
    def submit(self, system, batch: np.ndarray) -> Future:
        bundle = self.prepare(system)
        return self._pool.submit(
            _worker_predict, bundle, np.ascontiguousarray(batch)
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        self._bundles.clear()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "slots": self.slots,
            "workers": self.workers,
            "bundles": len(self._bundles),
        }
